"""Per-tenant write-ahead log + snapshot checkpoints.

Durability protocol (one directory per tenant):

* ``spec.json`` — the tenant's declaration (schema, watch list,
  priority), written once at registration so a bare restart can rebuild
  every monitor without the caller re-supplying specs.
* ``wal-<startseq>-<gen>.jsonl`` — append-only segments of JSON-line
  records, each carrying a CRC32 of its canonical body:

  - ``{"t": "batch", "seq": S, "rows": [...]}`` — the *accept* record.
    Written (and committed per the sync policy) **before** the submit
    call acknowledges, so an acknowledged batch is never lost.
  - ``{"t": "applied", "seq": S, "events": [...]}`` — the *apply*
    record: the batch's alert/drift events, written after the monitor
    folded the rows.  Its presence marks the batch's events as
    durably emitted — recovery re-derives events only for accepted
    batches *without* an apply record, which is the whole
    exactly-once story (alerts neither lost nor duplicated).
  - ``{"t": "shed", "first": F, "last": L}`` — load shedding dropped
    the accepted run ``F..L``; recovery must not re-apply it.

* ``checkpoint-<seq>-<gen>.pkl`` — a pickled snapshot of the monitor
  state covering every non-shed batch ``≤ seq``.  Written atomically
  (temp + ``os.replace``); after a checkpoint the WAL rotates to a new
  segment and fully-covered old segments are pruned (unless the
  service is configured to retain them for audit).

Torn writes: a crash mid-append leaves at most a truncated (or
CRC-mismatching) *tail* in the segment being written.  Recovery stops
reading a segment at the first bad line — everything after it was never
acknowledged — and continues with the next segment, which a later
incarnation opened *fresh* (incarnation generations keep file names
unique, so a quarantined tail is never appended to).  Bad lines
*followed by valid ones in the same segment* cannot happen under this
scheme; duplicated seqs across segments are skipped on replay.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .errors import WalCorruptError

__all__ = ["TenantWal", "WalRecovery", "read_records", "read_event_stream"]

_SEGMENT_RE = re.compile(r"^wal-(\d{12})-(\d{4})\.jsonl$")
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})-(\d{4})\.pkl$")


def _crc(body: str) -> int:
    return zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF


def _encode(record: dict[str, Any]) -> bytes:
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    record = dict(record)
    record["c"] = _crc(body)
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _decode(line: bytes) -> dict[str, Any] | None:
    """One record, or ``None`` for a torn/garbled line."""
    try:
        record = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    crc = record.pop("c", None)
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if crc != _crc(body):
        return None
    return record


@dataclass
class WalRecovery:
    """Everything a restart needs, parsed from one tenant directory."""

    checkpoint_seq: int = 0
    checkpoint_payload: bytes | None = None
    #: Accepted rows by seq (first valid record wins), seq > checkpoint.
    batches: dict[int, list] = field(default_factory=dict)
    #: Durable event dicts by seq, for batches already applied.
    applied: dict[int, list] = field(default_factory=dict)
    #: Seqs dropped by load shedding (never re-apply).
    shed: set[int] = field(default_factory=set)
    #: Shed runs in record order (to reconstruct the event stream).
    shed_runs: list[tuple[int, int]] = field(default_factory=list)
    #: Highest seq seen anywhere (accept records or checkpoint).
    max_seq: int = 0


class TenantWal:
    """Append-only journal + checkpoints for one tenant.

    Appends buffer in user space; :meth:`commit` pushes them to the OS
    in one write (surviving a process kill from that point on) and —
    under the default ``sync="batch"`` policy — fsyncs so they survive
    an OS crash too.  :meth:`abandon` models a hard crash: buffered,
    uncommitted appends are dropped on the floor.
    """

    def __init__(self, directory: str | Path, sync: str = "batch") -> None:
        if sync not in ("batch", "none"):
            raise ValueError(
                f"sync must be 'batch' or 'none', got {sync!r}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self._fd: int | None = None
        self._pending: list[bytes] = []
        #: Highest seq recorded in each closed/open segment this
        #: incarnation knows about (path → max seq), for pruning.
        self._segment_max: dict[Path, int] = {}
        self._current: Path | None = None
        self._generation = self._next_generation()

    # ------------------------------------------------------------------
    # Segment management
    # ------------------------------------------------------------------
    def _next_generation(self) -> int:
        generation = 0
        for path in self.directory.iterdir():
            match = _SEGMENT_RE.match(path.name) or _CHECKPOINT_RE.match(
                path.name
            )
            if match:
                generation = max(generation, int(match.group(2)) + 1)
        return min(generation, 9999)

    def open_segment(self, start_seq: int) -> None:
        """Start appending to a fresh segment (never reuses a file)."""
        self.close()
        name = f"wal-{start_seq:012d}-{self._generation:04d}.jsonl"
        path = self.directory / name
        self._fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._current = path
        self._segment_max.setdefault(path, start_seq - 1)

    def _append(self, record: dict[str, Any], seq: int) -> None:
        if self._fd is None:
            raise WalCorruptError("no open WAL segment (open_segment first)")
        self._pending.append(_encode(record))
        path = self._current
        assert path is not None
        self._segment_max[path] = max(self._segment_max[path], seq)

    def append_batch(self, seq: int, rows: list) -> None:
        """Journal an accepted batch (commit before acknowledging)."""
        self._append({"t": "batch", "seq": seq, "rows": rows}, seq)

    def append_applied(self, seq: int, events: list[dict]) -> None:
        """Journal a batch's derived events (its exactly-once marker)."""
        self._append({"t": "applied", "seq": seq, "events": events}, seq)

    def append_shed(self, first: int, last: int) -> None:
        """Journal a load-shed run (explicit, durable loss)."""
        self._append({"t": "shed", "first": first, "last": last}, last)

    def commit(self) -> None:
        """Push buffered appends to the OS (+fsync under ``batch``)."""
        if self._pending:
            if self._fd is None:
                raise WalCorruptError("no open WAL segment to commit to")
            os.write(self._fd, b"".join(self._pending))
            self._pending.clear()
        if self.sync == "batch" and self._fd is not None:
            os.fsync(self._fd)

    def close(self) -> None:
        """Commit and close the current segment (graceful)."""
        if self._fd is not None:
            self.commit()
            os.close(self._fd)
            self._fd = None
            self._current = None

    def abandon(self) -> None:
        """Crash semantics: drop uncommitted appends, close the fd."""
        self._pending.clear()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
            self._current = None

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(
        self,
        seq: int,
        payload: bytes,
        *,
        keep_checkpoints: int = 2,
        retain_segments: bool = False,
    ) -> None:
        """Atomically persist a snapshot covering seqs ``≤ seq``.

        Commits the journal first (the snapshot must never be *ahead*
        of the durable log), writes the pickle via temp +
        ``os.replace``, rotates to a fresh segment, and prunes fully
        covered segments and stale checkpoints.
        """
        self.commit()
        name = f"checkpoint-{seq:012d}-{self._generation:04d}.pkl"
        target = self.directory / name
        scratch = self.directory / f".{name}.tmp{os.getpid()}"
        scratch.write_bytes(payload)
        os.replace(scratch, target)
        self.open_segment(seq + 1)
        self._prune(seq, keep_checkpoints, retain_segments)

    def _prune(
        self, seq: int, keep_checkpoints: int, retain_segments: bool
    ) -> None:
        checkpoints = sorted(
            (
                path
                for path in self.directory.iterdir()
                if _CHECKPOINT_RE.match(path.name)
            ),
            key=lambda p: p.name,
        )
        for stale in checkpoints[: -keep_checkpoints or None]:
            stale.unlink(missing_ok=True)
        if retain_segments:
            return
        for path, max_seq in list(self._segment_max.items()):
            if path != self._current and max_seq <= seq:
                path.unlink(missing_ok=True)
                del self._segment_max[path]

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> WalRecovery:
        """Parse the directory into a :class:`WalRecovery`.

        Picks the newest structurally valid checkpoint, then replays
        every segment in (start, generation) order, skipping records at
        or below the checkpoint and tolerating a torn tail per segment.
        """
        recovery = WalRecovery()
        checkpoints = sorted(
            (
                (path.name, path)
                for path in self.directory.iterdir()
                if _CHECKPOINT_RE.match(path.name)
            ),
            reverse=True,
        )
        for name, path in checkpoints:
            payload = path.read_bytes()
            if payload:
                match = _CHECKPOINT_RE.match(name)
                assert match is not None
                recovery.checkpoint_seq = int(match.group(1))
                recovery.checkpoint_payload = payload
                break
        recovery.max_seq = recovery.checkpoint_seq
        for record in read_records(self.directory):
            kind = record.get("t")
            if kind == "batch":
                seq = record["seq"]
                recovery.max_seq = max(recovery.max_seq, seq)
                if seq <= recovery.checkpoint_seq:
                    continue
                recovery.batches.setdefault(seq, record["rows"])
            elif kind == "applied":
                seq = record["seq"]
                if seq <= recovery.checkpoint_seq:
                    continue
                recovery.applied.setdefault(seq, record["events"])
            elif kind == "shed":
                first, last = record["first"], record["last"]
                recovery.max_seq = max(recovery.max_seq, last)
                if last <= recovery.checkpoint_seq:
                    continue
                recovery.shed_runs.append((first, last))
                recovery.shed.update(range(first, last + 1))
            else:
                raise WalCorruptError(
                    f"unknown WAL record type {kind!r} in {self.directory}"
                )
        for seq in recovery.applied:
            if seq not in recovery.batches and seq not in recovery.shed:
                raise WalCorruptError(
                    f"applied record for seq {seq} without its batch record "
                    f"in {self.directory}"
                )
        return recovery


def read_records(directory: str | Path) -> list[dict[str, Any]]:
    """All valid records across segments, in journal order."""
    directory = Path(directory)
    segments = sorted(
        (
            path
            for path in directory.iterdir()
            if _SEGMENT_RE.match(path.name)
        ),
        key=lambda p: p.name,
    )
    records: list[dict[str, Any]] = []
    for path in segments:
        for line in path.read_bytes().splitlines():
            record = _decode(line)
            if record is None:
                # Torn tail: nothing after it in this segment was ever
                # acknowledged; later segments are read normally.
                break
            records.append(record)
    return records


def read_event_stream(directory: str | Path, tenant: str) -> list[dict]:
    """The tenant's durable event stream, reconstructed from the WAL.

    ``applied`` records contribute their stored alert/drift events;
    ``shed`` records synthesize the shed event at their journal
    position.  Requires the service to run with segment retention on
    (``retain_segments=True``) if the stream must reach back past the
    latest checkpoint.  This is the stream the crash-recovery oracle
    compares byte-for-byte between faulted and uninterrupted runs.
    """
    stream: list[dict] = []
    for record in read_records(directory):
        kind = record.get("t")
        if kind == "applied":
            stream.extend(record["events"])
        elif kind == "shed":
            stream.append(
                {
                    "type": "shed",
                    "tenant": tenant,
                    "first_seq": record["first"],
                    "last_seq": record["last"],
                    "dropped": record["last"] - record["first"] + 1,
                }
            )
    return stream


def encode_snapshot(state: dict[str, Any]) -> bytes:
    """Pickle a checkpoint payload (monitor + service counters)."""
    return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)


def decode_snapshot(payload: bytes) -> dict[str, Any]:
    """Inverse of :func:`encode_snapshot`."""
    try:
        state = pickle.loads(payload)
    except Exception as error:  # damaged checkpoint = corruption, loud
        raise WalCorruptError(f"checkpoint unreadable: {error}") from error
    if not isinstance(state, dict) or "monitor" not in state:
        raise WalCorruptError("checkpoint payload has an unexpected shape")
    return state
