"""The service's typed event stream and its canonical JSON form.

Every observable outcome of the monitoring service is an event:

* :class:`AlertEvent` — a watched FD's confidence crossed below its
  threshold inside a specific client batch (wraps
  :class:`~repro.core.monitor.FDAlert`).
* :class:`DriftEvent` — the temporal layer's verdict that a confidence
  history shows sustained drift rather than a blip (the
  :mod:`repro.temporal` feed, sampled every ``drift_check_every``
  applied batches).
* :class:`ShedEvent` — load shedding dropped a run of *accepted*
  batches for a low-priority tenant.  Loss is explicit and durable,
  never silent.
* :class:`DegradedEvent` — a service-level mode transition (tenant
  entered/left degraded mode, resident-monitor eviction).
* :class:`RecoveryEvent` — a restart replayed the WAL; counts how many
  batches were re-applied and how many event records were re-emitted.

Alert and drift events are pinned to the client batch (``seq``) that
produced them and are stored durably inside the WAL's ``applied``
records; shed events are durable via ``shed`` records.  That is what
makes the crash-recovery oracle meaningful: the durable stream
reconstructed from the WAL after any number of crashes must be
byte-identical (:func:`canonical_json`) to an uninterrupted run's.

Events round-trip through plain dicts (:func:`to_json` /
:func:`from_json`); floats survive exactly because JSON serialization
of Python floats is shortest-round-trip.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Any

from .errors import WalCorruptError

__all__ = [
    "AlertEvent",
    "DegradedEvent",
    "DriftEvent",
    "RecoveryEvent",
    "ServiceEvent",
    "ShedEvent",
    "canonical_json",
    "from_json",
    "to_json",
]


@dataclass(frozen=True)
class ServiceEvent:
    """Common shape: every event names the tenant it belongs to."""

    tenant: str


@dataclass(frozen=True)
class AlertEvent(ServiceEvent):
    """An FD confidence threshold crossing, pinned to a client batch."""

    seq: int
    fd: str
    confidence: float
    threshold: float
    num_rows: int


@dataclass(frozen=True)
class DriftEvent(ServiceEvent):
    """A drift detector fired over a watched FD's confidence history."""

    seq: int
    fd: str
    verdict: str
    statistic: float
    detail: str


@dataclass(frozen=True)
class ShedEvent(ServiceEvent):
    """Accepted batches ``first_seq..last_seq`` were dropped under load."""

    first_seq: int
    last_seq: int
    dropped: int


@dataclass(frozen=True)
class DegradedEvent(ServiceEvent):
    """A degraded-mode transition (``reason``: entered/recovered/evicted)."""

    reason: str
    detail: str = ""


@dataclass(frozen=True)
class RecoveryEvent(ServiceEvent):
    """One tenant's crash recovery summary."""

    checkpoint_seq: int
    replayed: int
    reemitted: int
    resumed_seq: int


_TYPES: dict[str, type[ServiceEvent]] = {
    "alert": AlertEvent,
    "drift": DriftEvent,
    "shed": ShedEvent,
    "degraded": DegradedEvent,
    "recovery": RecoveryEvent,
}
_NAMES = {cls: name for name, cls in _TYPES.items()}


def to_json(event: ServiceEvent) -> dict[str, Any]:
    """Serialize an event to a plain tagged dict."""
    payload = asdict(event)
    payload["type"] = _NAMES[type(event)]
    return payload


def from_json(payload: dict[str, Any]) -> ServiceEvent:
    """Inverse of :func:`to_json`; raises on unknown or malformed shapes."""
    data = dict(payload)
    tag = data.pop("type", None)
    cls = _TYPES.get(tag)
    if cls is None:
        raise WalCorruptError(f"unknown event type {tag!r}")
    expected = {f.name for f in fields(cls)}
    if set(data) != expected:
        raise WalCorruptError(
            f"event {tag!r} has fields {sorted(data)}, expected {sorted(expected)}"
        )
    return cls(**data)


def canonical_json(events: list[ServiceEvent] | list[dict]) -> str:
    """One canonical string for a stream — the oracle's byte identity."""
    rows = [
        to_json(e) if isinstance(e, ServiceEvent) else e  # type: ignore[arg-type]
        for e in events
    ]
    return json.dumps(rows, sort_keys=True, separators=(",", ":"))
