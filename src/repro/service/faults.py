"""Deterministic fault injection for the monitoring service.

Everything here is driven by :func:`repro.datagen.rng.child_rng` over a
label path, never by wall clock or global randomness: the same
:class:`FaultPlan` seed produces the same drops, duplicates, transient
faults, worker crashes and kill points on every run — which is what
lets the crash-recovery oracle demand *byte-identical* event streams.

Two halves:

* :class:`FaultInjector` plugs into :class:`MonitorService` (its
  ``faults=`` hook).  ``gate`` fires per apply group and decides —
  keyed by ``(tenant, first_seq, attempt)`` so retries re-roll — to
  raise a :class:`~repro.service.errors.TransientFault`, simulate a
  crashed pool worker (:class:`~repro.relational.errors.WorkerPoolError`),
  or stall past the batch timeout.  ``point`` fires at durability
  points (``accept.journaled``, ``apply.committed``, …) and raises
  :class:`~repro.service.errors.ServiceKilled` when the point matches
  an entry of ``kill_points``; each kill point fires once, so a
  restarted service makes progress.
* :class:`FaultyClient` sits on the *channel* side: per batch it may
  drop (not deliver), duplicate, or hold back batches to deliver out
  of order.  It remembers which batches were never acknowledged and
  resubmits them (oldest first) on :meth:`flush` — the client half of
  the exactly-once story.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.datagen.rng import child_rng
from repro.relational.errors import WorkerPoolError

from .errors import Overloaded, ServiceKilled, TransientFault

__all__ = ["FaultInjector", "FaultPlan", "FaultyClient"]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of misbehaviour.

    Rates are probabilities in ``[0, 1]`` evaluated independently per
    decision; ``kill_points`` are exact ``(tenant, seq, point)``
    triples (see :meth:`MonitorService._point` call sites for point
    names).  ``stall_seconds`` must exceed the service's
    ``batch_timeout`` for ``stall_rate`` to actually trip it.
    """

    seed: int = 0
    transient_rate: float = 0.0
    worker_crash_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 30.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    hold_rate: float = 0.0
    hold_span: int = 3
    kill_points: tuple[tuple[str, int, str], ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "transient_rate",
            "worker_crash_rate",
            "stall_rate",
            "drop_rate",
            "duplicate_rate",
            "hold_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.hold_span < 1:
            raise ValueError(
                f"hold_span must be a positive integer, got {self.hold_span!r}"
            )
        object.__setattr__(
            self,
            "kill_points",
            tuple((t, int(s), p) for t, s, p in self.kill_points),
        )


class FaultInjector:
    """Service-side hook; one instance outlives service restarts."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._attempts: dict[tuple[str, int], int] = {}
        self._fired: set[tuple[str, int, str]] = set()
        self._kill_points = set(plan.kill_points)

    async def gate(self, tenant: str, first: int, last: int) -> None:
        attempt = self._attempts.get((tenant, first), 0)
        self._attempts[(tenant, first)] = attempt + 1
        rng = child_rng(self.plan.seed, "gate", tenant, first, attempt)
        roll = rng.random()
        if roll < self.plan.transient_rate:
            raise TransientFault(
                f"injected transient fault (tenant {tenant!r}, "
                f"batches {first}..{last}, attempt {attempt})"
            )
        roll = rng.random()
        if roll < self.plan.worker_crash_rate:
            raise WorkerPoolError(
                "process",
                f"injected worker crash (tenant {tenant!r}, batch {first}, "
                f"attempt {attempt})",
            )
        roll = rng.random()
        if roll < self.plan.stall_rate:
            await asyncio.sleep(self.plan.stall_seconds)

    def point(self, name: str, tenant: str, seq: int) -> None:
        key = (tenant, seq, name)
        if key in self._kill_points and key not in self._fired:
            self._fired.add(key)
            raise ServiceKilled(
                f"kill point {name!r} (tenant {tenant!r}, seq {seq})"
            )


@dataclass
class _Channel:
    """Per-tenant client channel state."""

    next_batch: int = 1
    unacked: dict[int, list] = field(default_factory=dict)
    held: dict[int, int] = field(default_factory=dict)  # batch -> release at


class FaultyClient:
    """A client that misdelivers on a seeded schedule, then makes good.

    :meth:`send` assigns the next batch id and may drop, duplicate or
    hold the delivery; :meth:`flush` (re)submits every batch the
    service never acknowledged, in order, until all are accepted.
    Because the service deduplicates by batch id, making good never
    double-applies.
    """

    def __init__(self, service: Any, plan: FaultPlan) -> None:
        self.service = service
        self.plan = plan
        self._channels: dict[str, _Channel] = {}

    def rebind(self, service: Any) -> None:
        """Point the client at a restarted service incarnation."""
        self.service = service

    def _channel(self, tenant: str) -> _Channel:
        return self._channels.setdefault(tenant, _Channel())

    async def send(self, tenant: str, rows: list) -> int:
        """Offer one batch through the faulty channel; returns its id."""
        channel = self._channel(tenant)
        batch_id = channel.next_batch
        channel.next_batch += 1
        channel.unacked[batch_id] = rows
        rng = child_rng(self.plan.seed, "channel", tenant, batch_id)
        if rng.random() < self.plan.drop_rate:
            return batch_id  # never delivered; flush() makes good
        if rng.random() < self.plan.hold_rate:
            channel.held[batch_id] = batch_id + self.plan.hold_span
            return batch_id  # delivered late, out of order
        deliveries = 2 if rng.random() < self.plan.duplicate_rate else 1
        for _ in range(deliveries):
            await self._deliver(tenant, channel, batch_id, rows)
        await self._release_held(tenant, channel)
        return batch_id

    async def _deliver(
        self, tenant: str, channel: _Channel, batch_id: int, rows: list
    ) -> None:
        try:
            status = await self.service.submit(tenant, batch_id, rows)
        except Overloaded:
            return  # stays unacked; flush() retries
        if status in ("accepted", "duplicate"):
            channel.unacked.pop(batch_id, None)

    async def _release_held(self, tenant: str, channel: _Channel) -> None:
        due = [
            batch_id
            for batch_id, release_at in channel.held.items()
            if channel.next_batch > release_at
        ]
        for batch_id in sorted(due):
            del channel.held[batch_id]
            rows = channel.unacked.get(batch_id)
            if rows is not None:
                await self._deliver(tenant, channel, batch_id, rows)

    async def flush(self) -> None:
        """Deliver every unacknowledged batch, oldest first, until done."""
        for tenant, channel in self._channels.items():
            channel.held.clear()
            while channel.unacked:
                batch_id = min(channel.unacked)
                rows = channel.unacked[batch_id]
                try:
                    status = await self.service.submit(tenant, batch_id, rows)
                except Overloaded as overload:
                    await asyncio.sleep(overload.retry_after)
                    continue
                if status in ("accepted", "duplicate"):
                    channel.unacked.pop(batch_id, None)
                elif status == "buffered":
                    # A gap precedes this batch but nothing earlier is
                    # unacked — the sequence can never heal this flush.
                    break

    @property
    def pending(self) -> int:
        """Batches sent but never acknowledged (drops, crashes, holds)."""
        return sum(len(c.unacked) for c in self._channels.values())
