"""The always-on multi-tenant monitoring service (`repro serve`).

Layers: :mod:`~repro.service.service` (ingest, apply, degrade),
:mod:`~repro.service.wal` (durability), :mod:`~repro.service.events`
(typed event stream + canonical JSON oracle form),
:mod:`~repro.service.faults` (deterministic fault injection),
:mod:`~repro.service.harness` (load replay with asserted ceilings).
"""

from .errors import (
    BatchFailed,
    Overloaded,
    ServiceClosedError,
    ServiceError,
    ServiceKilled,
    TransientFault,
    UnknownTenantError,
    WalCorruptError,
)
from .events import (
    AlertEvent,
    DegradedEvent,
    DriftEvent,
    RecoveryEvent,
    ServiceEvent,
    ShedEvent,
    canonical_json,
)
from .faults import FaultInjector, FaultPlan, FaultyClient
from .harness import LoadSpec, run_load
from .service import MonitorService, ServiceConfig, TenantSpec
from .wal import TenantWal, read_event_stream

__all__ = [
    "AlertEvent",
    "BatchFailed",
    "DegradedEvent",
    "DriftEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultyClient",
    "LoadSpec",
    "MonitorService",
    "Overloaded",
    "RecoveryEvent",
    "ServiceClosedError",
    "ServiceError",
    "ServiceEvent",
    "ServiceKilled",
    "ServiceConfig",
    "ShedEvent",
    "TenantSpec",
    "TenantWal",
    "TransientFault",
    "UnknownTenantError",
    "WalCorruptError",
    "canonical_json",
    "read_event_stream",
    "run_load",
]
