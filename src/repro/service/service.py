"""The always-on multi-tenant FD monitoring service.

One :class:`MonitorService` hosts many *tenants*.  Each tenant owns a
schema, a scoped FD watch list, and a priority; all tenants multiplex
over the shared engine machinery (one
:class:`~repro.relational.delta.DeltaStream`-backed
:class:`~repro.core.monitor.FDMonitor` per tenant, one process-wide
kernel backend / morsel pool configured by
:class:`~repro.core.config.EngineConfig`).

The batch lifecycle — and where each guarantee comes from:

1. **submit** (``await service.submit(tenant, batch_id, rows)``) —
   client batch ids are strictly increasing from 1.  A stale id is
   acknowledged ``"duplicate"`` (idempotent resubmission after a crash
   or a duplicated channel); an early id parks in a bounded reorder
   buffer (``"buffered"``); the next expected id is journaled to the
   tenant's WAL and **committed before the call acknowledges**
   (``"accepted"``) — an acknowledged batch survives any crash.
   Backpressure is explicit: with ``wait=True`` the call awaits queue
   capacity, with ``wait=False`` a full queue raises
   :class:`~repro.service.errors.Overloaded` carrying ``retry_after``.
2. **apply** — the tenant's worker drains its queue, coalescing up to
   ``coalesce_max_batches`` under one gate when it has fallen behind.
   The *gate* (fault hook + per-batch timeout) is the only awaitable,
   retryable phase; transient faults, worker-pool failures and
   timeouts retry with exponential backoff.  The fold itself is
   synchronous and per-client-batch, so retries never double-count and
   coalescing never changes the event stream.
3. **events** — alerts (and periodic drift verdicts) derived from a
   batch are journaled in an ``applied`` record and committed *before*
   live emission.  Recovery re-derives events for accepted batches,
   verifies them against stored ``applied`` records (corruption check)
   and re-emits only batches that never reached their ``applied``
   record — the durable event stream is exactly-once.
4. **degrade** — above ``shed_high_water`` total queued batches the
   service sheds the lowest-priority tenants' queues (durable ``shed``
   records + :class:`ShedEvent`) and parks them in degraded mode until
   the backlog falls under ``shed_low_water``.  ``max_resident``
   bounds resident monitor state: idle tenants are checkpointed and
   evicted LRU, then restored on their next submission.
5. **stop / kill** — :meth:`MonitorService.stop` drains, checkpoints
   and closes; :meth:`MonitorService.kill` models a hard crash (drops
   uncommitted WAL buffers on the floor).  A new service started on
   the same state directory replays to exactly the pre-crash state.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.core.config import EngineConfig
from repro.core.monitor import FDMonitor
from repro.fd.fd import FunctionalDependency
from repro.relational.errors import WorkerPoolError
from repro.relational.schema import RelationSchema
from repro.temporal.bridge import classify_monitor_state

from . import wal as walmod
from .errors import (
    BatchFailed,
    Overloaded,
    ServiceClosedError,
    ServiceError,
    ServiceKilled,
    TransientFault,
    UnknownTenantError,
    WalCorruptError,
)
from .events import (
    AlertEvent,
    DegradedEvent,
    DriftEvent,
    RecoveryEvent,
    ServiceEvent,
    ShedEvent,
    to_json,
)

__all__ = ["MonitorService", "ServiceConfig", "TenantSpec"]


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantSpec:
    """One tenant's declaration, persisted as ``spec.json``.

    ``watches`` pairs an FD (in :meth:`FunctionalDependency.parse`
    syntax) with an alert threshold (``None`` = monitor default of 1.0).
    Higher ``priority`` tenants are shed last under load.
    """

    tenant_id: str
    relation: str
    attributes: tuple[str, ...]
    watches: tuple[tuple[str, float | None], ...]
    priority: int = 0
    engine: str = "delta"
    history_every: int = 100

    def __post_init__(self) -> None:
        if not self.tenant_id or "/" in self.tenant_id or "\0" in self.tenant_id:
            raise ValueError(
                f"tenant_id must be a non-empty name without '/', "
                f"got {self.tenant_id!r}"
            )
        object.__setattr__(self, "attributes", tuple(self.attributes))
        object.__setattr__(
            self,
            "watches",
            tuple((fd, threshold) for fd, threshold in self.watches),
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "tenant_id": self.tenant_id,
            "relation": self.relation,
            "attributes": list(self.attributes),
            "watches": [
                {"fd": fd, "threshold": threshold}
                for fd, threshold in self.watches
            ],
            "priority": self.priority,
            "engine": self.engine,
            "history_every": self.history_every,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "TenantSpec":
        try:
            return cls(
                tenant_id=payload["tenant_id"],
                relation=payload["relation"],
                attributes=tuple(payload["attributes"]),
                watches=tuple(
                    (watch["fd"], watch["threshold"])
                    for watch in payload["watches"]
                ),
                priority=payload.get("priority", 0),
                engine=payload.get("engine", "delta"),
                history_every=payload.get("history_every", 100),
            )
        except (KeyError, TypeError) as error:
            raise WalCorruptError(f"malformed tenant spec: {error}") from error

    def build_monitor(self) -> FDMonitor:
        """A fresh monitor implementing this spec (empty stream)."""
        schema = RelationSchema(self.relation, list(self.attributes))
        monitor = FDMonitor(
            schema, history_every=self.history_every, engine=self.engine
        )
        for fd_text, threshold in self.watches:
            monitor.watch(FunctionalDependency.parse(fd_text), threshold)
        return monitor


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs; engine-level ones ride in ``engine``.

    All limits are validated at construction with the same message
    style :class:`~repro.core.config.EngineConfig` uses, so a bad unit
    file fails loudly at startup.
    """

    state_dir: str | Path
    queue_capacity: int = 64
    reorder_capacity: int = 16
    coalesce_max_batches: int = 8
    max_retries: int = 3
    retry_base_delay: float = 0.01
    batch_timeout: float = 5.0
    checkpoint_every: int = 50
    drift_check_every: int = 10
    shed_high_water: int | None = None
    shed_low_water: int | None = None
    max_resident: int | None = None
    retry_after_hint: float = 0.05
    sync: str = "batch"
    retain_segments: bool = False
    keep_checkpoints: int = 2
    engine: EngineConfig | None = None
    morsel_timeout: float | None = None

    def __post_init__(self) -> None:
        for name in (
            "queue_capacity",
            "reorder_capacity",
            "coalesce_max_batches",
            "checkpoint_every",
            "drift_check_every",
            "keep_checkpoints",
        ):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError(
                f"max_retries must be a non-negative integer, "
                f"got {self.max_retries!r}"
            )
        for name in ("retry_base_delay", "batch_timeout", "retry_after_hint"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"{name} must be a positive number, got {value!r}"
                )
        for name in ("shed_high_water", "shed_low_water", "max_resident"):
            value = getattr(self, name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int) or value < 1
            ):
                raise ValueError(
                    f"{name} must be a positive integer or None, got {value!r}"
                )
        if (self.shed_high_water is None) != (self.shed_low_water is None):
            raise ValueError(
                "shed_high_water and shed_low_water must be set together"
            )
        if (
            self.shed_high_water is not None
            and self.shed_low_water is not None
            and self.shed_low_water > self.shed_high_water
        ):
            raise ValueError(
                f"shed_low_water ({self.shed_low_water}) must not exceed "
                f"shed_high_water ({self.shed_high_water})"
            )
        if self.sync not in ("batch", "none"):
            raise ValueError(f"sync must be 'batch' or 'none', got {self.sync!r}")
        if self.morsel_timeout is not None and (
            not isinstance(self.morsel_timeout, (int, float))
            or self.morsel_timeout <= 0
        ):
            raise ValueError(
                f"morsel_timeout must be a positive number or None, "
                f"got {self.morsel_timeout!r}"
            )


# ----------------------------------------------------------------------
# Runtime state
# ----------------------------------------------------------------------
@dataclass
class _Tenant:
    """Per-tenant runtime state (the durable part lives in the WAL)."""

    spec: TenantSpec
    wal: walmod.TenantWal
    monitor: FDMonitor | None
    queue: asyncio.Queue
    lock: asyncio.Lock
    undegraded: asyncio.Event
    accepted_seq: int = 0
    applied_seq: int = 0
    applied_count: int = 0
    drift_kinds: dict[str, str] = field(default_factory=dict)
    pending: dict[int, list] = field(default_factory=dict)
    degraded: bool = False
    resident: bool = True
    busy: bool = False
    last_used: int = 0
    task: asyncio.Task | None = None

    @property
    def tenant_id(self) -> str:
        return self.spec.tenant_id


class MonitorService:
    """See the module docstring for the full lifecycle contract.

    ``faults`` is an optional fault hook (duck-typed; see
    :class:`repro.service.faults.FaultInjector`): ``point(name, tenant,
    seq)`` is called synchronously at every durability-relevant point
    and may raise :class:`ServiceKilled`; ``await gate(tenant, first,
    last)`` runs once per apply group inside the retry/timeout
    envelope and may raise transient faults or stall.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        faults: Any | None = None,
        on_event: Callable[[ServiceEvent], None] | None = None,
    ) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir)
        self._faults = faults
        self._on_event = on_event
        self._tenants: dict[str, _Tenant] = {}
        self._state = "new"
        self._crash_reason: str | None = None
        self.crashed = asyncio.Event()
        self.events: list[ServiceEvent] = []
        self._tick = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Activate engine knobs and recover every tenant on disk."""
        if self._state != "new":
            raise ServiceError(f"cannot start a {self._state} service")
        if self.config.engine is not None:
            self.config.engine.activate()
        if self.config.morsel_timeout is not None:
            from repro.relational import parallel

            parallel.set_morsel_timeout(self.config.morsel_timeout)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._state = "running"
        for path in sorted(self.state_dir.iterdir()):
            if (path / "spec.json").is_file():
                self._recover_tenant(path.name)

    async def stop(self) -> None:
        """Graceful shutdown: drain, checkpoint everything, close."""
        self._require_running()
        await self.drain()
        self._state = "stopped"
        for tenant in self._tenants.values():
            if tenant.task is not None:
                tenant.task.cancel()
            if tenant.resident and tenant.monitor is not None:
                self._checkpoint(tenant)
                tenant.wal.close()

    def kill(self) -> None:
        """Hard crash: no draining, no flushing, buffers dropped."""
        self._crash("killed")

    def _crash(self, reason: str) -> None:
        if self._state == "crashed":
            return
        self._state = "crashed"
        self._crash_reason = reason
        for tenant in self._tenants.values():
            if tenant.task is not None:
                tenant.task.cancel()
            tenant.wal.abandon()
        self.crashed.set()

    def _require_running(self) -> None:
        if self._state != "running":
            detail = (
                f" ({self._crash_reason})"
                if self._state == "crashed" and self._crash_reason
                else ""
            )
            raise ServiceClosedError(f"service is {self._state}{detail}")

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def add_tenant(self, spec: TenantSpec) -> None:
        """Register a tenant: persist its spec, open its WAL."""
        self._require_running()
        if spec.tenant_id in self._tenants:
            raise ServiceError(f"tenant {spec.tenant_id!r} already exists")
        directory = self.state_dir / spec.tenant_id
        directory.mkdir(parents=True, exist_ok=True)
        monitor = spec.build_monitor()  # validate before persisting
        spec_path = directory / "spec.json"
        scratch = directory / f".spec.json.tmp{os.getpid()}"
        scratch.write_text(
            json.dumps(spec.to_json(), indent=2) + "\n", encoding="utf-8"
        )
        os.replace(scratch, spec_path)
        wal = walmod.TenantWal(directory, sync=self.config.sync)
        wal.open_segment(1)
        tenant = self._make_tenant(spec, wal, monitor)
        self._tenants[spec.tenant_id] = tenant
        self._start_worker(tenant)
        self._touch(tenant)
        self._maybe_evict()

    def _make_tenant(
        self, spec: TenantSpec, wal: walmod.TenantWal, monitor: FDMonitor
    ) -> _Tenant:
        return _Tenant(
            spec=spec,
            wal=wal,
            monitor=monitor,
            queue=asyncio.Queue(maxsize=self.config.queue_capacity),
            lock=asyncio.Lock(),
            undegraded=self._set_event(),
        )

    @staticmethod
    def _set_event() -> asyncio.Event:
        event = asyncio.Event()
        event.set()
        return event

    def _tenant(self, tenant_id: str) -> _Tenant:
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise UnknownTenantError(tenant_id)
        return tenant

    @property
    def tenant_ids(self) -> list[str]:
        return sorted(self._tenants)

    def _touch(self, tenant: _Tenant) -> None:
        self._tick += 1
        tenant.last_used = self._tick

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    async def submit(
        self,
        tenant_id: str,
        batch_id: int,
        rows: list,
        *,
        wait: bool = True,
    ) -> str:
        """Offer one client batch; see the module docstring protocol.

        Returns ``"accepted"`` (durably journaled), ``"duplicate"``
        (already accepted — idempotent resubmission) or ``"buffered"``
        (parked until the preceding batch arrives).  Raises
        :class:`Overloaded` when flow control refuses the batch.
        """
        if not isinstance(batch_id, int) or batch_id < 1:
            raise ValueError(
                f"batch_id must be a positive integer, got {batch_id!r}"
            )
        self._require_running()
        tenant = self._tenant(tenant_id)
        self._ensure_resident(tenant)
        self._touch(tenant)
        self._maybe_unshed()
        hint = self.config.retry_after_hint
        if tenant.degraded:
            if not wait:
                raise Overloaded(tenant_id, "degraded (load shed)", hint)
            while tenant.degraded:
                await tenant.undegraded.wait()
                self._require_running()
        if batch_id <= tenant.accepted_seq:
            return "duplicate"
        if batch_id in tenant.pending:
            # Parked in the (volatile) reorder buffer: refresh the rows
            # but keep reporting "buffered" — only a journaled batch may
            # be acknowledged as accepted/duplicate.
            tenant.pending[batch_id] = rows
            return "buffered"
        if batch_id > tenant.accepted_seq + 1:
            if len(tenant.pending) >= self.config.reorder_capacity:
                # Waiting cannot fill the sequence gap, so the reorder
                # buffer rejects regardless of ``wait``.
                raise Overloaded(tenant_id, "reorder buffer full", hint)
            tenant.pending[batch_id] = rows
            return "buffered"
        async with tenant.lock:
            self._require_running()
            if batch_id <= tenant.accepted_seq:
                return "duplicate"  # raced with a duplicate submitter
            if not wait and tenant.queue.full():
                raise Overloaded(tenant_id, "queue full", hint)
            try:
                self._accept(tenant, batch_id, rows)
                await tenant.queue.put((batch_id, rows))
                # Ready follow-ons from the reorder buffer ride along,
                # in order, under the same lock.
                while tenant.accepted_seq + 1 in tenant.pending:
                    next_seq = tenant.accepted_seq + 1
                    next_rows = tenant.pending.pop(next_seq)
                    self._accept(tenant, next_seq, next_rows)
                    await tenant.queue.put((next_seq, next_rows))
            except ServiceKilled:
                self._crash("killed at a fault point during accept")
                raise
        self._maybe_shed()
        return "accepted"

    def _accept(self, tenant: _Tenant, seq: int, rows: list) -> None:
        """Journal + commit one batch (the durable-accept step)."""
        self._point("accept.start", tenant, seq)
        tenant.wal.append_batch(seq, rows)
        self._point("accept.journaled", tenant, seq)
        tenant.wal.commit()
        tenant.accepted_seq = seq
        self._point("accept.committed", tenant, seq)

    async def drain(self) -> None:
        """Await until every queued batch has been applied."""
        while True:
            self._require_running()
            self._maybe_unshed()
            if all(
                tenant.queue.qsize() == 0 and not tenant.busy
                for tenant in self._tenants.values()
            ):
                return
            await asyncio.sleep(0.002)

    # ------------------------------------------------------------------
    # Apply loop
    # ------------------------------------------------------------------
    def _start_worker(self, tenant: _Tenant) -> None:
        tenant.task = asyncio.get_running_loop().create_task(
            self._run_tenant(tenant), name=f"repro-tenant-{tenant.tenant_id}"
        )

    async def _run_tenant(self, tenant: _Tenant) -> None:
        try:
            while True:
                group = [await tenant.queue.get()]
                while len(group) < self.config.coalesce_max_batches:
                    try:
                        group.append(tenant.queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                tenant.busy = True
                try:
                    await self._process_group(tenant, group)
                finally:
                    tenant.busy = False
                self._maybe_unshed()
        except asyncio.CancelledError:
            raise
        except ServiceKilled:
            self._crash(
                f"killed at a fault point while applying for "
                f"{tenant.tenant_id!r}"
            )
        except Exception as error:  # noqa: BLE001 — a worker must not die silently
            self._crash(f"tenant {tenant.tenant_id!r} worker died: {error!r}")

    async def _process_group(
        self, tenant: _Tenant, group: list[tuple[int, list]]
    ) -> None:
        first, last = group[0][0], group[-1][0]
        try:
            await self._gate_with_retries(tenant, first, last)
        except BatchFailed as failure:
            # The retry budget is gone: shed the group durably rather
            # than stall the tenant's queue forever.
            tenant.wal.append_shed(first, last)
            tenant.wal.commit()
            self._emit(
                ShedEvent(
                    tenant=tenant.tenant_id,
                    first_seq=first,
                    last_seq=last,
                    dropped=len(group),
                )
            )
            self._emit(
                DegradedEvent(
                    tenant=tenant.tenant_id,
                    reason="retry-exhausted",
                    detail=str(failure),
                )
            )
            return
        for seq, rows in group:
            self._point("apply.start", tenant, seq)
            events = self._apply_batch(tenant, seq, rows)
            tenant.wal.append_applied(seq, [to_json(e) for e in events])
            self._point("apply.journaled", tenant, seq)
            tenant.wal.commit()
            self._point("apply.committed", tenant, seq)
            for event in events:
                self._emit(event)
            if tenant.applied_count % self.config.checkpoint_every == 0:
                self._point("checkpoint.pre", tenant, seq)
                self._checkpoint(tenant)
                self._point("checkpoint.post", tenant, seq)

    async def _gate_with_retries(
        self, tenant: _Tenant, first: int, last: int
    ) -> None:
        """The awaitable, retryable phase preceding a group's folds."""
        attempts = 0
        while True:
            attempts += 1
            try:
                await asyncio.wait_for(
                    self._gate(tenant, first, last),
                    timeout=self.config.batch_timeout,
                )
                return
            except (TransientFault, WorkerPoolError, asyncio.TimeoutError, TimeoutError):
                if attempts > self.config.max_retries:
                    raise BatchFailed(
                        tenant.tenant_id, first, last, attempts
                    ) from None
                delay = self.config.retry_base_delay * (2 ** (attempts - 1))
                await asyncio.sleep(delay)

    async def _gate(self, tenant: _Tenant, first: int, last: int) -> None:
        if self._faults is not None:
            await self._faults.gate(tenant.tenant_id, first, last)

    def _apply_batch(
        self, tenant: _Tenant, seq: int, rows: list
    ) -> list[ServiceEvent]:
        """Fold one client batch; derive its events (pure, sync).

        This is the *only* place monitor state advances, it has no
        await points, and recovery replays it verbatim — which is why
        the derived events are deterministic for a given WAL.
        """
        monitor = tenant.monitor
        assert monitor is not None
        tenant.applied_seq = seq
        events: list[ServiceEvent] = []
        for alert in monitor.extend(rows):
            events.append(
                AlertEvent(
                    tenant=tenant.tenant_id,
                    seq=seq,
                    fd=str(alert.fd),
                    confidence=alert.confidence,
                    threshold=alert.threshold,
                    num_rows=alert.num_rows,
                )
            )
        tenant.applied_count += 1
        if tenant.applied_count % self.config.drift_check_every == 0:
            for state in monitor.watched:
                verdict = classify_monitor_state(state)
                kind = verdict.kind.value
                key = str(state.fd)
                if tenant.drift_kinds.get(key, "stable") != kind:
                    tenant.drift_kinds[key] = kind
                    events.append(
                        DriftEvent(
                            tenant=tenant.tenant_id,
                            seq=seq,
                            fd=key,
                            verdict=kind,
                            statistic=verdict.statistic,
                            detail=verdict.detail,
                        )
                    )
        return events

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _checkpoint(self, tenant: _Tenant) -> None:
        payload = walmod.encode_snapshot(
            {
                "monitor": tenant.monitor,
                "applied_count": tenant.applied_count,
                "drift_kinds": dict(tenant.drift_kinds),
            }
        )
        tenant.wal.checkpoint(
            tenant.applied_seq,
            payload,
            keep_checkpoints=self.config.keep_checkpoints,
            retain_segments=self.config.retain_segments,
        )

    def _recover_tenant(
        self, tenant_id: str, *, announce: bool = True
    ) -> _Tenant:
        """Rebuild one tenant from its directory (start or un-evict)."""
        directory = self.state_dir / tenant_id
        spec_payload = json.loads(
            (directory / "spec.json").read_text(encoding="utf-8")
        )
        spec = TenantSpec.from_json(spec_payload)
        wal = walmod.TenantWal(directory, sync=self.config.sync)
        recovery = wal.recover()
        if recovery.checkpoint_payload is not None:
            state = walmod.decode_snapshot(recovery.checkpoint_payload)
            monitor = state["monitor"]
            applied_count = state["applied_count"]
            drift_kinds = dict(state.get("drift_kinds", {}))
        else:
            monitor = spec.build_monitor()
            applied_count = 0
            drift_kinds = {}
        wal.open_segment(recovery.max_seq + 1)
        existing = self._tenants.get(tenant_id)
        if existing is not None:
            tenant = existing
            tenant.wal = wal
            tenant.monitor = monitor
            tenant.resident = True
        else:
            tenant = self._make_tenant(spec, wal, monitor)
            self._tenants[tenant_id] = tenant
        tenant.accepted_seq = recovery.max_seq
        tenant.applied_seq = recovery.checkpoint_seq
        tenant.applied_count = applied_count
        tenant.drift_kinds = drift_kinds
        replayed = reemitted = 0
        deferred: list[ServiceEvent] = []
        for seq in sorted(recovery.batches):
            if seq in recovery.shed:
                continue
            events = self._apply_batch(tenant, seq, recovery.batches[seq])
            payload = [to_json(e) for e in events]
            replayed += 1
            stored = recovery.applied.get(seq)
            if stored is not None:
                # Already durably emitted: verify determinism, emit
                # nothing (neither durably nor live).
                if stored != payload:
                    raise WalCorruptError(
                        f"replay of tenant {tenant_id!r} batch {seq} derived "
                        f"different events than its applied record — "
                        f"non-deterministic state or damaged WAL"
                    )
            else:
                tenant.wal.append_applied(seq, payload)
                reemitted += 1
                deferred.extend(events)
        tenant.wal.commit()
        self._start_worker(tenant)
        for event in deferred:
            self._emit(event)
        if announce:
            self._emit(
                RecoveryEvent(
                    tenant=tenant_id,
                    checkpoint_seq=recovery.checkpoint_seq,
                    replayed=replayed,
                    reemitted=reemitted,
                    resumed_seq=recovery.max_seq + 1,
                )
            )
        self._touch(tenant)
        return tenant

    # ------------------------------------------------------------------
    # Degradation
    # ------------------------------------------------------------------
    def _total_queued(self) -> int:
        return sum(t.queue.qsize() for t in self._tenants.values())

    def _maybe_shed(self) -> None:
        high = self.config.shed_high_water
        if high is None or self._total_queued() <= high:
            return
        victims = sorted(
            (t for t in self._tenants.values() if t.queue.qsize()),
            key=lambda t: (t.spec.priority, t.tenant_id),
        )
        # Hysteresis: shed (lowest priority first) until the backlog is
        # back under the high-water mark; degraded mode then clears only
        # once the backlog falls to the low-water mark, so a tenant is
        # never shed and un-shed by the same burst.
        for tenant in victims:
            if self._total_queued() <= high:
                break
            self._shed(tenant)
        # Shedding may itself clear the backlog; re-evaluate so a shed
        # tenant with nothing left queued anywhere cannot wedge in
        # degraded mode waiting for a worker that has no work.
        self._maybe_unshed()

    def _shed(self, tenant: _Tenant) -> None:
        dropped: list[tuple[int, list]] = []
        while True:
            try:
                dropped.append(tenant.queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        if not dropped:
            return
        first, last = dropped[0][0], dropped[-1][0]
        tenant.wal.append_shed(first, last)
        tenant.wal.commit()
        self._emit(
            ShedEvent(
                tenant=tenant.tenant_id,
                first_seq=first,
                last_seq=last,
                dropped=len(dropped),
            )
        )
        if not tenant.degraded:
            tenant.degraded = True
            tenant.undegraded.clear()
            self._emit(
                DegradedEvent(
                    tenant=tenant.tenant_id,
                    reason="entered",
                    detail=f"load shed batches {first}..{last}",
                )
            )

    def _maybe_unshed(self) -> None:
        low = self.config.shed_low_water
        if low is None or self._total_queued() > low:
            return
        for tenant in self._tenants.values():
            if tenant.degraded:
                tenant.degraded = False
                tenant.undegraded.set()
                self._emit(
                    DegradedEvent(tenant=tenant.tenant_id, reason="recovered")
                )

    # ------------------------------------------------------------------
    # Resident-state bounding (LRU eviction)
    # ------------------------------------------------------------------
    def _maybe_evict(self) -> None:
        limit = self.config.max_resident
        if limit is None:
            return
        resident = [t for t in self._tenants.values() if t.resident]
        if len(resident) <= limit:
            return
        idle = sorted(
            (
                t
                for t in resident
                if not t.busy and t.queue.qsize() == 0 and not t.pending
            ),
            key=lambda t: t.last_used,
        )
        for tenant in idle[: len(resident) - limit]:
            self._evict(tenant)

    def _evict(self, tenant: _Tenant) -> None:
        self._checkpoint(tenant)
        tenant.wal.close()
        if tenant.task is not None:
            tenant.task.cancel()
            tenant.task = None
        tenant.monitor = None
        tenant.resident = False
        self._emit(
            DegradedEvent(
                tenant=tenant.tenant_id,
                reason="evicted",
                detail="resident-state limit reached; snapshot on disk",
            )
        )

    def _ensure_resident(self, tenant: _Tenant) -> None:
        if tenant.resident:
            return
        self._recover_tenant(tenant.tenant_id, announce=False)
        self._maybe_evict()

    # ------------------------------------------------------------------
    # Events & fault points
    # ------------------------------------------------------------------
    def _emit(self, event: ServiceEvent) -> None:
        self.events.append(event)
        if self._on_event is not None:
            self._on_event(event)

    def _point(self, name: str, tenant: _Tenant, seq: int) -> None:
        if self._faults is not None:
            self._faults.point(name, tenant.tenant_id, seq)
