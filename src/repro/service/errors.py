"""Typed failures of the monitoring service.

The service distinguishes three failure families, because callers react
to each differently:

* **flow control** — :class:`Overloaded` carries an explicit
  ``retry_after`` hint; the caller backs off and resubmits.  Rejection
  is a *feature*: the bounded queues refuse work instead of buffering
  unboundedly.
* **transient faults** — :class:`TransientFault` (and
  :class:`~repro.relational.errors.WorkerPoolError` from the parallel
  layer) are retried in-service with exponential backoff; only when the
  retry budget is exhausted does :class:`BatchFailed` escape.
* **corruption / protocol** — :class:`WalCorruptError` and friends are
  never retried; they indicate a bug or a damaged store and must
  surface loudly.

:class:`ServiceKilled` is the crash simulator's exception: the
fault-injection harness raises it at seeded points to model a hard
process death, and the service treats it as exactly that — no cleanup,
no flushing, state recovered from the WAL on the next start.
"""

from __future__ import annotations

from repro.relational.errors import ReproError

__all__ = [
    "BatchFailed",
    "Overloaded",
    "ServiceClosedError",
    "ServiceError",
    "ServiceKilled",
    "TransientFault",
    "UnknownTenantError",
    "WalCorruptError",
]


class ServiceError(ReproError):
    """Base class for monitoring-service failures."""


class UnknownTenantError(ServiceError, KeyError):
    """A tenant id was referenced that the service does not host."""

    def __init__(self, tenant_id: str) -> None:
        super().__init__(f"unknown tenant {tenant_id!r}")
        self.tenant_id = tenant_id


class ServiceClosedError(ServiceError):
    """The service is not accepting work (stopped, or crashed)."""


class Overloaded(ServiceError):
    """Typed backpressure rejection: resubmit after ``retry_after``.

    Raised on non-waiting submission when the tenant's bounded queue is
    full, when its reorder buffer is exhausted, or while the tenant is
    load-shed into degraded mode.  Nothing was journaled — the batch
    must be resubmitted.
    """

    def __init__(self, tenant_id: str, reason: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant_id!r} overloaded ({reason}); "
            f"retry after {retry_after:g}s"
        )
        self.tenant_id = tenant_id
        self.reason = reason
        self.retry_after = retry_after


class TransientFault(ServiceError):
    """A retryable failure injected or detected before state mutation."""


class BatchFailed(ServiceError):
    """A batch exhausted its retry budget without being applied."""

    def __init__(
        self, tenant_id: str, first_seq: int, last_seq: int, attempts: int
    ) -> None:
        span = (
            f"batch {first_seq}"
            if first_seq == last_seq
            else f"batches {first_seq}..{last_seq}"
        )
        super().__init__(
            f"tenant {tenant_id!r} {span} failed after {attempts} attempt(s)"
        )
        self.tenant_id = tenant_id
        self.first_seq = first_seq
        self.last_seq = last_seq
        self.attempts = attempts


class ServiceKilled(ServiceError):
    """Simulated hard crash (fault injection): die without cleanup."""


class WalCorruptError(ServiceError):
    """The write-ahead log or a checkpoint is structurally damaged."""
