"""The EB (entropy-based) baseline (system S5 in DESIGN.md).

A faithful reconstruction of the Chiang & Miller repair method from the
paper's Section 5 description, plus the ε measures used by Theorem 1:

* :func:`entropy`, :func:`conditional_entropy`,
  :func:`variation_of_information` — clustering information measures;
* :func:`eb_extend_by_one` / :func:`eb_repair` — the EB candidate
  ranking and repair loop, fully metered;
* :func:`epsilon_cb` / :func:`epsilon_vi` — the equivalence measures
  (with the Theorem 1 erratum documented in
  :mod:`repro.eb.measures`).
"""

from .entropy import (
    EntropyCost,
    conditional_entropy,
    entropy,
    joint_class_counts,
    variation_of_information,
)
from .measures import (
    epsilon_cb,
    epsilon_vi,
    g3_error,
    information_dependency,
    measures_agree_on_zero,
)
from .repair import EBCandidate, EBRepairResult, eb_extend_by_one, eb_repair

__all__ = [
    "EBCandidate",
    "EBRepairResult",
    "EntropyCost",
    "conditional_entropy",
    "eb_extend_by_one",
    "eb_repair",
    "entropy",
    "epsilon_cb",
    "epsilon_vi",
    "g3_error",
    "information_dependency",
    "joint_class_counts",
    "measures_agree_on_zero",
    "variation_of_information",
]
