"""Entropy, conditional entropy and Variation of Information over clusterings.

These are the ingredients of the EB (entropy-based) repair method of
Chiang & Miller that the paper compares against in Section 5.  All
quantities are computed over :class:`~repro.relational.partition.Partition`
or :class:`~repro.relational.partition.StrippedPartition` objects (the
stripped form treats every uncovered row as its own singleton class,
so both representations induce the same clustering) using natural
logarithms:

* ``H(C) = − Σ_k P(k) · log P(k)``
* ``H(C|C′) = − Σ_{k,k′} P(k,k′) · log P(k|k′)``
* ``VI(C, C′) = H(C|C′) + H(C′|C)``  (Meilă's Variation of Information)

The implementation also exposes an operation counter
(:class:`EntropyCost`) because the paper's central efficiency argument
is that EB "requires to store the tuples in order to be able to perform
the intersections between clusters while with the CB technique we do
not keep trace of all tuples in the groups but only of their amount" —
the ablation bench quantifies exactly that.

The arithmetic itself runs through the active kernel backend
(:mod:`repro.relational.kernels`): the reference backend keeps the
original row loops, the numpy backend computes the same sums as array
reductions.  Cost accounting is backend-independent — both charge one
joint pass (``2n`` rows) and one unit per intersection cell, so the
ablation's EB-vs-CB cost story is unaffected by backend choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.relational import kernels
from repro.relational.kernels import python_backend
from repro.relational.partition import Partition, StrippedPartition

#: Either partition representation; they induce the same clustering.
AnyPartition = Union[Partition, StrippedPartition]

__all__ = [
    "AnyPartition",
    "EntropyCost",
    "entropy",
    "entropy_of",
    "conditional_entropy",
    "variation_of_information",
    "joint_class_counts",
]


@dataclass
class EntropyCost:
    """Accumulates the row/intersection work done by entropy computations."""

    rows_touched: int = 0
    intersections: int = 0

    def merge(self, other: "EntropyCost") -> None:
        """Fold another cost record into this one."""
        self.rows_touched += other.rows_touched
        self.intersections += other.intersections


def entropy(partition: AnyPartition, cost: EntropyCost | None = None) -> float:
    """Shannon entropy of a clustering (class sizes over n).

    Stripped partitions contribute their implicit singletons in bulk:
    each accounts for ``log(n)/n``.
    """
    n = partition.num_rows
    if n == 0:
        return 0.0
    if cost is not None:
        cost.rows_touched += n
    return kernels.get_backend().entropy_from_partition(partition)


def entropy_of(relation, attrs, cost: EntropyCost | None = None) -> float:
    """``H(π_attrs)`` of a relation, preferring the delta engine.

    On a relation produced by ``Relation.extend`` (or otherwise delta-
    tracked), the entropy is read off the tracker's maintained size
    histogram — no partition is materialized and no rows are touched,
    so no cost is charged.  Cold relations fall back to the partition
    path with the usual accounting.
    """
    tracked = relation.stats.tracked_entropy(attrs)
    if tracked is not None:
        return tracked
    return entropy(relation.stripped_partition(attrs), cost)


def joint_class_counts(
    left: AnyPartition, right: AnyPartition, cost: EntropyCost | None = None
) -> dict[tuple[int, int], int]:
    """``|C_k ∩ C′_k′|`` for every intersecting class pair.

    One pass over the rows via class-index arrays; this is the cluster
    intersection work the paper charges the EB method for.  (Cell order
    is backend-dependent: row-scan order on the reference backend,
    sorted by class pair on numpy.)
    """
    counts = kernels.get_backend().joint_class_counts(left, right)
    if cost is not None:
        cost.rows_touched += 2 * left.num_rows
        cost.intersections += len(counts)
    return counts


def conditional_entropy(
    target: AnyPartition,
    given: AnyPartition,
    cost: EntropyCost | None = None,
    joint: dict[tuple[int, int], int] | None = None,
) -> float:
    """``H(target | given)``.

    ``joint`` may carry precomputed :func:`joint_class_counts`
    (keyed ``(target_class, given_class)``) to share one intersection
    pass between the two conditional entropies of a VI computation;
    with a joint supplied, the sum runs over the dict as given.
    """
    n = target.num_rows
    if n == 0:
        return 0.0
    if joint is not None:
        return python_backend.conditional_entropy_from_joint(
            n, given.index_sizes(), joint
        )
    value, cells = kernels.get_backend().conditional_entropy(target, given)
    if cost is not None:
        cost.rows_touched += 2 * n
        cost.intersections += cells
    return value


def variation_of_information(
    left: AnyPartition, right: AnyPartition, cost: EntropyCost | None = None
) -> float:
    """``VI(left, right)`` — symmetric, zero iff the clusterings coincide."""
    if left.num_rows == 0:
        return 0.0
    forward, backward, cells = kernels.get_backend().conditional_entropy_pair(
        left, right
    )
    if cost is not None:
        cost.rows_touched += 2 * left.num_rows
        cost.intersections += cells
    return forward + backward
