"""The EB (entropy-based) repair method, reconstructed from Section 5.

The original tool of Chiang & Miller (ICDE 2011) "was unfortunately
impossible" for the authors to compare against experimentally because it
is unavailable; we reimplement the algorithm exactly as the paper
describes it so the comparison becomes runnable:

1. compute the ground-truth clustering ``C_XY`` of the violated FD;
2. for each candidate attribute ``A ∈ R \\ XY``, compute ``C_XA`` and
   ``C_A``;
3. rank candidates by ``H(C_XY | C_XA)`` ascending (homogeneity), tie-
   broken by ``H(C_A | C_XY)`` ascending (completeness);
4. a candidate with ``VI(C_XY, C_XA) = 0`` is homogeneous *and*
   complete — EB's best case.

Every entropy call is metered through :class:`EntropyCost`, so the
CB-vs-EB ablation bench can report the paper's qualitative claim — EB
must intersect clusterings tuple by tuple, CB only counts — as measured
numbers.  Multi-attribute extension (which the paper notes EB lacks and
CB "easily supports") is provided as a greedy loop for completeness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import assess
from repro.relational.relation import Relation

from .entropy import EntropyCost, conditional_entropy, variation_of_information

__all__ = ["EBCandidate", "EBRepairResult", "eb_extend_by_one", "eb_repair"]


@dataclass(frozen=True)
class EBCandidate:
    """A candidate attribute with its EB ranking entropies."""

    fd: FunctionalDependency
    attribute: str
    homogeneity: float  #: H(C_XY | C_XA) — 0 ⇔ homogeneous
    completeness: float  #: H(C_A | C_XY) — 0 ⇔ complete (EB tie-break)
    vi: float  #: VI(C_XY, C_XA)

    @property
    def is_homogeneous(self) -> bool:
        """Whether ``C_XA`` is homogeneous w.r.t. the ground truth."""
        return self.homogeneity <= 1e-12

    @property
    def is_exact(self) -> bool:
        """Homogeneity ⇔ the extended FD is exact (confidence 1)."""
        return self.is_homogeneous

    @property
    def rank_key(self) -> tuple:
        """EB's ordering: homogeneity first, completeness tie-break."""
        return (self.homogeneity, self.completeness, self.attribute)

    def __str__(self) -> str:
        return (
            f"{self.fd} (+{self.attribute}; H(XY|XA)={self.homogeneity:.4g}, "
            f"H(A|XY)={self.completeness:.4g})"
        )


@dataclass
class EBRepairResult:
    """Outcome of one EB repair pass (single FD)."""

    base: FunctionalDependency
    candidates: list[EBCandidate] = field(default_factory=list)
    added: tuple[str, ...] = ()
    repaired: FunctionalDependency | None = None
    cost: EntropyCost = field(default_factory=EntropyCost)
    elapsed_seconds: float = 0.0

    @property
    def found(self) -> bool:
        """Whether an exact repaired FD was reached."""
        return self.repaired is not None

    @property
    def best(self) -> EBCandidate | None:
        """The top-ranked candidate of the last extension step."""
        return self.candidates[0] if self.candidates else None


def eb_extend_by_one(
    relation: Relation,
    fd: FunctionalDependency,
    base: FunctionalDependency | None = None,
    cost: EntropyCost | None = None,
) -> list[EBCandidate]:
    """One EB ranking pass over the candidate attributes of ``fd``.

    ``base`` fixes the ground-truth clustering ``C_XY`` (it stays the
    original FD's throughout an iterated repair, as in Section 5).
    """
    base = base or fd
    cost = cost if cost is not None else EntropyCost()
    # Stripped partitions induce the same clusterings (singletons are
    # implicit) and come from the relation's partition cache, so C_XA
    # is an O(covered) refinement of the cached C_X.
    ground_truth = relation.stripped_partition(list(base.attributes))
    if fd.antecedent:
        relation.stripped_partition(list(fd.antecedent))  # prime π_X for the C_XA refinements
    candidates: list[EBCandidate] = []
    exclude = set(fd.attributes)
    for attr in relation.attribute_names:
        if attr in exclude:
            continue
        if relation.column(attr).has_nulls:
            continue
        extended = fd.extended(attr)
        cxa = relation.stripped_partition(list(extended.antecedent))
        ca = relation.stripped_partition([attr])
        homogeneity = conditional_entropy(ground_truth, cxa, cost)
        completeness = conditional_entropy(ca, ground_truth, cost)
        vi = variation_of_information(ground_truth, cxa, cost)
        candidates.append(
            EBCandidate(
                fd=extended,
                attribute=attr,
                homogeneity=homogeneity,
                completeness=completeness,
                vi=vi,
            )
        )
    candidates.sort(key=lambda c: c.rank_key)
    return candidates


def eb_repair(
    relation: Relation,
    fd: FunctionalDependency,
    max_added_attributes: int = 1,
) -> EBRepairResult:
    """Run the EB method on one violated FD.

    With the default ``max_added_attributes=1`` this is the method as
    published (single-attribute extension).  Larger values iterate
    greedily — always following the top-ranked candidate — to give EB
    the same multi-attribute capability the paper credits CB with; the
    greedy path means EB still explores a single branch, not the CB
    queue's full frontier.
    """
    start = time.perf_counter()
    result = EBRepairResult(base=fd)
    if assess(relation, fd).is_exact:
        result.repaired = fd
        result.elapsed_seconds = time.perf_counter() - start
        return result
    current = fd
    added: list[str] = []
    for _ in range(max_added_attributes):
        candidates = eb_extend_by_one(relation, current, base=fd, cost=result.cost)
        result.candidates = candidates
        if not candidates:
            break
        best = candidates[0]
        added.append(best.attribute)
        current = best.fd
        if best.is_exact:
            result.repaired = current
            break
    result.added = tuple(added)
    result.elapsed_seconds = time.perf_counter() - start
    return result
