"""The ε measures of Section 5 and the Theorem 1 equivalence.

For a base FD ``F : X → Y`` and a candidate extension ``F^Z : XZ → Y``::

    ε_VI(F^Z)  = VI(C_XY, C_XZ) = H(C_XY | C_XZ) + H(C_XZ | C_XY)
    ε_CB(F^Z)  = ic_{F^Z} + |g_{F^Z}|  =  (1 − c_{F^Z}) + |g_{F^Z}|

Theorem 1 claims the two measures are *equivalent* (same null sets).

**Reproduction finding** (documented in EXPERIMENTS.md and exercised in
``tests/eb/test_equivalence.py``): only one direction holds in general.

* ``ε_CB = 0  ⟹  ε_VI = 0`` — sound, and property-tested here.
* The converse fails: take two tuples ``(x=a, z=z1, y=y1)`` and
  ``(x=b, z=z2, y=y1)``.  Then ``C_XZ = C_XY`` (both discrete), so
  ``ε_VI = 0`` and the repair is exact (``c = 1``), but
  ``g = |π_XZ| − |π_Y| = 2 − 1 = 1``, hence ``ε_CB = 1 > 0``.  The
  paper's proof step "∀y ∃! (x, z)" silently assumes injectivity, which
  ``VI(C_XY, C_XZ) = 0`` does not deliver.

What *is* true in both directions (and also property-tested):
``ε_VI = 0 ⟺ confidence = 1 and |π_XZ| = |π_XY|`` — i.e. ε_VI
characterizes exactness plus completeness w.r.t. the ground truth
clustering, while ε_CB additionally demands bijectivity onto ``C_Y``.
"""

from __future__ import annotations

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import assess
from repro.relational.relation import Relation

from .entropy import EntropyCost, conditional_entropy, variation_of_information

__all__ = [
    "epsilon_cb",
    "epsilon_vi",
    "g3_error",
    "information_dependency",
    "measures_agree_on_zero",
]


def epsilon_cb(
    relation: Relation,
    base: FunctionalDependency,
    added: tuple[str, ...] = (),
) -> float:
    """``ε_CB = ic + |g|`` of the candidate ``base`` extended by ``added``."""
    candidate = base.extended(*added) if added else base
    assessment = assess(relation, candidate)
    return assessment.inconsistency + abs(assessment.goodness)


def epsilon_vi(
    relation: Relation,
    base: FunctionalDependency,
    added: tuple[str, ...] = (),
    cost: EntropyCost | None = None,
) -> float:
    """``ε_VI = VI(C_XY, C_XZ)`` for the candidate ``base`` + ``added``.

    The ground-truth clustering is ``C_XY`` of the *base* FD, as in the
    EB method's setup (Section 5).
    """
    candidate = base.extended(*added) if added else base
    ground_truth = relation.partition(list(base.attributes))
    extended = relation.partition(list(candidate.antecedent))
    return variation_of_information(ground_truth, extended, cost)


def information_dependency(
    relation: Relation,
    fd: FunctionalDependency,
    cost: EntropyCost | None = None,
) -> float:
    """The axiomatic approximation measure of Giannella [21]: ``H(C_XY | C_X)``.

    Section 5 observes that the measure shown axiomatically best in [21]
    is (a normalized version of) this conditional entropy, and that the
    paper's ``ic = 1 − c`` is equivalent to it in the null-set sense:
    both vanish exactly on satisfied FDs.  The test suite verifies that
    equivalence property-based.
    """
    ground = relation.partition(list(fd.attributes))
    antecedent = relation.partition(list(fd.antecedent))
    return conditional_entropy(ground, antecedent, cost)


def g3_error(relation: Relation, fd: FunctionalDependency) -> float:
    """Kivinen–Mannila ``g3``: the classical AFD approximation measure.

    The minimum *fraction of tuples to delete* so the FD holds: within
    each X-class keep the plurality Y-value, drop the rest.  Included
    because the AFD literature the paper builds on (Giannella &
    Robertson [5], cited for approximation measures) is defined in
    terms of g3; ``g3 = 0 ⟺ ic = 0 ⟺ H(C_XY|C_X) = 0``.
    """
    n = relation.num_rows
    if n == 0:
        return 0.0
    x_partition = relation.partition(list(fd.antecedent))
    y_columns = [relation.column(a).codes for a in fd.consequent]
    kept = 0
    for cls_rows in x_partition:
        counts: dict[tuple[int, ...], int] = {}
        for row in cls_rows:
            key = tuple(codes[row] for codes in y_columns)
            counts[key] = counts.get(key, 0) + 1
        kept += max(counts.values())
    return (n - kept) / n


def measures_agree_on_zero(
    relation: Relation,
    base: FunctionalDependency,
    added: tuple[str, ...] = (),
    tolerance: float = 1e-12,
) -> bool:
    """Check the *sound* direction of Theorem 1 on one candidate.

    Returns ``True`` unless ``ε_CB = 0`` while ``ε_VI > 0`` — the
    implication the paper proves correctly.  (The converse can fail;
    see the module docstring.)
    """
    cb = epsilon_cb(relation, base, added)
    if cb > tolerance:
        return True
    return epsilon_vi(relation, base, added) <= tolerance
