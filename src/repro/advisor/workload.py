"""Workload-driven advisor evaluation: measured before/after times.

The advisor (:func:`repro.advisor.recommend_indexes`) derives index
recommendations from *exact* FDs.  This module closes the loop the
paper's Section 6 narrative implies: generate a query stream (see
:mod:`repro.datagen.queries`), run every query once against the plain
executor and once against the advisor-built indexes, and report the
measured wall-clock times side by side.  ``benchmarks/bench_sql.py``
records the totals into ``BENCH_results.json``.

Single-table queries route through
:func:`repro.advisor.rewrite.execute_indexed`, which picks a covering
index for the WHERE equality bindings when one exists and falls back
to a scan otherwise (results are verified identical to the baseline
either way).  Join queries have no single-relation index path yet;
they are timed against the plain executor on both sides so the
aggregate totals stay comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.datagen.queries import GeneratedQuery
from repro.relational.catalog import Catalog
from repro.sql.executor import execute
from repro.sql.parser import parse

from .advisor import recommend_indexes
from .index import IndexedRelation
from .rewrite import execute_indexed

__all__ = ["QueryTiming", "WorkloadReport", "evaluate_workload"]


@dataclass(frozen=True)
class QueryTiming:
    """Measured before/after times for one workload query."""

    name: str
    kind: str
    table: str
    sql: str
    baseline_seconds: float
    advised_seconds: float
    access_path: str  # "index" | "scan" | "join"
    rows: int

    @property
    def speedup(self) -> float:
        """Baseline time over advised time (>1 means the index helped)."""
        if self.advised_seconds <= 0.0:
            return float("inf")
        return self.baseline_seconds / self.advised_seconds


@dataclass(frozen=True)
class WorkloadReport:
    """Aggregate of an advisor evaluation over one query stream."""

    timings: tuple[QueryTiming, ...]
    indexes_built: tuple[tuple[str, tuple[str, ...]], ...]

    @property
    def baseline_seconds(self) -> float:
        return sum(t.baseline_seconds for t in self.timings)

    @property
    def advised_seconds(self) -> float:
        return sum(t.advised_seconds for t in self.timings)

    @property
    def speedup(self) -> float:
        if self.advised_seconds <= 0.0:
            return float("inf")
        return self.baseline_seconds / self.advised_seconds

    @property
    def indexed_queries(self) -> int:
        return sum(1 for t in self.timings if t.access_path == "index")

    def __str__(self) -> str:
        lines = [
            "Workload evaluation "
            f"({len(self.timings)} queries, {self.indexed_queries} via index):"
        ]
        for t in self.timings:
            lines.append(
                f"  {t.name:<18} {t.access_path:<5} "
                f"baseline {t.baseline_seconds * 1e3:8.3f}ms  "
                f"advised {t.advised_seconds * 1e3:8.3f}ms  "
                f"({t.speedup:.2f}x)"
            )
        lines.append(
            f"  total: baseline {self.baseline_seconds * 1e3:.3f}ms, "
            f"advised {self.advised_seconds * 1e3:.3f}ms "
            f"({self.speedup:.2f}x)"
        )
        return "\n".join(lines)


def evaluate_workload(
    catalog: Catalog,
    queries: list[GeneratedQuery],
    engine: str = "columnar",
    repeats: int = 1,
) -> WorkloadReport:
    """Time every query with and without advisor-built indexes.

    Indexes are built once per referenced table from the catalog's
    declared FDs (build time is excluded — the advisor amortizes it
    over the stream).  Every advised result is asserted equal to the
    baseline result before its time is recorded.  ``repeats`` takes the
    best of N runs per side to damp scheduler noise.
    """
    indexed_cache: dict[str, IndexedRelation] = {}
    indexes_built: list[tuple[str, tuple[str, ...]]] = []

    def indexed_for(table: str) -> IndexedRelation:
        if table not in indexed_cache:
            relation = catalog.relation(table)
            report = recommend_indexes(relation, catalog.fds(table))
            built = report.build(relation)
            indexed_cache[table] = built
            for index in built.indexes:
                indexes_built.append((table, index.attributes))
        return indexed_cache[table]

    timings: list[QueryTiming] = []
    for query in queries:
        baseline = None
        baseline_s = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = execute(catalog, query.sql, engine=engine)
            baseline_s = min(baseline_s, time.perf_counter() - start)
            baseline = result

        has_join = bool(parse(query.sql).joins)
        advised_s = float("inf")
        if has_join:
            access = "join"
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                advised = execute(catalog, query.sql, engine=engine)
                advised_s = min(advised_s, time.perf_counter() - start)
        else:
            indexed = indexed_for(query.table)
            access = "scan"
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                advised, plan = execute_indexed(indexed, query.sql)
                advised_s = min(advised_s, time.perf_counter() - start)
                access = plan.access_path
        if advised.columns != baseline.columns or advised.rows != baseline.rows:
            raise AssertionError(
                f"advised result diverged from baseline for {query.name}"
            )
        timings.append(
            QueryTiming(
                name=query.name,
                kind=query.kind,
                table=query.table,
                sql=query.sql,
                baseline_seconds=baseline_s,
                advised_seconds=advised_s,
                access_path=access,
                rows=len(baseline.rows),
            )
        )
    return WorkloadReport(tuple(timings), tuple(indexes_built))
