"""The index advisor: which indexes do (repaired) FDs justify?

Section 6.3's quality argument, made executable.  For every exact FD
``X → Y`` on the instance:

* an index on ``X`` serves two query families — point lookups on the
  antecedent, and *consequent fetches* (read ``Y`` of the unique
  matching class) — so the FD alone justifies recommending it;
* if the FD is also **invertible** (goodness 0, the bijective case the
  CB ranking steers repairs toward), the correspondence between
  X-classes and Y-classes is one-to-one, so an index on ``Y`` answers
  antecedent queries *in reverse* — "not only the antecedent determines
  the consequent but also vice-versa" (§6.3).

Recommendations carry an estimated benefit: the expected number of rows
a point query touches through the index (mean bucket size) versus the
full scan the executor would otherwise do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import assess
from repro.relational.relation import Relation

from .index import AttributeIndex, IndexedRelation

__all__ = ["IndexRecommendation", "AdvisorReport", "recommend_indexes"]


@dataclass(frozen=True)
class IndexRecommendation:
    """One recommended index with its justification."""

    attributes: tuple[str, ...]
    reason: str
    source_fd: FunctionalDependency
    invertible: bool
    mean_bucket_size: float
    scan_rows: int

    @property
    def speedup_estimate(self) -> float:
        """Scan rows over expected probe rows (≥ 1 means the index wins)."""
        if self.mean_bucket_size <= 0:
            return float(self.scan_rows) if self.scan_rows else 1.0
        return self.scan_rows / self.mean_bucket_size

    def __str__(self) -> str:
        attrs = ", ".join(self.attributes)
        inv = ", invertible" if self.invertible else ""
        return (
            f"INDEX ON ({attrs}) — {self.reason}{inv} "
            f"(~{self.speedup_estimate:.0f}x over scan)"
        )


@dataclass
class AdvisorReport:
    """All recommendations for one relation under its FDs."""

    relation_name: str
    recommendations: list[IndexRecommendation]
    skipped: list[tuple[FunctionalDependency, str]]

    def build(self, relation: Relation) -> IndexedRelation:
        """Materialize every recommended index."""
        seen: set[frozenset[str]] = set()
        indexes: list[AttributeIndex] = []
        for rec in self.recommendations:
            key = frozenset(rec.attributes)
            if key in seen:
                continue
            seen.add(key)
            indexes.append(AttributeIndex(relation, rec.attributes))
        return IndexedRelation(relation, indexes)

    def __str__(self) -> str:
        lines = [f"Advisor report for {self.relation_name}:"]
        lines.extend(f"  {rec}" for rec in self.recommendations)
        for fd, why in self.skipped:
            lines.append(f"  skipped {fd}: {why}")
        return "\n".join(lines)


def recommend_indexes(
    relation: Relation,
    fds: list[FunctionalDependency],
    max_goodness_for_reverse: int = 0,
) -> AdvisorReport:
    """Derive index recommendations from the exact FDs among ``fds``.

    Violated FDs are skipped with a pointer at the repair workflow —
    the advisor consumes the *output* of the paper's method, it does
    not replace it.  ``max_goodness_for_reverse`` loosens the
    invertibility requirement for the reverse index (|g| ≤ bound
    instead of g = 0) for nearly-bijective FDs.
    """
    recommendations: list[IndexRecommendation] = []
    skipped: list[tuple[FunctionalDependency, str]] = []
    scan_rows = relation.num_rows
    for declared in fds:
        for fd in declared.decompose():
            assessment = assess(relation, fd)
            if not assessment.is_exact:
                skipped.append(
                    (fd, f"violated (c={assessment.confidence:.4g}); repair it first")
                )
                continue
            invertible = abs(assessment.goodness) <= max_goodness_for_reverse
            x_buckets = assessment.distinct_x
            recommendations.append(
                IndexRecommendation(
                    attributes=fd.antecedent,
                    reason=f"antecedent of exact {fd}",
                    source_fd=fd,
                    invertible=invertible,
                    mean_bucket_size=scan_rows / x_buckets if x_buckets else 0.0,
                    scan_rows=scan_rows,
                )
            )
            if invertible:
                y_buckets = assessment.distinct_y
                recommendations.append(
                    IndexRecommendation(
                        attributes=fd.consequent,
                        reason=f"consequent of invertible {fd}",
                        source_fd=fd,
                        invertible=True,
                        mean_bucket_size=scan_rows / y_buckets if y_buckets else 0.0,
                        scan_rows=scan_rows,
                    )
                )
    return AdvisorReport(relation.name, recommendations, skipped)
