"""Hash indexes over attribute sets (the §6.3 payoff structure).

Section 6.3 argues that the repairs the CB method prefers — those
approaching goodness 0, i.e. *invertible* FDs — "support indexing and
query optimization, because … an index built on the antecedent of an
FD can be used to efficiently access the attributes in the consequent".
This module supplies the index the claim is about: a hash map from
attribute-value combinations to row position lists, built in one pass
over the encoded columns.

An :class:`AttributeIndex` answers point lookups in O(1) per probe
versus the O(n) scan of the unindexed executor; the advisor
(:mod:`~repro.advisor.advisor`) decides which indexes FDs justify, and
the rewriter (:mod:`~repro.advisor.rewrite`) exploits exact FDs to
answer consequent queries through antecedent indexes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.relational.relation import Relation

__all__ = ["AttributeIndex", "IndexedRelation"]


class AttributeIndex:
    """A hash index ``attrs-values → row positions`` over one relation."""

    __slots__ = ("_relation", "_attributes", "_buckets")

    def __init__(self, relation: Relation, attributes: Sequence[str]) -> None:
        names = relation.schema.validate_names(attributes)
        if not names:
            raise ValueError("an index needs at least one attribute")
        self._relation = relation
        self._attributes = names
        buckets: dict[tuple[Any, ...], list[int]] = {}
        columns = [relation.column_values(name) for name in names]
        for row in range(relation.num_rows):
            key = tuple(column[row] for column in columns)
            buckets.setdefault(key, []).append(row)
        self._buckets = buckets

    @property
    def attributes(self) -> tuple[str, ...]:
        """The indexed attribute set, in declaration order."""
        return self._attributes

    @property
    def relation(self) -> Relation:
        """The indexed relation instance."""
        return self._relation

    @property
    def num_keys(self) -> int:
        """Number of distinct keys (``|π_attrs(r)|``)."""
        return len(self._buckets)

    @property
    def is_unique(self) -> bool:
        """Whether every key maps to a single row (the index is on a key)."""
        return all(len(rows) == 1 for rows in self._buckets.values())

    def lookup(self, *values: Any) -> list[int]:
        """Rows whose indexed attributes equal ``values`` (possibly empty)."""
        if len(values) != len(self._attributes):
            raise ValueError(
                f"expected {len(self._attributes)} values, got {len(values)}"
            )
        return list(self._buckets.get(tuple(values), ()))

    def lookup_rows(self, *values: Any) -> Relation:
        """The matching tuples as a relation."""
        return self._relation.take(self.lookup(*values))

    def keys(self) -> list[tuple[Any, ...]]:
        """All distinct key combinations."""
        return list(self._buckets)

    def bucket_sizes(self) -> list[int]:
        """Sizes of all buckets (selectivity profile of the index)."""
        return [len(rows) for rows in self._buckets.values()]

    def __repr__(self) -> str:
        attrs = ", ".join(self._attributes)
        return f"AttributeIndex([{attrs}]: {self.num_keys} keys)"


@dataclass
class IndexedRelation:
    """A relation plus the indexes an advisor (or user) attached to it.

    The rewriter probes :meth:`index_on` to decide whether a query's
    equality predicates can be answered without a scan.
    """

    relation: Relation
    indexes: list[AttributeIndex]

    @classmethod
    def with_indexes(
        cls, relation: Relation, attribute_sets: Sequence[Sequence[str]]
    ) -> "IndexedRelation":
        """Build all requested indexes in one go."""
        return cls(
            relation,
            [AttributeIndex(relation, attrs) for attrs in attribute_sets],
        )

    def index_on(self, attributes: Sequence[str]) -> AttributeIndex | None:
        """The index whose attribute *set* equals ``attributes``, if any."""
        wanted = frozenset(attributes)
        for index in self.indexes:
            if frozenset(index.attributes) == wanted:
                return index
        return None

    def covering_index(self, attributes: Sequence[str]) -> AttributeIndex | None:
        """An index whose attributes are a subset of ``attributes``.

        A partial match still helps: probe the index with the covered
        values, then post-filter the (small) bucket.
        """
        wanted = frozenset(attributes)
        best: AttributeIndex | None = None
        for index in self.indexes:
            covered = frozenset(index.attributes)
            if covered <= wanted and (
                best is None or len(covered) > len(best.attributes)
            ):
                best = index
        return best
