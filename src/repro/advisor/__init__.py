"""Index advisory and FD-aware query execution (paper §6.3).

The paper's quality section argues that CB-preferred repairs
("invertible" FDs, goodness ≈ 0) pay off beyond consistency: they
justify indexes and enable two-way lookups between antecedent and
consequent.  This package turns the argument into code:

* :mod:`~repro.advisor.index` — hash indexes over attribute sets;
* :mod:`~repro.advisor.advisor` — recommendations derived from exact
  FDs, with estimated speedups;
* :mod:`~repro.advisor.rewrite` — index-aware execution of the mini
  SQL dialect, plus the FD shortcut lookups (consequent fetch and,
  for invertible FDs, the reverse antecedent fetch);
* :mod:`~repro.advisor.workload` — measured before/after evaluation
  of the recommendations against a generated query stream.
"""

from .advisor import AdvisorReport, IndexRecommendation, recommend_indexes
from .index import AttributeIndex, IndexedRelation
from .workload import QueryTiming, WorkloadReport, evaluate_workload
from .rewrite import (
    InvertibilityError,
    QueryPlan,
    execute_indexed,
    fetch_antecedent,
    fetch_consequent,
    plan_access,
)

__all__ = [
    "AdvisorReport",
    "AttributeIndex",
    "IndexRecommendation",
    "IndexedRelation",
    "InvertibilityError",
    "QueryPlan",
    "QueryTiming",
    "WorkloadReport",
    "execute_indexed",
    "fetch_antecedent",
    "fetch_consequent",
    "evaluate_workload",
    "plan_access",
    "recommend_indexes",
]
