"""Index-aware query execution: the §6.3 claim measured end to end.

:func:`execute_indexed` runs the same mini-SQL dialect as
:func:`repro.sql.executor.execute_on_relation` but first tries an
*index access path*: when the WHERE clause is a conjunction of equality
comparisons and an attached index covers a subset of the compared
attributes, the executor probes the index and post-filters the bucket
instead of scanning the relation.  The returned :class:`QueryPlan`
records which path ran, so benches and tests can assert the rewrite
actually fired.

:func:`fetch_consequent` packages the FD-specific shortcut the paper
highlights: given an exact FD ``X → Y`` and an index on ``X``, the ``Y``
value of any ``X`` combination is one probe away; when the FD is
invertible, :func:`fetch_antecedent` answers the *reverse* question
through the consequent index — the "vice-versa" of §6.3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import assess
from repro.relational.errors import ReproError
from repro.sql.ast import And, ColumnRef, Comparison, Literal, SelectQuery
from repro.sql.executor import ResultSet, _run
from repro.sql.parser import parse

from .index import IndexedRelation

__all__ = [
    "AccessPath",
    "QueryPlan",
    "execute_indexed",
    "fetch_consequent",
    "fetch_antecedent",
    "InvertibilityError",
]


class InvertibilityError(ReproError):
    """A reverse lookup was requested through a non-invertible FD."""


@dataclass(frozen=True)
class QueryPlan:
    """How one query was answered."""

    access_path: str            # "index" or "scan"
    index_attributes: tuple[str, ...] | None
    rows_examined: int
    elapsed_seconds: float


class AccessPath:
    """Result of planning: the rows to consider, before residual filters."""

    __slots__ = ("rows", "index_attributes")

    def __init__(self, rows: list[int] | None, index_attributes: tuple[str, ...] | None):
        self.rows = rows
        self.index_attributes = index_attributes


def _equality_bindings(expr) -> dict[str, Any] | None:
    """``{attribute: constant}`` if ``expr`` is a conjunction of ``col = lit``.

    Any other shape (OR, negation, non-equality, column-to-column)
    returns ``None`` and the caller falls back to a scan.
    """
    if isinstance(expr, Comparison):
        if expr.op != "=":
            return None
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
            return {expr.left.name: expr.right.value}
        if isinstance(expr.left, Literal) and isinstance(expr.right, ColumnRef):
            return {expr.right.name: expr.left.value}
        return None
    if isinstance(expr, And):
        left = _equality_bindings(expr.left)
        right = _equality_bindings(expr.right)
        if left is None or right is None:
            return None
        for name, value in right.items():
            if name in left and left[name] != value:
                # Contradictory equalities: empty result, still indexable
                # via either side; keep the left binding and let the
                # residual filter reject everything.
                continue
            left[name] = value
        return left
    return None


def plan_access(indexed: IndexedRelation, query: SelectQuery) -> AccessPath:
    """Choose rows via the best covering index, or ``None`` for a scan."""
    if query.where is None:
        return AccessPath(None, None)
    bindings = _equality_bindings(query.where)
    if not bindings:
        return AccessPath(None, None)
    index = indexed.covering_index(list(bindings))
    if index is None:
        return AccessPath(None, None)
    values = tuple(bindings[name] for name in index.attributes)
    return AccessPath(index.lookup(*values), index.attributes)


def execute_indexed(
    indexed: IndexedRelation, sql: str
) -> tuple[ResultSet, QueryPlan]:
    """Execute ``sql`` with index access when possible.

    The residual WHERE clause is always re-applied on the candidate
    rows, so partial index coverage stays correct.
    """
    query = parse(sql)
    start = time.perf_counter()
    access = plan_access(indexed, query)
    relation = indexed.relation
    if access.rows is None:
        result = _run(relation, query)
        plan = QueryPlan(
            "scan", None, relation.num_rows, time.perf_counter() - start
        )
        return result, plan
    candidate = relation.take(access.rows)
    result = _run(candidate, query)
    plan = QueryPlan(
        "index",
        access.index_attributes,
        len(access.rows),
        time.perf_counter() - start,
    )
    return result, plan


def fetch_consequent(
    indexed: IndexedRelation,
    fd: FunctionalDependency,
    *antecedent_values: Any,
) -> Any:
    """The unique ``Y`` value for one ``X`` combination, via the X index.

    Requires ``fd`` exact on the instance and an index on its
    antecedent; returns ``None`` when no tuple matches.
    """
    assessment = assess(indexed.relation, fd)
    if not assessment.is_exact:
        raise InvertibilityError(
            f"{fd} is violated (c={assessment.confidence:.4g}); "
            "only exact FDs support index fetches"
        )
    index = indexed.index_on(fd.antecedent)
    if index is None:
        raise InvertibilityError(f"no index on the antecedent of {fd}")
    rows = index.lookup(*antecedent_values)
    if not rows:
        return None
    values = [indexed.relation.row(rows[0])]
    position = [indexed.relation.attribute_names.index(a) for a in fd.consequent]
    picked = tuple(values[0][p] for p in position)
    return picked[0] if len(picked) == 1 else picked


def fetch_antecedent(
    indexed: IndexedRelation,
    fd: FunctionalDependency,
    *consequent_values: Any,
) -> tuple[Any, ...] | None:
    """The unique ``X`` combination for one ``Y`` value (reverse lookup).

    Only meaningful for invertible FDs (goodness 0): then the
    X-class ↔ Y-class correspondence is a bijection and the answer is
    unique.  Raises :class:`InvertibilityError` otherwise.
    """
    assessment = assess(indexed.relation, fd)
    if not assessment.is_exact:
        raise InvertibilityError(
            f"{fd} is violated (c={assessment.confidence:.4g})"
        )
    if assessment.goodness != 0:
        raise InvertibilityError(
            f"{fd} is not invertible (g={assessment.goodness}); "
            "the reverse lookup is ambiguous"
        )
    index = indexed.index_on(fd.consequent)
    if index is None:
        raise InvertibilityError(f"no index on the consequent of {fd}")
    rows = index.lookup(*consequent_values)
    if not rows:
        return None
    row = indexed.relation.row(rows[0])
    positions = [indexed.relation.attribute_names.index(a) for a in fd.antecedent]
    return tuple(row[p] for p in positions)
