"""``repro-fd`` — the command-line equivalent of the paper's prototype tool.

The paper's Java tool lets a user connect to a database, view relations
and their FDs, add FDs, and start validation (Section 6).  This CLI
covers the same workflow over a catalog directory (CSV files + a JSON
manifest, see :class:`repro.relational.Catalog`):

.. code-block:: console

   $ repro-fd init DB                     # create a catalog with the Places demo
   $ repro-fd show DB                     # relations + declared FDs
   $ repro-fd declare DB Places '[Zip] -> [City]'
   $ repro-fd validate DB                 # which FDs are violated, ranked
   $ repro-fd repair DB Places --all      # propose repairs per violated FD
   $ repro-fd evolve DB Places            # accept best repairs, rewrite catalog
   $ repro-fd query DB 'SELECT COUNT(DISTINCT Zip) FROM Places'
   $ repro-fd import DB data.csv          # add a relation from CSV

Beyond the paper's workflow, the extended subsystems are reachable too:

.. code-block:: console

   $ repro-fd conflicts DB Places         # conflict graph of the declared FDs
   $ repro-fd clean DB Places --mode delete   # extensional repair preview
   $ repro-fd advise DB Places            # §6.3 index recommendations
   $ repro-fd keys DB Places              # candidate keys under declared FDs
   $ repro-fd normalize DB Places --form 3nf  # decomposition proposal
   $ repro-fd mine DB Places --max-size 3     # denial-constraint discovery
   $ repro-fd serve STATE --spec t.json < batches.ndjson  # monitoring service
   $ repro-fd replay STATE --tenant acme  # durable event stream from the WAL

Every subcommand returns a process exit code of 0 on success, 1 on a
domain error (unknown relation, malformed FD, …), making the tool
scriptable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.tables import render_rows
from repro.core.config import RepairConfig
from repro.core.repair import find_repairs
from repro.core.session import RepairSession, accept_best
from repro.core.validate import validate_catalog
from repro.datagen.places import places_catalog
from repro.fd.fd import FunctionalDependency
from repro.relational.catalog import Catalog
from repro.relational.csvio import load_csv
from repro.relational.errors import ReproError
from repro.sql.executor import execute

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-fd`` argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="repro-fd",
        description=(
            "Detect violated functional dependencies and evolve them by "
            "extending their antecedents (EDBT 2016 CB method)."
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="morsel-driven parallelism: pool width for the discovery/"
        "validation engines (0 = serial; overrides REPRO_WORKERS)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="create a new catalog directory")
    init.add_argument("catalog", type=Path)
    init.add_argument(
        "--empty", action="store_true", help="do not seed the Places demo relation"
    )

    show = sub.add_parser("show", help="list relations and declared FDs")
    show.add_argument("catalog", type=Path)

    declare = sub.add_parser("declare", help="declare an FD on a relation")
    declare.add_argument("catalog", type=Path)
    declare.add_argument("relation")
    declare.add_argument("fd", help="e.g. '[District, Region] -> [AreaCode]'")

    validate = sub.add_parser("validate", help="check all declared FDs")
    validate.add_argument("catalog", type=Path)
    validate.add_argument(
        "--witnesses", type=int, default=0, help="show up to N violating tuple pairs"
    )

    repair = sub.add_parser("repair", help="propose repairs for violated FDs")
    repair.add_argument("catalog", type=Path)
    repair.add_argument("relation")
    repair.add_argument("--fd", help="repair only this FD (default: every violated one)")
    repair.add_argument("--all", action="store_true", help="find all repairs, not just the first")
    repair.add_argument("--max-attrs", type=int, default=None, help="bound on added attributes")
    repair.add_argument(
        "--goodness-threshold", type=int, default=None,
        help="privilege repairs with |goodness| under this threshold",
    )
    repair.add_argument("--top", type=int, default=10, help="show at most N repairs per FD")

    evolve = sub.add_parser(
        "evolve", help="accept the best repair for every violated FD and save"
    )
    evolve.add_argument("catalog", type=Path)
    evolve.add_argument("relation")

    explain = sub.add_parser(
        "explain", help="draw the Figure 2 clustering diagram for an FD"
    )
    explain.add_argument("catalog", type=Path)
    explain.add_argument("relation")
    explain.add_argument("fd", help="e.g. '[District, Region] -> [AreaCode]'")
    explain.add_argument(
        "--repair",
        help="also show the before/after diagram for this repaired FD",
    )

    query = sub.add_parser("query", help="run a SELECT against the catalog")
    query.add_argument("catalog", type=Path)
    query.add_argument("sql")
    query.add_argument(
        "--engine",
        choices=("columnar", "rowdict"),
        default="columnar",
        help="execution engine (rowdict is the reference oracle)",
    )
    query.add_argument(
        "--csv",
        action="store_true",
        help="emit CSV instead of the aligned text table",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the optimized plan (SQL + operator tree + zone-map "
        "chunk-skip counts) instead of executing",
    )

    import_cmd = sub.add_parser("import", help="add a relation from a CSV file")
    import_cmd.add_argument("catalog", type=Path)
    import_cmd.add_argument("csv", type=Path)
    import_cmd.add_argument("--name", help="relation name (default: file stem)")

    conflicts = sub.add_parser(
        "conflicts", help="show the conflict graph of the declared FDs"
    )
    conflicts.add_argument("catalog", type=Path)
    conflicts.add_argument("relation")
    conflicts.add_argument(
        "--witnesses", type=int, default=5, help="show up to N conflicts"
    )

    clean = sub.add_parser(
        "clean", help="preview an extensional (data-changing) repair"
    )
    clean.add_argument("catalog", type=Path)
    clean.add_argument("relation")
    clean.add_argument(
        "--mode",
        choices=["delete", "update"],
        default="delete",
        help="tuple deletion (min vertex cover) or cell updates (majority)",
    )

    advise = sub.add_parser(
        "advise", help="recommend indexes from the exact declared FDs (§6.3)"
    )
    advise.add_argument("catalog", type=Path)
    advise.add_argument("relation")

    keys = sub.add_parser(
        "keys", help="candidate keys of a relation under its declared FDs"
    )
    keys.add_argument("catalog", type=Path)
    keys.add_argument("relation")

    normalize = sub.add_parser(
        "normalize", help="propose a BCNF/3NF decomposition from declared FDs"
    )
    normalize.add_argument("catalog", type=Path)
    normalize.add_argument("relation")
    normalize.add_argument(
        "--form", choices=["bcnf", "3nf"], default="bcnf", help="target normal form"
    )

    mine = sub.add_parser(
        "mine", help="mine minimal denial constraints (the [16] alternative)"
    )
    mine.add_argument("catalog", type=Path)
    mine.add_argument("relation")
    mine.add_argument("--max-size", type=int, default=3, help="max predicates per DC")
    mine.add_argument(
        "--max-pairs", type=int, default=100_000, help="pair-enumeration budget"
    )
    mine.add_argument(
        "--fds-only", action="store_true", help="show only FD-shaped constraints"
    )
    mine.add_argument(
        "--engine",
        choices=("tiled", "reference"),
        default="tiled",
        help="discovery engine: sample-then-verify (exact) or one-shot "
        "enumeration with honest sampling",
    )

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant monitoring service over NDJSON batches",
        description=(
            "Reads one JSON object per line from stdin (or --input): "
            '{"tenant": ID, "batch": N, "rows": [[...], ...]} and writes '
            "one JSON event per line to stdout.  State (tenant specs, "
            "write-ahead logs, checkpoints) lives under STATE_DIR; "
            "restarting the command replays the WAL and continues "
            "exactly where the previous run stopped."
        ),
    )
    serve.add_argument("state_dir", type=Path)
    serve.add_argument(
        "--spec",
        type=Path,
        action="append",
        default=[],
        metavar="FILE",
        help="register a tenant from a TenantSpec JSON file "
        "(repeatable; tenants already in STATE_DIR are recovered "
        "automatically)",
    )
    serve.add_argument(
        "--input",
        type=Path,
        default=None,
        metavar="FILE",
        help="read batches from FILE instead of stdin",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="bounded per-tenant ingest queue (backpressure beyond it)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=50, metavar="N",
        help="snapshot checkpoint cadence, in applied batches",
    )
    serve.add_argument(
        "--sync",
        choices=("batch", "none"),
        default="batch",
        help="fsync the WAL per commit (batch) or leave it to the OS",
    )
    serve.add_argument(
        "--retain-segments",
        action="store_true",
        help="keep WAL segments past checkpoints (enables full `replay`)",
    )

    replay = sub.add_parser(
        "replay",
        help="print a tenant's durable event stream from its WAL",
        description=(
            "Reconstructs the alert/drift/shed event stream that `serve` "
            "durably journaled, one JSON event per line — the same "
            "stream the crash-recovery oracle compares byte-for-byte."
        ),
    )
    replay.add_argument("state_dir", type=Path)
    replay.add_argument(
        "--tenant", help="replay only this tenant (default: every tenant)"
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers is not None:
        from repro.relational import parallel

        try:
            parallel.set_workers(args.workers)
        except ValueError as error:
            parser.error(str(error))
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    handlers = {
        "init": _cmd_init,
        "show": _cmd_show,
        "declare": _cmd_declare,
        "validate": _cmd_validate,
        "repair": _cmd_repair,
        "evolve": _cmd_evolve,
        "explain": _cmd_explain,
        "query": _cmd_query,
        "import": _cmd_import,
        "conflicts": _cmd_conflicts,
        "clean": _cmd_clean,
        "advise": _cmd_advise,
        "keys": _cmd_keys,
        "normalize": _cmd_normalize,
        "mine": _cmd_mine,
        "serve": _cmd_serve,
        "replay": _cmd_replay,
    }
    return handlers[args.command](args)


def _load(path: Path) -> Catalog:
    return Catalog.load(path)


def _cmd_init(args: argparse.Namespace) -> int:
    catalog = Catalog() if args.empty else places_catalog()
    catalog.save(args.catalog)
    print(f"created catalog at {args.catalog} ({len(catalog)} relation(s))")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    catalog = _load(args.catalog)
    for name in catalog.relation_names():
        relation = catalog.relation(name)
        print(f"{name}: {relation.arity} attributes, {relation.num_rows} rows")
        print(f"  attributes: {', '.join(relation.attribute_names)}")
        for fd in catalog.fds(name):
            print(f"  FD: {fd}")
    if not catalog.relation_names():
        print("(empty catalog)")
    return 0


def _cmd_declare(args: argparse.Namespace) -> int:
    catalog = _load(args.catalog)
    fd = FunctionalDependency.parse(args.fd)
    catalog.declare_fd(args.relation, fd)
    catalog.save(args.catalog)
    print(f"declared {fd} on {args.relation}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    catalog = _load(args.catalog)
    reports = validate_catalog(catalog, witness_limit=args.witnesses)
    if not reports:
        print("no FDs declared")
        return 0
    violated_total = 0
    for name, report in reports.items():
        for entry in report.entries:
            print(entry)
            for pair in entry.witnesses:
                t1, t2 = pair
                print(f"    witness rows: {t1} vs {t2}")
        violated_total += len(report.violated)
    print(f"{violated_total} violated FD(s)")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    catalog = _load(args.catalog)
    relation = catalog.relation(args.relation)
    config = RepairConfig(
        stop_at_first=not args.all,
        max_added_attributes=args.max_attrs,
        goodness_threshold=args.goodness_threshold,
    )
    if args.fd:
        fds = [FunctionalDependency.parse(args.fd)]
    else:
        session = RepairSession(catalog, config)
        fds = [item.fd for item in session.violations(args.relation)]
        if not fds:
            print("no violated FDs")
            return 0
    for fd in fds:
        result = find_repairs(relation, fd, config)
        if not result.was_violated:
            print(f"{fd}: satisfied (nothing to repair)")
            continue
        print(f"{fd}: violated (c={result.assessment.confidence:.4g})")
        if not result.found:
            print("  no repair found")
            continue
        rows = [
            {
                "repaired fd": str(candidate.fd),
                "added": ", ".join(candidate.added),
                "confidence": candidate.confidence,
                "goodness": candidate.goodness,
            }
            for candidate in result.all_repairs[: args.top]
        ]
        print(render_rows(rows))
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    catalog = _load(args.catalog)
    session = RepairSession(catalog)
    events = session.run(args.relation, accept_best)
    for event in events:
        print(event)
    catalog.save(args.catalog)
    print(f"catalog saved to {args.catalog}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.fd.diagram import explain_repair, render_fd_diagram

    catalog = _load(args.catalog)
    relation = catalog.relation(args.relation)
    fd = FunctionalDependency.parse(args.fd)
    if args.repair:
        repaired = FunctionalDependency.parse(args.repair)
        print(explain_repair(relation, fd, repaired))
    else:
        print(render_fd_diagram(relation, fd))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    catalog = _load(args.catalog)
    if args.explain:
        from repro.sql.database import Database

        print(Database(catalog).explain(args.sql), end="")
        return 0
    result = execute(catalog, args.sql, engine=args.engine)
    if args.csv:
        print(result.to_csv(), end="")
    else:
        print(result.to_text())
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    catalog = _load(args.catalog)
    relation = load_csv(args.csv, name=args.name)
    catalog.add_relation(relation)
    catalog.save(args.catalog)
    print(
        f"imported {relation.name!r}: {relation.arity} attributes, "
        f"{relation.num_rows} rows"
    )
    return 0


def _cmd_conflicts(args: argparse.Namespace) -> int:
    from repro.datarepair.conflicts import build_conflict_graph

    catalog = _load(args.catalog)
    relation = catalog.relation(args.relation)
    fds = catalog.fds(args.relation)
    if not fds:
        print(f"no FDs declared on {args.relation}")
        return 0
    graph = build_conflict_graph(relation, list(fds))
    print(
        f"{args.relation}: {graph.num_edges} conflicting pair(s) across "
        f"{len(graph.fds)} FD(s); {len(graph.clean_rows())} of "
        f"{relation.num_rows} tuples conflict-free"
    )
    for conflict in graph.conflicts[: args.witnesses]:
        print(f"  {conflict}")
    if graph.num_conflicts > args.witnesses:
        print(f"  ... ({graph.num_conflicts - args.witnesses} more)")
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    from repro.datarepair.deletion import minimum_deletion_repair
    from repro.datarepair.update import value_update_repair

    catalog = _load(args.catalog)
    relation = catalog.relation(args.relation)
    fds = list(catalog.fds(args.relation))
    if not fds:
        print(f"no FDs declared on {args.relation}")
        return 0
    if args.mode == "delete":
        repair = minimum_deletion_repair(relation, fds)
        print(f"{args.relation}: {repair}")
        if repair.deleted_rows:
            print(f"  would delete rows: {list(repair.deleted_rows)}")
    else:
        repair = value_update_repair(relation, fds)
        print(f"{args.relation}: {repair}")
        for change in repair.changes[:10]:
            print(f"  {change}")
        if repair.num_changes > 10:
            print(f"  ... ({repair.num_changes - 10} more)")
    print(
        "(preview only — the paper's method evolves the constraint instead; "
        "see `repro-fd evolve`)"
    )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.advisor.advisor import recommend_indexes

    catalog = _load(args.catalog)
    relation = catalog.relation(args.relation)
    fds = list(catalog.fds(args.relation))
    if not fds:
        print(f"no FDs declared on {args.relation}")
        return 0
    print(recommend_indexes(relation, fds))
    return 0


def _cmd_keys(args: argparse.Namespace) -> int:
    from repro.design.normalize import candidate_keys

    catalog = _load(args.catalog)
    relation = catalog.relation(args.relation)
    fds = list(catalog.fds(args.relation))
    keys = candidate_keys(relation.attribute_names, fds)
    print(f"{args.relation}: {len(keys)} candidate key(s) under {len(fds)} FD(s)")
    for key in keys:
        print(f"  {{{', '.join(sorted(key))}}}")
    return 0


def _cmd_normalize(args: argparse.Namespace) -> int:
    from repro.design.normalize import decompose_bcnf, synthesize_3nf

    catalog = _load(args.catalog)
    relation = catalog.relation(args.relation)
    fds = list(catalog.fds(args.relation))
    if not fds:
        print(f"no FDs declared on {args.relation}; nothing to normalize by")
        return 0
    if args.form == "bcnf":
        result = decompose_bcnf(relation.attribute_names, fds)
    else:
        result = synthesize_3nf(relation.attribute_names, fds)
    print(f"{args.relation} -> {args.form.upper()} fragments:")
    for fragment in result.fragments:
        print(f"  ({', '.join(fragment)})")
    if result.lost:
        print("dependencies NOT preserved:")
        for fd in result.lost:
            print(f"  {fd}")
    else:
        print("all dependencies preserved")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.dc.bridge import dc_to_fd
    from repro.dc.engine import discover_dcs
    from repro.dc.predicates import build_predicate_space

    catalog = _load(args.catalog)
    relation = catalog.relation(args.relation)
    space = build_predicate_space(relation, order_predicates=False)
    result = discover_dcs(
        relation,
        space,
        engine=args.engine,
        max_size=args.max_size,
        sample_pairs=args.max_pairs,
    )
    shown = 0
    for dc in result.constraints:
        fd = dc_to_fd(dc)
        if args.fds_only and fd is None:
            continue
        print(f"  {fd if fd is not None else dc}")
        shown += 1
    sampled = " (pair enumeration sampled)" if result.sampled else ""
    print(
        f"{shown} constraint(s) shown of {result.num_constraints} mined "
        f"from {result.evidence_pairs} pairs{sampled}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service import MonitorService, ServiceConfig, TenantSpec
    from repro.service.events import to_json

    config = ServiceConfig(
        state_dir=args.state_dir,
        queue_capacity=args.queue_capacity,
        checkpoint_every=args.checkpoint_every,
        sync=args.sync,
        retain_segments=args.retain_segments,
    )

    def emit(event) -> None:
        print(json.dumps(to_json(event), sort_keys=True), flush=True)

    async def run() -> int:
        service = MonitorService(config, on_event=emit)
        await service.start()
        for spec_path in args.spec:
            spec = TenantSpec.from_json(
                json.loads(spec_path.read_text(encoding="utf-8"))
            )
            if spec.tenant_id not in service.tenant_ids:
                service.add_tenant(spec)
        stream = (
            open(args.input, encoding="utf-8") if args.input else sys.stdin
        )
        loop = asyncio.get_running_loop()
        submitted = 0
        try:
            while True:
                line = await loop.run_in_executor(None, stream.readline)
                if not line:
                    break
                if not line.strip():
                    continue
                batch = json.loads(line)
                await service.submit(
                    batch["tenant"], batch["batch"], batch["rows"]
                )
                submitted += 1
        finally:
            if args.input:
                stream.close()
        await service.drain()
        await service.stop()
        print(
            f"served {submitted} batch(es) across "
            f"{len(service.tenant_ids)} tenant(s)",
            file=sys.stderr,
        )
        return 0

    return asyncio.run(run())


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from repro.service.errors import UnknownTenantError
    from repro.service.wal import read_event_stream

    state_dir: Path = args.state_dir
    tenants = sorted(
        path.name
        for path in state_dir.iterdir()
        if (path / "spec.json").is_file()
    ) if state_dir.is_dir() else []
    if args.tenant is not None:
        if args.tenant not in tenants:
            raise UnknownTenantError(args.tenant)
        tenants = [args.tenant]
    total = 0
    for tenant in tenants:
        for event in read_event_stream(state_dir / tenant, tenant):
            print(json.dumps(event, sort_keys=True))
            total += 1
    print(f"{total} event(s) from {len(tenants)} tenant(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
