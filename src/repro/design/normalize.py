"""Keys, normal forms, and decomposition from (evolved) FDs.

The pay-off of keeping FDs truthful — the paper's whole program — is
that every classical schema-design tool becomes applicable again.  This
module implements those tools over the library's FD model:

* :func:`candidate_keys` — all minimal keys of a relation schema under
  an FD set (reduction-based enumeration, exact);
* :func:`prime_attributes` — attributes appearing in some key;
* :func:`bcnf_violations` / :func:`is_bcnf` — the BCNF test;
* :func:`decompose_bcnf` — lossless-join BCNF decomposition (the
  standard violation-splitting loop; dependency preservation is
  reported, not guaranteed — it cannot be);
* :func:`synthesize_3nf` — Bernstein synthesis into 3NF (lossless and
  dependency-preserving).

Inputs are attribute names plus :class:`FunctionalDependency` sets, so
both designer-declared and CB-evolved FDs flow in directly; pair with
:func:`repro.design.closure.minimal_cover` for canonical input.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.fd.fd import FunctionalDependency

from .closure import attribute_closure, minimal_cover

__all__ = [
    "candidate_keys",
    "prime_attributes",
    "bcnf_violations",
    "is_bcnf",
    "Decomposition",
    "decompose_bcnf",
    "synthesize_3nf",
]


def candidate_keys(
    attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
    max_keys: int | None = None,
) -> list[frozenset[str]]:
    """All minimal keys of ``attributes`` under ``fds``.

    Starts from the core (attributes appearing in no consequent — they
    belong to *every* key) and grows it with subsets of the remaining
    candidates, smallest first, pruning supersets of found keys.  Exact
    but exponential in the number of non-core attributes;
    ``max_keys`` caps the output for adversarial schemas.
    """
    universe = frozenset(attributes)
    in_consequent = {a for fd in fds for a in fd.consequent}
    core = universe - in_consequent
    optional = sorted(universe & in_consequent)

    if attribute_closure(core, fds) == universe:
        return [frozenset(core)]

    keys: list[frozenset[str]] = []
    for size in range(1, len(optional) + 1):
        for combo in itertools.combinations(optional, size):
            candidate = core | set(combo)
            if any(key <= candidate for key in keys):
                continue
            if attribute_closure(candidate, fds) == universe:
                keys.append(frozenset(candidate))
                if max_keys is not None and len(keys) >= max_keys:
                    return keys
    return keys


def prime_attributes(
    attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
) -> frozenset[str]:
    """Attributes that participate in at least one candidate key."""
    return frozenset(
        attr for key in candidate_keys(attributes, fds) for attr in key
    )


def bcnf_violations(
    attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
) -> list[FunctionalDependency]:
    """The (decomposed) FDs whose antecedent is not a superkey.

    Trivial FDs cannot occur in this library's model (construction
    forbids consequent ⊆ antecedent), so the test is just the superkey
    check.
    """
    universe = frozenset(attributes)
    violations: list[FunctionalDependency] = []
    for declared in fds:
        for fd in declared.decompose():
            if attribute_closure(fd.antecedent, fds) != universe:
                violations.append(fd)
    return violations


def is_bcnf(
    attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """Whether the schema is in Boyce-Codd normal form under ``fds``."""
    return not bcnf_violations(attributes, fds)


@dataclass(frozen=True)
class Decomposition:
    """The outcome of a decomposition: sub-schemas plus bookkeeping."""

    fragments: tuple[tuple[str, ...], ...]
    preserved: tuple[FunctionalDependency, ...]
    lost: tuple[FunctionalDependency, ...]

    @property
    def is_dependency_preserving(self) -> bool:
        """Whether every input FD is enforceable within some fragment."""
        return not self.lost

    def __str__(self) -> str:
        parts = ["; ".join(", ".join(f) for f in self.fragments)]
        if self.lost:
            parts.append(f"lost: {', '.join(str(fd) for fd in self.lost)}")
        return " | ".join(parts)


def _project_fds(
    fragment: frozenset[str],
    fds: Sequence[FunctionalDependency],
) -> list[FunctionalDependency]:
    """FDs of the closure that hold within ``fragment``.

    Exponential projection (closure of every antecedent subset); fine
    for the schema sizes FD design handles.
    """
    projected: list[FunctionalDependency] = []
    members = sorted(fragment)
    for size in range(1, len(members)):
        for combo in itertools.combinations(members, size):
            closure = attribute_closure(combo, fds)
            inside = (closure & fragment) - set(combo)
            for attr in sorted(inside):
                fd = FunctionalDependency(combo, (attr,))
                if fd not in projected:
                    projected.append(fd)
    return minimal_cover(projected)


def decompose_bcnf(
    attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
) -> Decomposition:
    """Lossless-join BCNF decomposition by violation splitting.

    Classic loop: while some fragment has a violating FD ``X → A``,
    replace the fragment with ``X⁺ ∩ fragment`` and
    ``fragment − (X⁺ − X)``.  Deterministic: fragments and violations
    are processed in declaration order.
    """
    cover = minimal_cover(fds)
    fragments: list[frozenset[str]] = [frozenset(attributes)]
    done: list[frozenset[str]] = []
    while fragments:
        fragment = fragments.pop(0)
        local = _project_fds(fragment, cover) if fragment != frozenset(attributes) else cover
        violation = None
        for fd in local:
            closure = attribute_closure(fd.antecedent, local)
            if not fragment <= closure:
                violation = fd
                break
        if violation is None:
            done.append(fragment)
            continue
        closure = attribute_closure(violation.antecedent, local) & fragment
        left = frozenset(closure)
        right = fragment - (closure - set(violation.antecedent))
        fragments.extend([left, right])

    ordered = [tuple(sorted(f)) for f in done]
    preserved: list[FunctionalDependency] = []
    lost: list[FunctionalDependency] = []
    for fd in cover:
        needed = set(fd.attributes)
        if any(needed <= set(f) for f in ordered):
            preserved.append(fd)
        else:
            lost.append(fd)
    return Decomposition(tuple(ordered), tuple(preserved), tuple(lost))


def synthesize_3nf(
    attributes: Sequence[str],
    fds: Sequence[FunctionalDependency],
) -> Decomposition:
    """Bernstein 3NF synthesis: one fragment per cover FD group, plus a
    key fragment when no fragment contains a candidate key.

    Lossless and dependency-preserving by construction; fragments whose
    attribute set is contained in another are merged away.
    """
    cover = minimal_cover(fds)
    groups: dict[frozenset[str], set[str]] = {}
    for fd in cover:
        groups.setdefault(frozenset(fd.antecedent), set()).update(fd.attributes)
    fragments = [frozenset(attrs) for attrs in groups.values()]

    keys = candidate_keys(attributes, cover)
    if keys and not any(any(key <= f for f in fragments) for key in keys):
        fragments.append(frozenset(keys[0]))

    # Absorb contained fragments.  Attributes outside every FD belong
    # to the core of every candidate key, so the key fragment already
    # covers them — no leftover fragment is ever needed.
    fragments.sort(key=len, reverse=True)
    kept: list[frozenset[str]] = []
    for fragment in fragments:
        if not any(fragment <= other for other in kept):
            kept.append(fragment)

    ordered = sorted((tuple(sorted(f)) for f in kept), key=lambda f: (-len(f), f))
    preserved = tuple(cover)
    return Decomposition(tuple(ordered), preserved, ())
