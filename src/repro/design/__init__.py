"""Schema design from (evolved) FDs: closure, keys, normal forms.

Section 3 of the paper notes that in a well-normalized schema the only
non-trivial FDs determine candidate keys — and that real schemas are
rarely normalized, which is why FD evolution matters.  This package
closes the loop: once the CB method has made the declared FDs truthful
again, classical design machinery applies, and here it is:

* :mod:`~repro.design.closure` — attribute closure, implication,
  minimal covers (the Armstrong layer);
* :mod:`~repro.design.normalize` — candidate keys, BCNF test and
  decomposition, Bernstein 3NF synthesis.
"""

from .closure import (
    attribute_closure,
    equivalent_covers,
    implies,
    is_redundant,
    minimal_cover,
)
from .normalize import (
    Decomposition,
    bcnf_violations,
    candidate_keys,
    decompose_bcnf,
    is_bcnf,
    prime_attributes,
    synthesize_3nf,
)

__all__ = [
    "Decomposition",
    "attribute_closure",
    "bcnf_violations",
    "candidate_keys",
    "decompose_bcnf",
    "equivalent_covers",
    "implies",
    "is_bcnf",
    "is_redundant",
    "minimal_cover",
    "prime_attributes",
    "synthesize_3nf",
]
