"""Attribute closure, implication, and minimal covers (Armstrong layer).

Section 3 closes with the observation that "if the DB schema is in a
higher normal form, the only non-trivial FDs are those determining
candidate keys" — and immediately rejects the assumption, because
NoSQL-era schemas are rarely normalized.  To *reason* about either
situation the library needs the classical FD inference machinery, which
this module provides from scratch:

* :func:`attribute_closure` — ``X⁺`` under a set of FDs (the linear
  fixpoint algorithm);
* :func:`implies` — whether ``Σ ⊨ X → Y`` (via the closure test);
* :func:`is_redundant` / :func:`minimal_cover` — canonical cover
  computation (decompose consequents, drop extraneous antecedent
  attributes, drop implied FDs);
* :func:`equivalent_covers` — whether two FD sets imply each other.

Everything operates on schema-level attribute names; instance-level
truth is the business of :mod:`repro.fd.measures`.  The two meet in
:mod:`repro.design.normalize`, where evolved (repaired) FDs feed key
discovery and decomposition.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.fd.fd import FunctionalDependency

__all__ = [
    "attribute_closure",
    "implies",
    "is_redundant",
    "minimal_cover",
    "equivalent_covers",
]


def attribute_closure(
    attributes: Iterable[str],
    fds: Sequence[FunctionalDependency],
) -> frozenset[str]:
    """``X⁺``: every attribute determined by ``attributes`` under ``fds``.

    The standard fixpoint: repeatedly fire FDs whose antecedent is
    covered.  Runs in O(|fds| · |closure|) with the unfired-FD list
    shrinking every pass.
    """
    closure = set(attributes)
    remaining = list(fds)
    changed = True
    while changed:
        changed = False
        still_unfired: list[FunctionalDependency] = []
        for fd in remaining:
            if set(fd.antecedent) <= closure:
                before = len(closure)
                closure.update(fd.consequent)
                if len(closure) != before:
                    changed = True
            else:
                still_unfired.append(fd)
        remaining = still_unfired
    return frozenset(closure)


def implies(
    fds: Sequence[FunctionalDependency],
    candidate: FunctionalDependency,
) -> bool:
    """Whether ``fds ⊨ candidate`` (Armstrong-derivable)."""
    closure = attribute_closure(candidate.antecedent, fds)
    return set(candidate.consequent) <= closure


def is_redundant(
    fds: Sequence[FunctionalDependency],
    target: FunctionalDependency,
) -> bool:
    """Whether ``target`` is implied by the *other* FDs in ``fds``."""
    rest = [fd for fd in fds if fd is not target and fd != target]
    return implies(rest, target)


def minimal_cover(
    fds: Sequence[FunctionalDependency],
) -> list[FunctionalDependency]:
    """A canonical (minimal) cover of ``fds``.

    Three classical passes: (1) decompose to single consequents;
    (2) remove extraneous antecedent attributes (left-reduction);
    (3) remove FDs implied by the rest.  Deterministic: attributes and
    FDs are processed in declaration order, so the same input always
    yields the same cover.
    """
    working = [single for fd in fds for single in fd.decompose()]

    # Left-reduction.
    reduced: list[FunctionalDependency] = []
    for index, fd in enumerate(working):
        antecedent = list(fd.antecedent)
        for attr in list(antecedent):
            if len(antecedent) == 1:
                break
            trimmed = [a for a in antecedent if a != attr]
            context = reduced + [fd] + working[index + 1 :]
            if implies(context, FunctionalDependency(trimmed, fd.consequent)):
                antecedent = trimmed
        reduced.append(FunctionalDependency(antecedent, fd.consequent))
    working = reduced

    # Drop implied FDs (stable, first occurrence wins).
    cover: list[FunctionalDependency] = []
    deduped: list[FunctionalDependency] = []
    for fd in working:
        if fd not in deduped:
            deduped.append(fd)
    for index, fd in enumerate(deduped):
        rest = cover + deduped[index + 1 :]
        if not implies(rest, fd):
            cover.append(fd)
    return cover


def equivalent_covers(
    left: Sequence[FunctionalDependency],
    right: Sequence[FunctionalDependency],
) -> bool:
    """Whether two FD sets imply each other (same closure)."""
    return all(implies(right, fd) for fd in left) and all(
        implies(left, fd) for fd in right
    )
