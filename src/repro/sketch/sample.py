"""Seeded-sample estimators: reservoir rows → entropy / violating pairs.

:class:`Reservoir` is Vitter's Algorithm R driven by a dedicated
``random.Random(seed)`` — the sample is a pure function of the input
order and the seed, so estimates reproduce across runs, backends, and
processes.  On top of it:

* :func:`entropy_estimate` — plug-in entropy of the sampled rows (nats,
  matching :func:`repro.eb.entropy.entropy_of`) with the Miller–Madow
  bias correction ``(k̂ − 1)/(2s)``.  Stated bound:
  ``3·log(s)/√s + log(1 + (k − 1)/s)`` — the classic standard-error
  envelope of the plug-in estimator plus its maximal undersampling
  bias given ``k`` distinct groups (the plug-in underestimates by at
  most that much when the sample cannot see every group; pass the HLL
  distinct estimate as ``distinct_hint``).
* :func:`violating_pairs_estimate` — the fraction of violating row
  pairs *within the sample* scaled to ``C(n,2)``.  All ``C(s,2)``
  sample pairs form a U-statistic for the population pair fraction;
  the stated bound uses the conservative ``s/2``-independent-pairs
  variance envelope: ``3·√(p̂(1−p̂)/(s/2))·C(n,2)``.

Every estimator returns a :class:`SampleEstimate` carrying the value
*and* its stated bound, so callers (and the cross-check suite) assert
``|estimate − exact| <= bound`` rather than trusting a bare float.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

__all__ = [
    "Reservoir",
    "SampleEstimate",
    "entropy_estimate",
    "violating_pairs_estimate",
]


@dataclass(frozen=True)
class SampleEstimate:
    """One sample-based estimate with its stated error bound."""

    value: float
    #: Absolute stated bound: ``|value − exact| <= bound`` is the
    #: contract the sketch-vs-exact suite asserts.
    bound: float
    sample_size: int
    population: int

    def within(self, exact: float) -> bool:
        """Whether ``exact`` falls inside the stated bound."""
        return abs(self.value - exact) <= self.bound


class Reservoir:
    """Deterministic uniform row sample (Vitter's Algorithm R)."""

    __slots__ = ("capacity", "seed", "_rng", "_items", "seen")

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self._rng = random.Random(seed)
        self._items: list[Any] = []
        self.seen = 0

    def add(self, item: Any) -> None:
        self.seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self._items[slot] = item

    def extend(self, items: Iterable[Any]) -> None:
        for item in items:
            self.add(item)

    @property
    def items(self) -> list[Any]:
        """The current sample (order is an artifact, not meaningful)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


def entropy_estimate(
    sample_keys: Iterable[Any],
    population: int,
    distinct_hint: float | None = None,
) -> SampleEstimate:
    """Miller–Madow-corrected entropy (nats) from sampled group keys.

    ``sample_keys`` are the group identities of the sampled rows (e.g.
    packed global codes of the attribute set); ``population`` is the
    full relation's row count, carried for reporting.  ``distinct_hint``
    is the (estimated) number of distinct groups in the *population* —
    it widens the stated bound by the plug-in estimator's maximal
    undersampling bias ``log(1 + (k − 1)/s)``, which dominates when the
    sample cannot see every group (``k ≈ n``).
    """
    counts: dict[Any, int] = {}
    s = 0
    for key in sample_keys:
        counts[key] = counts.get(key, 0) + 1
        s += 1
    if s == 0:
        return SampleEstimate(0.0, 0.0, 0, population)
    plugin = 0.0
    for count in counts.values():
        p = count / s
        plugin -= p * math.log(p)
    corrected = plugin + (len(counts) - 1) / (2 * s)
    bound = 3.0 * math.log(max(s, 2)) / math.sqrt(s)
    k = max(distinct_hint or len(counts), len(counts))
    bound += math.log1p((k - 1) / s)
    return SampleEstimate(corrected, bound, s, population)


def violating_pairs_estimate(
    sample_rows: Iterable[tuple[Any, Any]], population: int
) -> SampleEstimate:
    """Estimated count of violating row pairs in the full relation.

    ``sample_rows`` are ``(x_key, y_key)`` per sampled row; a pair
    violates when the X keys agree and the Y keys differ (Definition 2).
    The within-sample fraction over all ``C(s,2)`` pairs is scaled to
    ``C(n,2)``.  Rather than touching pairs one by one, group the
    sample by X and by (X, Y): violating sample pairs are
    ``Σ C(x_g,2) − Σ C(xy_g,2)`` — the same identity the exact kernel
    uses.
    """
    x_counts: dict[Any, int] = {}
    xy_counts: dict[tuple[Any, Any], int] = {}
    s = 0
    for x_key, y_key in sample_rows:
        x_counts[x_key] = x_counts.get(x_key, 0) + 1
        xy = (x_key, y_key)
        xy_counts[xy] = xy_counts.get(xy, 0) + 1
        s += 1
    total_pairs = population * (population - 1) // 2
    if s < 2 or total_pairs == 0:
        return SampleEstimate(0.0, float(total_pairs), s, population)
    sample_pairs = s * (s - 1) // 2
    violating = sum(c * (c - 1) // 2 for c in x_counts.values()) - sum(
        c * (c - 1) // 2 for c in xy_counts.values()
    )
    p = violating / sample_pairs
    bound = 3.0 * math.sqrt(max(p * (1 - p), 1.0 / s) / (s / 2))
    return SampleEstimate(
        p * total_pairs, bound * total_pairs, s, population
    )
