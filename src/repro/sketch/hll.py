"""HyperLogLog distinct-count sketches with stated error bounds.

One sketch is ``m = 2^precision`` one-byte registers.  Hashing is a
seeded splitmix64 finalizer — deterministic across processes and
``PYTHONHASHSEED`` values, identical between the numpy (vectorized
``uint64`` pipeline) and stdlib-pure paths, so a sketch's estimate is a
pure function of ``(values, precision, seed)``.

The estimator is the classic Flajolet–Fu­sy–Gandouet–Meunier form with
the small-range linear-counting correction; 64-bit hashes make the
large-range correction unnecessary at any cardinality this engine can
feed it.  The *stated* error bound is ``3 × 1.04/√m`` — three standard
errors, so observed errors sit within it overwhelmingly often — and is
what the sketch-vs-exact cross-check suite asserts.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.relational import kernels

__all__ = ["HyperLogLog", "hash_value", "splitmix64", "splitmix64_lanes"]

_MASK64 = (1 << 64) - 1

#: α_m constants for the raw HLL estimator.
_ALPHA = {16: 0.673, 32: 0.697, 64: 0.709}


def _alpha(m: int) -> float:
    return _ALPHA.get(m, 0.7213 / (1 + 1.079 / m))


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer over one 64-bit lane (deterministic)."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def hash_value(value: Any, seed: int = 0) -> int:
    """A 64-bit, process-independent hash of one engine value.

    Integers (the dictionary codes every hot path feeds in) go through
    splitmix64 directly; other scalars hash their type-tagged ``repr``
    bytes through blake2b — slower, but only reachable from the generic
    value-level API.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        import hashlib

        tagged = f"{type(value).__name__}:{value!r}".encode()
        digest = hashlib.blake2b(tagged, digest_size=8).digest()
        value = int.from_bytes(digest, "little")
    return splitmix64((value ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64)


class HyperLogLog:
    """A mergeable HLL distinct counter."""

    __slots__ = ("precision", "seed", "_m", "_registers")

    def __init__(self, precision: int = 14, seed: int = 0) -> None:
        if not 4 <= precision <= 18:
            raise ValueError(f"precision must be in 4..18, got {precision}")
        self.precision = precision
        self.seed = seed
        self._m = 1 << precision
        self._registers = bytearray(self._m)

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------
    def add_hash(self, h: int) -> None:
        """Insert one pre-hashed 64-bit value."""
        index = h >> (64 - self.precision)
        w = (h << self.precision) & _MASK64
        rank = 1 if w == 0 else min(
            64 - self.precision + 1, 65 - w.bit_length()
        )
        if rank > self._registers[index]:
            self._registers[index] = rank

    def add(self, value: Any) -> None:
        """Insert one value (hashed with :func:`hash_value`)."""
        self.add_hash(hash_value(value, self.seed))

    def add_ints(self, values: Iterable[int]) -> None:
        """Bulk-insert integers (e.g. packed dictionary codes).

        On the numpy backend the whole batch runs as a vectorized
        ``uint64`` splitmix64 + ``np.maximum.at`` register update; the
        stdlib path is the same math per value.  Both produce identical
        registers.
        """
        if kernels.active_backend_name() == "numpy":
            import numpy as np

            lanes = np.asarray(values, dtype=np.int64).astype(np.uint64)
            if lanes.size == 0:
                return
            self._add_hashes_numpy(splitmix64_lanes(lanes, self.seed))
            return
        seed_mix = (self.seed * 0x9E3779B97F4A7C15) & _MASK64
        for value in values:
            self.add_hash(splitmix64((int(value) ^ seed_mix) & _MASK64))

    def add_hashes(self, hashes) -> None:
        """Bulk-insert pre-hashed 64-bit lanes (e.g. multi-column row
        hashes from :func:`repro.storage.profile` combiners)."""
        if kernels.active_backend_name() == "numpy":
            import numpy as np

            lanes = np.asarray(hashes, dtype=np.uint64)
            if lanes.size:
                self._add_hashes_numpy(lanes)
            return
        for h in hashes:
            self.add_hash(int(h))

    def _add_hashes_numpy(self, h) -> None:
        import numpy as np

        p = self.precision
        index = (h >> np.uint64(64 - p)).astype(np.int64)
        w = h << np.uint64(p)  # wraps mod 2^64, as intended
        # rank = leading zeros of w (within 64-p bits) + 1, capped.
        bl = _bit_length_u64(w)
        rank = np.minimum(64 - p + 1, 65 - bl).astype(np.uint8)
        rank[w == 0] = 1
        registers = np.frombuffer(self._registers, dtype=np.uint8).copy()
        np.maximum.at(registers, index, rank)
        self._registers = bytearray(registers.tobytes())

    # ------------------------------------------------------------------
    # Estimate
    # ------------------------------------------------------------------
    def count(self) -> float:
        """The cardinality estimate (small-range corrected)."""
        m = self._m
        registers = self._registers
        raw_sum = 0.0
        zeros = 0
        for register in registers:
            raw_sum += 2.0 ** (-register)
            if register == 0:
                zeros += 1
        estimate = _alpha(m) * m * m / raw_sum
        if estimate <= 2.5 * m and zeros:
            import math

            estimate = m * math.log(m / zeros)
        return estimate

    @property
    def registers(self) -> bytes:
        """The register file (one byte per bucket) — the sketch's whole
        state, byte-identical across backends for the same inputs."""
        return bytes(self._registers)

    @property
    def relative_error(self) -> float:
        """One standard error of the estimator: ``1.04/√m``."""
        return 1.04 / (self._m**0.5)

    @property
    def error_bound(self) -> float:
        """The stated (3σ) relative error bound the tests assert."""
        return 3.0 * self.relative_error

    def merge(self, other: "HyperLogLog") -> None:
        """Fold another sketch in (register-wise max)."""
        if (other.precision, other.seed) != (self.precision, self.seed):
            raise ValueError("can only merge sketches with equal precision/seed")
        self._registers = bytearray(
            max(a, b) for a, b in zip(self._registers, other._registers)
        )


def splitmix64_lanes(lanes, seed: int = 0):
    """Vectorized seeded splitmix64 over a ``uint64`` ndarray."""
    import numpy as np

    seed_mix = np.uint64((seed * 0x9E3779B97F4A7C15) & _MASK64)
    z = lanes ^ seed_mix
    z = z + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _bit_length_u64(w):
    """Vectorized ``int.bit_length`` for ``uint64`` arrays.

    Split into 32-bit halves so the float conversion that computes the
    halves' bit lengths stays exact (values < 2^32 ≪ 2^53).
    """
    import numpy as np

    high = (w >> np.uint64(32)).astype(np.float64)
    low = (w & np.uint64(0xFFFFFFFF)).astype(np.float64)
    bl_high = np.where(high > 0, np.floor(np.log2(np.maximum(high, 1))) + 1, 0)
    bl_low = np.where(low > 0, np.floor(np.log2(np.maximum(low, 1))) + 1, 0)
    return np.where(high > 0, 32 + bl_high, bl_low)
