"""Approximate profiling sketches (PR 9).

Two estimator families, both deterministic (seeded hashing / seeded
reservoirs — never ``hash()``):

* :mod:`repro.sketch.hll` — HyperLogLog distinct counts (splitmix64
  hashing, vectorized on the numpy backend), stated bound
  ``3 × 1.04/√m``;
* :mod:`repro.sketch.sample` — seeded reservoir samples feeding
  Miller–Madow entropy and U-statistic violating-pair estimates, each
  returning a :class:`~repro.sketch.sample.SampleEstimate` with its
  stated bound.

The process-wide **approx mode** mirrors the kernel-backend switch:
``"exact"`` (default) or ``"sketch"``.  The chunked profiling layer
(:mod:`repro.storage.profile`) consults :func:`active_approx` to pick
between exact spill-merge kernels and these sketches; it is installed
by ``EngineConfig(approx=...)`` / ``$REPRO_APPROX`` and scoped in tests
with :func:`use_approx`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterable

from .hll import HyperLogLog, hash_value, splitmix64
from .sample import (
    Reservoir,
    SampleEstimate,
    entropy_estimate,
    violating_pairs_estimate,
)

__all__ = [
    "APPROX_ENV_VAR",
    "DEFAULT_PRECISION",
    "HyperLogLog",
    "Reservoir",
    "SampleEstimate",
    "active_approx",
    "entropy_estimate",
    "estimate_distinct",
    "hash_value",
    "set_approx",
    "splitmix64",
    "use_approx",
    "violating_pairs_estimate",
]

APPROX_ENV_VAR = "REPRO_APPROX"

#: Default HLL precision: 2^14 registers → 16 KiB per sketch, stated
#: bound ≈ 2.4% relative.
DEFAULT_PRECISION = 14

_MODES = ("exact", "sketch")

_active: str | None = None


def _normalize(mode: str | None, source: str) -> str:
    if mode is None:
        return "exact"
    lowered = str(mode).strip().lower()
    if lowered not in _MODES:
        raise ValueError(
            f"approx mode must be one of {_MODES}, got {mode!r} (from {source})"
        )
    return lowered


def set_approx(mode: str | None) -> None:
    """Install the process-wide approx mode (``None`` → ``"exact"``)."""
    global _active
    _active = _normalize(mode, "set_approx()")


def active_approx() -> str:
    """The approx mode in effect: explicit setting, else ``$REPRO_APPROX``,
    else ``"exact"``."""
    if _active is not None:
        return _active
    env = os.environ.get(APPROX_ENV_VAR)
    if env:
        return _normalize(env, f"${APPROX_ENV_VAR}")
    return "exact"


def estimate_distinct(
    values: Iterable[Any], precision: int = DEFAULT_PRECISION
) -> float:
    """HLL distinct-count estimate over ``values`` (NULLs ignored).

    One-shot convenience for consumers that want a number rather than a
    mergeable sketch — the query optimizer's cost model feeds on this in
    ``approx="sketch"`` mode.
    """
    sketch = HyperLogLog(precision)
    for value in values:
        if value is not None:
            sketch.add(value)
    return sketch.count()


@contextmanager
def use_approx(mode: str | None):
    """Scoped approx-mode override (tests, benchmarks)."""
    global _active
    previous = _active
    _active = _normalize(mode, "use_approx()")
    try:
        yield
    finally:
        _active = previous
