"""FD discovery (system S7 in DESIGN.md): the alternative the paper rejects.

:func:`discover_fds` mines minimal (approximate) FDs levelwise so the
"discover then relax" strategy of Section 2 can be benchmarked against
direct CB repair (``benchmarks/bench_ablation_discovery.py``).
"""

from .tane import DiscoveredFD, DiscoveryResult, discover_fds

__all__ = ["DiscoveredFD", "DiscoveryResult", "discover_fds"]
