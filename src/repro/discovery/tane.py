"""Levelwise (TANE-style) discovery of exact and approximate FDs.

Section 2 of the paper discusses the alternative to FD evolution: run a
dependency-discovery algorithm over the instance ([16], denial
constraints) and then relax the designer's constraints against the
discovered set — and argues it is "rather impractical" because (i) it
is expensive and (ii) the discovered constraints "not always include
extensions of the ones specified by the designer".  This module makes
that comparison executable: a levelwise lattice search in the TANE
family, using the same stripped partitions the rest of the engine
provides.

The implementation favours clarity over the full TANE pruning
machinery: it walks antecedent sets level by level, tests
``X \\ {A} → A`` by comparing distinct counts (confidence for the
approximate variant), keeps only *minimal* FDs (no discovered FD's
antecedent strictly contains another's for the same consequent), and
prunes supersets of keys.  Complexity remains exponential in the arity
— which is precisely the paper's point — so ``max_lhs_size`` bounds the
walk.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.fd.fd import FunctionalDependency
from repro.relational.relation import Relation

__all__ = ["DiscoveredFD", "DiscoveryResult", "discover_fds"]


@dataclass(frozen=True)
class DiscoveredFD:
    """One discovered dependency with its instance confidence."""

    fd: FunctionalDependency
    confidence: float

    @property
    def is_exact(self) -> bool:
        """Whether the FD holds exactly on the mined instance."""
        return self.confidence >= 1.0

    def __str__(self) -> str:
        return f"{self.fd} (c={self.confidence:.4g})"


@dataclass
class DiscoveryResult:
    """All minimal FDs found, plus search accounting."""

    fds: list[DiscoveredFD] = field(default_factory=list)
    candidates_tested: int = 0
    levels_explored: int = 0
    elapsed_seconds: float = 0.0

    def exact(self) -> list[DiscoveredFD]:
        """Only the exact discovered FDs."""
        return [item for item in self.fds if item.is_exact]

    def with_consequent(self, attribute: str) -> list[DiscoveredFD]:
        """Discovered FDs whose consequent is ``attribute``."""
        return [item for item in self.fds if item.fd.consequent == (attribute,)]

    def extensions_of(self, fd: FunctionalDependency) -> list[DiscoveredFD]:
        """Discovered FDs that extend ``fd``'s antecedent (same consequent).

        This is the lookup the "discover then relax" strategy needs;
        the paper's observation is that it can come back empty even
        when a repair exists, because discovery only reports *minimal*
        FDs and a minimal antecedent need not contain the designer's.
        """
        x = set(fd.antecedent)
        return [
            item
            for item in self.fds
            if item.fd.consequent == fd.consequent and x <= set(item.fd.antecedent)
        ]


def discover_fds(
    relation: Relation,
    max_lhs_size: int = 3,
    min_confidence: float = 1.0,
    attributes: list[str] | None = None,
) -> DiscoveryResult:
    """Discover minimal FDs ``X → A`` with ``|X| ≤ max_lhs_size``.

    ``min_confidence < 1`` switches to approximate-FD discovery
    (confidence-thresholded, Definition 4's AFD notion).  NULL-bearing
    attributes are skipped entirely, consistent with the FD layer.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError("min_confidence must be in (0, 1]")
    start = time.perf_counter()
    pool = list(attributes) if attributes is not None else [
        name for name in relation.attribute_names
        if not relation.column(name).has_nulls
    ]
    result = DiscoveryResult()

    # Distinct counts per attribute set, computed lazily via the
    # relation's memoizing stats facade.
    def distinct(attrs: tuple[str, ...]) -> int:
        return relation.count_distinct(list(attrs))

    n = relation.num_rows
    minimal_lhs: dict[str, list[frozenset[str]]] = {a: [] for a in pool}
    keys: list[frozenset[str]] = []

    for level in range(1, max_lhs_size + 1):
        result.levels_explored = level
        for lhs in itertools.combinations(pool, level):
            lhs_set = frozenset(lhs)
            # Prune: supersets of a key determine everything trivially.
            if any(key <= lhs_set for key in keys):
                continue
            lhs_count = distinct(lhs)
            if lhs_count == n:
                keys.append(lhs_set)
            for rhs in pool:
                if rhs in lhs_set:
                    continue
                # Minimality: skip if a subset lhs already implies rhs.
                if any(known <= lhs_set for known in minimal_lhs[rhs]):
                    continue
                result.candidates_tested += 1
                xy_count = distinct(tuple(sorted(lhs_set | {rhs})))
                confidence = lhs_count / xy_count if xy_count else 1.0
                if confidence >= min_confidence:
                    fd = FunctionalDependency(lhs, (rhs,))
                    result.fds.append(DiscoveredFD(fd, confidence))
                    minimal_lhs[rhs].append(lhs_set)
    result.elapsed_seconds = time.perf_counter() - start
    return result
