"""Levelwise (TANE-style) discovery of exact and approximate FDs.

Section 2 of the paper discusses the alternative to FD evolution: run a
dependency-discovery algorithm over the instance ([16], denial
constraints) and then relax the designer's constraints against the
discovered set — and argues it is "rather impractical" because (i) it
is expensive and (ii) the discovered constraints "not always include
extensions of the ones specified by the designer".  This module makes
that comparison executable: a levelwise lattice search in the TANE
family, running on the engine's stripped partitions.

The search applies the genuine TANE machinery:

* **error-based tests** — ``e(X)`` comes from the stripped partition of
  X (``|π_X| = n − e(X)``), and π_X itself is one O(covered)
  refinement of the previous level's π_{X∖{A}}, held in a two-level
  lattice store (plus the relation's own partition cache for the
  single-attribute base);
* **candidate-set (C⁺) pruning** — each node carries the set of
  right-hand sides not already implied by a found subset FD,
  intersected from its parents; nodes whose candidate set empties are
  deleted, and their supersets are never expanded;
* **key-based pruning** — supersets of a discovered key are skipped
  outright (a key determines everything, so nothing minimal is above
  it).

Discovered output is exactly the seed semantics: *minimal* FDs
``X → A`` (no found FD's antecedent is a proper subset for the same
consequent) with their confidences ``|π_X| / |π_XA|``; the
``min_confidence < 1`` mode yields Definition 4's approximate FDs.
Complexity remains exponential in the arity — which is precisely the
paper's point — so ``max_lhs_size`` bounds the walk.

:func:`discover_fds_plain` keeps the pre-partition implementation
(distinct counts recomputed per attribute set) alive as the ablation
baseline; ``benchmarks/bench_ablation_discovery.py`` measures the two
against each other and the test suite asserts they return identical
results.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.fd.fd import FunctionalDependency
from repro.relational import kernels, parallel
from repro.relational.relation import Relation

__all__ = ["DiscoveredFD", "DiscoveryResult", "discover_fds", "discover_fds_plain"]


@dataclass(frozen=True)
class DiscoveredFD:
    """One discovered dependency with its instance confidence."""

    fd: FunctionalDependency
    confidence: float

    @property
    def is_exact(self) -> bool:
        """Whether the FD holds exactly on the mined instance."""
        return self.confidence >= 1.0

    def __str__(self) -> str:
        return f"{self.fd} (c={self.confidence:.4g})"


@dataclass
class DiscoveryResult:
    """All minimal FDs found, plus search accounting."""

    fds: list[DiscoveredFD] = field(default_factory=list)
    candidates_tested: int = 0
    levels_explored: int = 0
    elapsed_seconds: float = 0.0

    def exact(self) -> list[DiscoveredFD]:
        """Only the exact discovered FDs."""
        return [item for item in self.fds if item.is_exact]

    def with_consequent(self, attribute: str) -> list[DiscoveredFD]:
        """Discovered FDs whose consequent is ``attribute``."""
        return [item for item in self.fds if item.fd.consequent == (attribute,)]

    def extensions_of(self, fd: FunctionalDependency) -> list[DiscoveredFD]:
        """Discovered FDs that extend ``fd``'s antecedent (same consequent).

        This is the lookup the "discover then relax" strategy needs;
        the paper's observation is that it can come back empty even
        when a repair exists, because discovery only reports *minimal*
        FDs and a minimal antecedent need not contain the designer's.
        """
        x = set(fd.antecedent)
        return [
            item
            for item in self.fds
            if item.fd.consequent == fd.consequent and x <= set(item.fd.antecedent)
        ]


def _discovery_pool(relation: Relation, attributes: list[str] | None) -> list[str]:
    """The attribute pool: as given, or every NULL-free attribute."""
    if attributes is not None:
        return list(attributes)
    return [
        name
        for name in relation.attribute_names
        if not relation.column(name).has_nulls
    ]


class _LatticeNode:
    """One live lattice node: π_X (possibly virtual), C⁺ and found sets.

    Materializing a partition costs ~3× a counting scan, and many nodes
    are scanned only a handful of times — so a node starts *virtual*:
    it holds the nearest materialized ancestor's partition (``base``)
    plus the columns added since.  Every error it needs is then one
    multi-column
    :meth:`~repro.relational.partition.StrippedPartition.refined_error`
    off the base — the same work the plain engine does, so a virtual
    node never loses.  :meth:`materialize` collapses the chain when the
    shrink in covered rows repays the grouping pass (decided per node
    in the level's source-selection step).
    """

    __slots__ = ("partition", "base", "columns", "cands", "found")

    def __init__(self, partition, base, columns) -> None:
        self.partition = partition  # StrippedPartition | None when virtual
        self.base = base  # nearest materialized ancestor's partition
        self.columns = columns  # code columns added over the base
        self.cands: frozenset[str] = frozenset()
        self.found: frozenset[str] = frozenset()

    def child(self, codes) -> "_LatticeNode":
        """A virtual node for ``X ∪ {A}``, hanging off the same base."""
        if self.partition is not None:
            return _LatticeNode(None, self.partition, (codes,))
        return _LatticeNode(None, self.base, self.columns + (codes,))

    def materialize(self) -> None:
        """Collapse the virtual chain into a real partition."""
        if self.partition is None:
            self.partition = self.base.refine(*self.columns)

    @property
    def scan_covered(self) -> int:
        """Rows a counting scan through this node touches."""
        if self.partition is not None:
            return self.partition.covered_rows
        return self.base.covered_rows

    def error(self) -> int:
        """``e(X)`` without forcing materialization."""
        if self.partition is not None:
            return self.partition.error()
        return self.base.refined_error(*self.columns)

    def refined_error(self, codes) -> int:
        """``e(X·A)`` for one extra column, without materializing π_X."""
        if self.partition is not None:
            return self.partition.refined_error(codes)
        return self.base.refined_error(*self.columns, codes)


def _thread_refined_error(arrays, payload, task) -> int:
    """Thread-pool worker: one candidate error through a shared node."""
    node, codes = task
    return node.refined_error(codes)


def _shm_refined_error(arrays, payload, task) -> int:
    """Process-pool worker: one candidate error off shared-memory views.

    ``payload`` carries the resolved backend name plus, per node, the
    slots of its flat partition arrays and virtual-chain columns; the
    task picks a node and a rhs column slot.  The arithmetic is exactly
    ``refined_error`` without the partition object.
    """
    backend_name, node_meta = payload
    backend = kernels.backend_module(backend_name)
    node_index, rhs_slot = task
    rows_slot, ids_slot, chain_slots = node_meta[node_index]
    code_columns = [arrays[slot] for slot in chain_slots]
    code_columns.append(arrays[rhs_slot])
    return backend.refined_error_arrays(
        arrays[rows_slot], arrays[ids_slot], code_columns
    )


def _export_refinement_jobs(items, columns):
    """Shared-memory export of Pass B's refinement jobs.

    Nodes are deduplicated by identity (one flat-array export however
    many targets scan through it) and rhs code columns by name, so the
    segment holds each array exactly once.
    """
    backend = kernels.get_backend()
    arrays: list = []
    node_slots: dict[int, int] = {}
    node_meta: list[tuple[int, int, tuple[int, ...]]] = []
    column_slots: dict[str, int] = {}
    tasks: list[tuple[int, int]] = []
    for _target, (node, rhs) in items:
        node_index = node_slots.get(id(node))
        if node_index is None:
            partition = node.partition if node.partition is not None else node.base
            rows, ids = backend.flat_partition_arrays(partition)
            rows_slot = len(arrays)
            arrays.append(rows)
            ids_slot = len(arrays)
            arrays.append(ids)
            chain = () if node.partition is not None else node.columns
            chain_slots = []
            for codes in chain:
                chain_slots.append(len(arrays))
                arrays.append(backend.as_code_array(codes))
            node_index = len(node_meta)
            node_slots[id(node)] = node_index
            node_meta.append((rows_slot, ids_slot, tuple(chain_slots)))
        rhs_slot = column_slots.get(rhs)
        if rhs_slot is None:
            rhs_slot = len(arrays)
            column_slots[rhs] = rhs_slot
            arrays.append(backend.as_code_array(columns[rhs]))
        tasks.append((node_index, rhs_slot))
    return arrays, tuple(node_meta), tasks


def _target_counts(n: int, sources: dict, columns: dict) -> dict:
    """Pass B's ``{target: |π_XA|}`` map, morsel-parallel when enabled.

    Serial and parallel modes iterate ``sources`` in the same insertion
    order and build the result dict in that order, so downstream
    consumers observe byte-identical state.  Thread workers share the
    live nodes (refined_error only reads them, and the lazy ``_flat``
    memo is an idempotent assignment); process workers get flat
    partition arrays through shared memory.
    """
    items = list(sources.items())
    kind = parallel.pool_kind()
    if kind == "serial" or len(items) < 2:
        return {
            target: n - node.refined_error(columns[rhs])
            for target, (node, rhs) in items
        }
    if kind == "process":
        arrays, node_meta, tasks = _export_refinement_jobs(items, columns)
        errors = parallel.morsel_map(
            _shm_refined_error,
            tasks,
            arrays=arrays,
            payload=(kernels.active_backend_name(), node_meta),
        )
    else:
        errors = parallel.morsel_map(
            _thread_refined_error,
            [(node, columns[rhs]) for _target, (node, rhs) in items],
        )
    return {target: n - error for (target, _source), error in zip(items, errors)}


def discover_fds(
    relation: Relation,
    max_lhs_size: int = 3,
    min_confidence: float = 1.0,
    attributes: list[str] | None = None,
) -> DiscoveryResult:
    """Discover minimal FDs ``X → A`` with ``|X| ≤ max_lhs_size``.

    ``min_confidence < 1`` switches to approximate-FD discovery
    (confidence-thresholded, Definition 4's AFD notion).  NULL-bearing
    attributes are skipped entirely, consistent with the FD layer.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError("min_confidence must be in (0, 1]")
    start = time.perf_counter()
    pool = _discovery_pool(relation, attributes)
    result = DiscoveryResult()

    n = relation.num_rows
    # Kernel-ready code columns: plain lists on the python backend,
    # int64 arrays on numpy — whatever the cached partitions refine by.
    columns = {name: relation.column(name).kernel_codes() for name in pool}
    keys: list[frozenset[str]] = []

    # Two-level lattice store of live :class:`_LatticeNode`s.  A node
    # absent from the store was pruned (key superset or empty C⁺), and
    # so are all its supersets.
    root = _LatticeNode(None, None, ())
    root.cands = frozenset(pool)
    prev: dict[frozenset[str], _LatticeNode] = {frozenset(): root}

    # Under a worker pool, batch-build the level-1 base partitions as
    # one morsel map.  With >1 attribute the serial walk builds exactly
    # these singletons in pool order, so cache contents, insertion
    # order and build counters all stay byte-identical to the oracle.
    if len(pool) > 1 and parallel.pool_kind() != "serial":
        relation.stats.prime_partitions([(name,) for name in pool])

    for level in range(1, max_lhs_size + 1):
        result.levels_explored = level
        last_level = level == max_lhs_size
        current: dict[frozenset[str], _LatticeNode] = {}

        # Pass A — build the level's live nodes: key pruning, C⁺
        # pruning.  Non-final nodes materialize eagerly (they seed the
        # next level); final-level nodes stay virtual and only collapse
        # if the source-selection step decides the scans repay it.
        nodes: list[tuple] = []  # (lhs, lhs_set, node, lhs_count)
        for lhs in itertools.combinations(pool, level):
            lhs_set = frozenset(lhs)
            # Prune: supersets of a key determine everything trivially.
            if any(key <= lhs_set for key in keys):
                continue
            # C⁺(X) = ⋂_B (C⁺(X∖{B}) ∖ found(X∖{B})) ∖ X: rhs not
            # already implied by a found subset FD.  A missing parent
            # means the parent's C⁺ emptied, hence so does ours.
            candidate_rhs: frozenset[str] | None = None
            pruned = False
            for attr in lhs:
                parent = prev.get(lhs_set - {attr})
                if parent is None:
                    pruned = True
                    break
                surviving = parent.cands - parent.found
                candidate_rhs = (
                    surviving
                    if candidate_rhs is None
                    else candidate_rhs & surviving
                )
            if pruned:
                continue
            candidate_rhs = candidate_rhs - lhs_set
            if not candidate_rhs:
                continue  # C⁺ empty: delete the node, skip all supersets
            # Level 1 takes the relation's cached single-attribute
            # partitions; deeper nodes hang virtually off their first
            # parent's chain.
            first_parent = prev[lhs_set - {lhs[0]}]
            if first_parent is root:
                node = _LatticeNode(
                    relation.stripped_partition([lhs[0]]), None, ()
                )
            else:
                node = first_parent.child(columns[lhs[0]])
                if not last_level:
                    node.materialize()
            node.cands = candidate_rhs
            lhs_count = n - node.error()
            if lhs_count == n:
                keys.append(lhs_set)
            nodes.append((lhs, lhs_set, node, lhs_count))

        # Pass B — shared candidate errors.  Each target set X∪{A} is
        # tested by up to |X|+1 (lhs, rhs) pairs of this level but its
        # error is scanned once, through the contributing node whose
        # scan touches the fewest rows.  Key lhs are skipped outright:
        # |π_XA| = n follows without touching a row.
        sources: dict[frozenset[str], tuple] = {}
        for lhs, lhs_set, node, lhs_count in nodes:
            if lhs_count == n:
                continue
            for rhs in node.cands:
                target = lhs_set | {rhs}
                best = sources.get(target)
                if best is None or node.scan_covered < best[0].scan_covered:
                    sources[target] = (node, rhs)
        # Materialize a virtual node only where it pays: with s scans
        # routed through it, collapsing costs ~3 scans of the base but
        # shrinks each scan from the base's covered rows to π_X's —
        # bounded above by 2·e(X), since every stripped class of ≥ 2
        # rows contributes at least half its size to the error.
        scans_through: dict[int, int] = {}
        node_error = {}
        for lhs, lhs_set, node, lhs_count in nodes:
            node_error[id(node)] = n - lhs_count
        for node, _rhs in sources.values():
            scans_through[id(node)] = scans_through.get(id(node), 0) + 1
        for lhs, lhs_set, node, lhs_count in nodes:
            if node.partition is not None:
                continue
            scans = scans_through.get(id(node), 0)
            base_covered = node.scan_covered
            shrunk = min(2 * node_error[id(node)], base_covered)
            if scans * (base_covered - shrunk) > 3 * base_covered:
                node.materialize()
        target_count = _target_counts(n, sources, columns)

        # Pass C — emit FDs in the deterministic (combination, pool)
        # order and roll the survivors into the next level's store.
        for lhs, lhs_set, node, lhs_count in nodes:
            found: set[str] = set()
            for rhs in pool:
                if rhs in lhs_set or rhs not in node.cands:
                    continue
                result.candidates_tested += 1
                if lhs_count == n:
                    confidence = 1.0  # a key determines every attribute
                else:
                    xa_count = target_count[lhs_set | {rhs}]
                    confidence = lhs_count / xa_count if xa_count else 1.0
                if confidence >= min_confidence:
                    fd = FunctionalDependency(lhs, (rhs,))
                    result.fds.append(DiscoveredFD(fd, confidence))
                    found.add(rhs)
            if lhs_count < n:  # key nodes are leaves: supersets are pruned
                node.found = frozenset(found)
                current[lhs_set] = node
        prev = current
    result.elapsed_seconds = time.perf_counter() - start
    return result


def discover_fds_plain(
    relation: Relation,
    max_lhs_size: int = 3,
    min_confidence: float = 1.0,
    attributes: list[str] | None = None,
) -> DiscoveryResult:
    """The pre-partition discovery: distinct-count comparisons only.

    Kept as the ablation baseline for the stripped-partition engine —
    semantically identical to :func:`discover_fds` (the test suite
    asserts so property-based), but every candidate test pays a full
    scan building the set of code tuples.  Counts are memoized locally,
    not on the relation, so timing the two engines side by side stays
    honest.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError("min_confidence must be in (0, 1]")
    start = time.perf_counter()
    pool = _discovery_pool(relation, attributes)
    result = DiscoveryResult()

    columns = {name: relation.column(name).codes for name in pool}
    memo: dict[frozenset[str], int] = {}

    def distinct(attrs: tuple[str, ...]) -> int:
        key = frozenset(attrs)
        cached = memo.get(key)
        if cached is None:
            cached = len(set(zip(*(columns[name] for name in attrs))))
            memo[key] = cached
        return cached

    n = relation.num_rows
    minimal_lhs: dict[str, list[frozenset[str]]] = {a: [] for a in pool}
    keys: list[frozenset[str]] = []

    for level in range(1, max_lhs_size + 1):
        result.levels_explored = level
        for lhs in itertools.combinations(pool, level):
            lhs_set = frozenset(lhs)
            if any(key <= lhs_set for key in keys):
                continue
            lhs_count = distinct(lhs)
            if lhs_count == n:
                keys.append(lhs_set)
            for rhs in pool:
                if rhs in lhs_set:
                    continue
                if any(known <= lhs_set for known in minimal_lhs[rhs]):
                    continue
                result.candidates_tested += 1
                xy_count = distinct(tuple(sorted(lhs_set | {rhs})))
                confidence = lhs_count / xy_count if xy_count else 1.0
                if confidence >= min_confidence:
                    fd = FunctionalDependency(lhs, (rhs,))
                    result.fds.append(DiscoveredFD(fd, confidence))
                    minimal_lhs[rhs].append(lhs_set)
    result.elapsed_seconds = time.perf_counter() - start
    return result
