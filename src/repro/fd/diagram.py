"""ASCII clustering diagrams — the paper's Figure 2, as a library feature.

The figure that carries the paper's intuition shows, side by side, the
clusterings ``C_X`` and ``C_Y`` of an FD with the tuples listed inside
each cluster.  The designer-facing tool benefits from the same view, so
:func:`render_fd_diagram` draws it for any FD on any relation::

    C_{District, Region}              C_{AreaCode}
    ------------------------------    ---------------------
    [t1 t2 t3 t4 t5]                  [t1 t2 t3]
      District=Brookside                AreaCode=613
      Region=Granville                [t4 t5]
    ...                                 AreaCode=515

plus a verdict line: whether the relation between the clusterings is a
function (FD satisfied), and whether it is bijective (the preferred
``{c=1, g=0}`` case).  Tuples are labelled ``t1..tn`` in row order, as
in the paper.
"""

from __future__ import annotations

from repro.fd.clustering import induced_mapping, x_clustering
from repro.fd.fd import FunctionalDependency
from repro.fd.measures import assess
from repro.relational.relation import Relation

__all__ = ["render_clustering", "render_fd_diagram", "explain_repair"]

_MAX_CLASS_TUPLES = 12


def _tuple_label(row: int) -> str:
    return f"t{row + 1}"


def render_clustering(
    relation: Relation,
    attrs: list[str],
    max_classes: int = 12,
    show_values: bool = True,
) -> str:
    """Render one X-clustering as an indented cluster list."""
    partition = x_clustering(relation, attrs)
    lines = [f"C_{{{', '.join(attrs)}}}: {partition.num_classes} cluster(s)"]
    for class_id, rows in enumerate(partition.classes[:max_classes]):
        shown = " ".join(_tuple_label(r) for r in rows[:_MAX_CLASS_TUPLES])
        extra = "" if len(rows) <= _MAX_CLASS_TUPLES else f" …(+{len(rows) - _MAX_CLASS_TUPLES})"
        lines.append(f"  [{shown}{extra}]")
        if show_values:
            sample = rows[0]
            for attr in attrs:
                lines.append(f"    {attr}={relation.column(attr).value(sample)!r}")
    hidden = partition.num_classes - max_classes
    if hidden > 0:
        lines.append(f"  … {hidden} more cluster(s)")
    return "\n".join(lines)


def render_fd_diagram(
    relation: Relation,
    fd: FunctionalDependency,
    max_classes: int = 12,
) -> str:
    """The Figure 2 view: C_X, C_Y, and the function verdict."""
    assessment = assess(relation, fd)
    cx = x_clustering(relation, fd.antecedent)
    cy = x_clustering(relation, fd.consequent)
    mapping = induced_mapping(cx, cy)
    parts = [
        f"FD {fd}",
        f"confidence={assessment.confidence:.4g}  goodness={assessment.goodness}",
        "",
        render_clustering(relation, list(fd.antecedent), max_classes),
        "",
        render_clustering(relation, list(fd.consequent), max_classes),
        "",
    ]
    if mapping is None:
        parts.append(
            "verdict: NOT a function — some antecedent cluster spans several "
            "consequent clusters (FD violated)"
        )
    elif cx.num_classes == cy.num_classes:
        parts.append(
            "verdict: a BIJECTIVE (well-defined) function between the "
            "clusterings — the paper's preferred case {c=1, g=0}"
        )
    else:
        parts.append(
            "verdict: a function, but not injective — "
            f"{cx.num_classes} antecedent cluster(s) onto {cy.num_classes}"
        )
    return "\n".join(parts)


def explain_repair(
    relation: Relation,
    base: FunctionalDependency,
    repaired: FunctionalDependency,
    max_classes: int = 8,
) -> str:
    """A designer-facing before/after explanation of one repair.

    Shows the violated FD's diagram, the repaired FD's diagram, and the
    delta in the Definition 3 measures — the narrative of the paper's
    Figure 2(a)→(b) transition, generated for arbitrary repairs.
    """
    before = assess(relation, base)
    after = assess(relation, repaired)
    added = repaired.added_over(base)
    lines = [
        "=" * 60,
        f"REPAIR: {base}  →  {repaired}",
        f"added attributes: {', '.join(added) if added else '(none)'}",
        f"confidence: {before.confidence:.4g} → {after.confidence:.4g}",
        f"goodness:   {before.goodness} → {after.goodness}",
        "=" * 60,
        "",
        "--- before ---",
        render_fd_diagram(relation, base, max_classes),
        "",
        "--- after ---",
        render_fd_diagram(relation, repaired, max_classes),
    ]
    return "\n".join(lines)
