"""Functional dependencies: syntax (paper Definition 1) and manipulation.

An FD ``F : X → Y`` is an immutable pair of attribute-name tuples.  The
paper assumes, "without loss of generality", that FDs are decomposed so
the consequent holds a single attribute (Section 1); :meth:`decompose`
performs that normalization and the repair layer requires it.

The textual format accepted by :meth:`FunctionalDependency.parse`
mirrors the paper's notation::

    [District, Region] -> [AreaCode]
    Zip -> City, State          # brackets optional
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence

from repro.relational.errors import ReproError

__all__ = ["FunctionalDependency", "FDSyntaxError", "fd"]

_ARROW = re.compile(r"->|→")


class FDSyntaxError(ReproError, ValueError):
    """Raised when an FD string cannot be parsed."""


class FunctionalDependency:
    """An FD ``X → Y`` over attribute names.

    Both sides keep their declaration order (rankings and printouts stay
    deterministic) but equality and hashing are set-based per side, so
    ``[A, B] → C`` equals ``[B, A] → C``.
    """

    __slots__ = ("_antecedent", "_consequent", "_ante_set", "_cons_set")

    def __init__(
        self,
        antecedent: Sequence[str] | str,
        consequent: Sequence[str] | str,
    ) -> None:
        ante = _normalize_side(antecedent, "antecedent")
        cons = _normalize_side(consequent, "consequent")
        overlap = set(ante) & set(cons)
        if overlap:
            raise FDSyntaxError(
                f"attributes {sorted(overlap)} appear on both sides of the FD"
            )
        self._antecedent = ante
        self._consequent = cons
        self._ante_set = frozenset(ante)
        self._cons_set = frozenset(cons)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FunctionalDependency":
        """Parse ``"[A, B] -> [C]"`` (brackets and spacing optional)."""
        parts = _ARROW.split(text)
        if len(parts) != 2:
            raise FDSyntaxError(f"expected exactly one '->' in {text!r}")
        return cls(_parse_side(parts[0]), _parse_side(parts[1]))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def antecedent(self) -> tuple[str, ...]:
        """The left-hand side ``X``, in declaration order."""
        return self._antecedent

    @property
    def consequent(self) -> tuple[str, ...]:
        """The right-hand side ``Y``, in declaration order."""
        return self._consequent

    @property
    def attributes(self) -> tuple[str, ...]:
        """``XY``: all attributes of the FD, antecedent first."""
        return self._antecedent + self._consequent

    @property
    def attribute_set(self) -> frozenset[str]:
        """``XY`` as a set (used by the conflict score |F ∩ F′|)."""
        return self._ante_set | self._cons_set

    @property
    def size(self) -> int:
        """``|F| = |XY|``: number of attributes in the FD."""
        return len(self._ante_set | self._cons_set)

    @property
    def is_single_consequent(self) -> bool:
        """Whether the consequent holds exactly one attribute."""
        return len(self._consequent) == 1

    def overlap(self, other: "FunctionalDependency") -> int:
        """``|F ∩ F′|``: attributes shared with ``other``."""
        return len(self.attribute_set & other.attribute_set)

    def is_trivial(self) -> bool:
        """Whether ``Y ⊆ X`` would hold; by construction only via emptiness."""
        return not self._consequent

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def decompose(self) -> list["FunctionalDependency"]:
        """Split ``X → A1…Ak`` into ``k`` single-consequent FDs.

        The paper's repair method assumes this normalization; the order
        of the resulting FDs follows the consequent's declaration order.
        """
        return [
            FunctionalDependency(self._antecedent, (attr,))
            for attr in self._consequent
        ]

    def extended(self, *attrs: str) -> "FunctionalDependency":
        """``F^U``: the FD with ``attrs`` appended to the antecedent.

        This is the paper's repair move — adding attributes to the
        antecedent (deleting from it can never repair an FD, Section 1).
        """
        additions = [a for a in attrs if a not in self._ante_set]
        clash = [a for a in attrs if a in self._cons_set]
        if clash:
            raise FDSyntaxError(
                f"cannot add consequent attributes {clash} to the antecedent"
            )
        return FunctionalDependency(self._antecedent + tuple(additions), self._consequent)

    def added_over(self, base: "FunctionalDependency") -> tuple[str, ...]:
        """The antecedent attributes this FD has beyond ``base``'s."""
        return tuple(a for a in self._antecedent if a not in base._ante_set)

    # ------------------------------------------------------------------
    # Equality, hashing, rendering
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionalDependency):
            return NotImplemented
        return (
            self._ante_set == other._ante_set and self._cons_set == other._cons_set
        )

    def __hash__(self) -> int:
        return hash((self._ante_set, self._cons_set))

    def __repr__(self) -> str:
        return f"FunctionalDependency({str(self)!r})"

    def __str__(self) -> str:
        left = ", ".join(self._antecedent)
        right = ", ".join(self._consequent)
        return f"[{left}] -> [{right}]"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-friendly dict."""
        return {
            "antecedent": list(self._antecedent),
            "consequent": list(self._consequent),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionalDependency":
        """Inverse of :meth:`to_dict`."""
        return cls(tuple(data["antecedent"]), tuple(data["consequent"]))


def fd(text: str) -> FunctionalDependency:
    """Shorthand: ``fd("[A, B] -> [C]")``."""
    return FunctionalDependency.parse(text)


def _parse_side(text: str) -> tuple[str, ...]:
    cleaned = text.strip()
    if cleaned.startswith("[") and cleaned.endswith("]"):
        cleaned = cleaned[1:-1]
    names = tuple(part.strip() for part in cleaned.split(",") if part.strip())
    return names


def _normalize_side(side: Sequence[str] | str, label: str) -> tuple[str, ...]:
    if isinstance(side, str):
        names: Iterable[str] = (side,)
    else:
        names = side
    result: list[str] = []
    seen: set[str] = set()
    for name in names:
        if not isinstance(name, str) or not name.strip():
            raise FDSyntaxError(f"invalid attribute name {name!r} in {label}")
        cleaned = name.strip()
        if cleaned not in seen:
            seen.add(cleaned)
            result.append(cleaned)
    if not result:
        raise FDSyntaxError(f"the {label} of an FD cannot be empty")
    return tuple(result)
