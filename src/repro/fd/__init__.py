"""FD model (system S3 in DESIGN.md): syntax, measures, clusterings, ordering.

This package makes the paper's Definitions 1–6 executable:

* :class:`FunctionalDependency` — syntax, decomposition, extension;
* :func:`assess` / :func:`confidence` / :func:`goodness` — Definition 3;
* :mod:`repro.fd.clustering` — the clustering view (Definitions 5–6);
* :func:`order_fds` — the repair ordering of Section 4.1.
"""

from .clustering import (
    induced_mapping,
    is_complete,
    is_function,
    is_homogeneous,
    is_well_defined_function,
    proper_association,
    x_clustering,
)
from .cfd import (
    ConditionRefinement,
    ConditionalFD,
    cfd_assess,
    cfd_is_satisfied,
    matching_rows,
    refine_condition,
    repair_cfd_antecedent,
)
from .diagram import explain_repair, render_clustering, render_fd_diagram
from .fd import FDSyntaxError, FunctionalDependency, fd
from .measures import (
    FDAssessment,
    assess,
    check_fd_attributes,
    confidence,
    goodness,
    inconsistency_degree,
    is_exact,
    is_satisfied,
    violating_pairs,
)
from .ordering import RankedFD, conflict_score, order_fds, repair_rank

__all__ = [
    "ConditionRefinement",
    "ConditionalFD",
    "cfd_assess",
    "cfd_is_satisfied",
    "matching_rows",
    "refine_condition",
    "repair_cfd_antecedent",
    "FDAssessment",
    "FDSyntaxError",
    "FunctionalDependency",
    "RankedFD",
    "assess",
    "check_fd_attributes",
    "confidence",
    "conflict_score",
    "fd",
    "goodness",
    "inconsistency_degree",
    "induced_mapping",
    "is_complete",
    "is_exact",
    "is_function",
    "is_homogeneous",
    "is_satisfied",
    "is_well_defined_function",
    "order_fds",
    "proper_association",
    "repair_rank",
    "explain_repair",
    "render_clustering",
    "render_fd_diagram",
    "violating_pairs",
    "x_clustering",
]
