"""Repair ordering of violated FDs (paper Section 4.1).

When several FDs are violated, the method repairs them in descending
order of the rank::

    O_F = (ic_{F,r} + cf_F) / 2

where ``ic`` is the degree of inconsistency (``1 − confidence``) and
``cf`` is the instance-independent *conflict score*::

    cf_F = ( Σ_{F′ ∈ 𝔽} |F ∩ F′| / max(|F|, |F′|) ) / |𝔽|

**Interpretation note** (also recorded in DESIGN.md §3): the paper's
formula sums over all ``F′ ∈ 𝔽``; its worked example (F1 → 0.25,
F2 → 0.167, F3 → 0.056 on `Places`) is only consistent with a conflict
score of zero for all three FDs, even though F2 and F3 share ``Zip``.
We implement the formula as written.  ``include_self`` controls whether
``F`` itself participates in the sum; including it adds the constant
``1/|𝔽|`` to every score and never changes the order, so the default is
``False``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.relational.relation import Relation

from .fd import FunctionalDependency
from .measures import assess

__all__ = ["conflict_score", "repair_rank", "order_fds", "RankedFD"]


def conflict_score(
    fd: FunctionalDependency,
    all_fds: Sequence[FunctionalDependency],
    include_self: bool = False,
) -> float:
    """``cf_F``: normalized attribute overlap with the other declared FDs.

    ``all_fds`` is the full set 𝔽 (it may or may not contain ``fd``
    itself; the denominator is always ``|𝔽|`` as in the paper).
    """
    if not all_fds:
        return 0.0
    total = 0.0
    for other in all_fds:
        if not include_self and other == fd:
            continue
        total += fd.overlap(other) / max(fd.size, other.size)
    return total / len(all_fds)


def repair_rank(
    relation: Relation,
    fd: FunctionalDependency,
    all_fds: Sequence[FunctionalDependency],
    include_self: bool = False,
) -> float:
    """``O_F = (ic + cf) / 2``: the priority of ``fd`` in the repair queue."""
    ic = assess(relation, fd).inconsistency
    cf = conflict_score(fd, all_fds, include_self=include_self)
    return (ic + cf) / 2.0


@dataclass(frozen=True)
class RankedFD:
    """An FD with its ordering components, as reported to the designer."""

    fd: FunctionalDependency
    inconsistency: float
    conflict: float

    @property
    def rank(self) -> float:
        """``O_F = (ic + cf) / 2``."""
        return (self.inconsistency + self.conflict) / 2.0

    def __str__(self) -> str:
        return f"{self.fd} (O={self.rank:.3f}, ic={self.inconsistency:.3f}, cf={self.conflict:.3f})"


def order_fds(
    relation: Relation,
    fds: Sequence[FunctionalDependency],
    include_self: bool = False,
) -> list[RankedFD]:
    """Order 𝔽 for repair: rank descending (paper's ``OrderFDs``).

    Ties break on the FD's string form so the order is deterministic.
    """
    ranked = [
        RankedFD(
            fd=fd,
            inconsistency=assess(relation, fd).inconsistency,
            conflict=conflict_score(fd, fds, include_self=include_self),
        )
        for fd in fds
    ]
    ranked.sort(key=lambda item: (-item.rank, str(item.fd)))
    return ranked
