"""Confidence, goodness and satisfaction of FDs (paper Definitions 2–4).

For ``F : X → Y`` on instance ``r``::

    confidence   c_{F,r} = |π_X(r)| / |π_XY(r)|        (c = 1  ⇔  exact FD)
    goodness     g_{F,r} = |π_X(r)| − |π_Y(r)|
    inconsistency  ic_{F,r} = 1 − c_{F,r}              (Section 4.1)

Confidence measures the "degree of being a function" from the
X-clustering to the Y-clustering; when it is 1, goodness measures how
far that function is from being injective (0 ⇔ bijective, Section 3).

Per the paper's footnote 1, attributes involved in FDs must not contain
NULLs; every measure here raises :class:`NullValueError` otherwise
(pass ``allow_nulls=True`` to opt out, in which case NULL is treated as
a regular value as in GROUP BY).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational import kernels
from repro.relational.errors import NullValueError
from repro.relational.relation import Relation

from .fd import FunctionalDependency

__all__ = [
    "FDAssessment",
    "assess",
    "confidence",
    "goodness",
    "inconsistency_degree",
    "is_satisfied",
    "is_exact",
    "violating_pairs",
    "count_violating_pairs",
    "check_fd_attributes",
]


@dataclass(frozen=True)
class FDAssessment:
    """All instance-level measures of one FD, computed together.

    Computing them together reuses the underlying distinct counts
    (``|π_X|`` appears in both confidence and goodness).
    """

    fd: FunctionalDependency
    distinct_x: int
    distinct_xy: int
    distinct_y: int

    @property
    def confidence(self) -> float:
        """``|π_X| / |π_XY|``; an empty relation vacuously satisfies F."""
        if self.distinct_xy == 0:
            return 1.0
        return self.distinct_x / self.distinct_xy

    @property
    def goodness(self) -> int:
        """``|π_X| − |π_Y|``; positive ⇔ domain larger than codomain."""
        return self.distinct_x - self.distinct_y

    @property
    def inconsistency(self) -> float:
        """``ic = 1 − confidence`` (degree of inconsistency, Section 4.1)."""
        return 1.0 - self.confidence

    @property
    def is_exact(self) -> bool:
        """Whether the FD is exact (confidence 1, Definition 4)."""
        return self.distinct_x == self.distinct_xy

    @property
    def is_bijective(self) -> bool:
        """The best case ``{c = 1, g = 0}``: a bijection between clusterings."""
        return self.is_exact and self.goodness == 0

    def __str__(self) -> str:
        return (
            f"{self.fd}: confidence={self.confidence:.4g}, goodness={self.goodness}"
        )


def check_fd_attributes(
    relation: Relation, fd: FunctionalDependency, context: str = ""
) -> None:
    """Raise :class:`NullValueError` if any FD attribute contains NULLs."""
    for attr in fd.attributes:
        if relation.column(attr).has_nulls:
            raise NullValueError(attr, context or f"in FD {fd}")


def assess(
    relation: Relation, fd: FunctionalDependency, allow_nulls: bool = False
) -> FDAssessment:
    """Compute confidence and goodness of ``fd`` on ``relation`` at once."""
    if not allow_nulls:
        check_fd_attributes(relation, fd)
    x = list(fd.antecedent)
    y = list(fd.consequent)
    return FDAssessment(
        fd=fd,
        distinct_x=relation.count_distinct(x),
        distinct_xy=relation.count_distinct(x + y),
        distinct_y=relation.count_distinct(y),
    )


def confidence(
    relation: Relation, fd: FunctionalDependency, allow_nulls: bool = False
) -> float:
    """``c_{F,r}`` alone."""
    return assess(relation, fd, allow_nulls).confidence


def goodness(
    relation: Relation, fd: FunctionalDependency, allow_nulls: bool = False
) -> int:
    """``g_{F,r}`` alone."""
    return assess(relation, fd, allow_nulls).goodness


def inconsistency_degree(
    relation: Relation, fd: FunctionalDependency, allow_nulls: bool = False
) -> float:
    """``ic_{F,r} = 1 − c_{F,r}``."""
    return assess(relation, fd, allow_nulls).inconsistency


def is_exact(
    relation: Relation, fd: FunctionalDependency, allow_nulls: bool = False
) -> bool:
    """Whether ``fd`` is exact on ``relation`` (confidence 1)."""
    return assess(relation, fd, allow_nulls).is_exact


def is_satisfied(
    relation: Relation, fd: FunctionalDependency, allow_nulls: bool = False
) -> bool:
    """Definition 2 satisfaction; equivalent to :func:`is_exact`.

    The equivalence (exactness ⇔ pairwise satisfaction) is one of the
    paper's observations; the test suite verifies it property-based
    against :func:`violating_pairs`.
    """
    return is_exact(relation, fd, allow_nulls)


def count_violating_pairs(
    relation: Relation, fd: FunctionalDependency, allow_nulls: bool = False
) -> int:
    """The exact number of unordered row pairs violating Definition 2.

    Unlike :func:`violating_pairs` (a witness *sampler*: every
    violating tuple appears in some pair, but not every violating pair
    is listed), this is the full count — within an X-class of size
    ``s`` whose Y-groups have sizes ``g_i``, exactly
    ``C(s,2) − Σ C(g_i,2)`` pairs violate.  It runs through the active
    kernel backend, so with NumPy installed the count is two sort
    reductions with no per-row Python work.
    """
    if not allow_nulls:
        check_fd_attributes(relation, fd)
    x_attrs = list(fd.antecedent)
    stats = relation.stats
    x_pairs = stats.tracked_agreeing_pairs(x_attrs)
    if x_pairs is not None:
        xy_pairs = stats.tracked_agreeing_pairs(x_attrs + list(fd.consequent))
        if xy_pairs is not None:
            # Delta engine: both sums are maintained scalars, so the
            # count is a subtraction — no partition is touched.
            return x_pairs - xy_pairs
    x_partition = relation.stripped_partition(x_attrs)
    y_columns = [relation.column(a).kernel_codes() for a in fd.consequent]
    return kernels.get_backend().count_violating_pairs(x_partition, y_columns)


def violating_pairs(
    relation: Relation, fd: FunctionalDependency, limit: int | None = None
) -> list[tuple[int, int]]:
    """Row-index pairs ``(t1, t2)`` witnessing a Definition-2 violation.

    Pairs agree on ``X`` but differ on ``Y``.  This is the O(n²)-free
    implementation: group rows by X via the cached stripped partition
    (singleton X-classes cannot violate, so they are never touched),
    and inside each class compare Y codes.  ``limit`` truncates the
    output (the designer UI only needs a few witnesses).
    """
    x_partition = relation.stripped_partition(list(fd.antecedent))
    y_columns = [relation.column(a).codes for a in fd.consequent]
    pairs: list[tuple[int, int]] = []
    for cls_rows in x_partition:
        first_by_y: dict[tuple[int, ...], int] = {}
        for row in cls_rows:
            key = tuple(codes[row] for codes in y_columns)
            first_by_y.setdefault(key, row)
        if len(first_by_y) < 2:
            continue
        # Pair every row with the representative of each *other*
        # Y-group, so each violating tuple shows up in some witness.
        seen: set[tuple[int, int]] = set()
        for row in cls_rows:
            key = tuple(codes[row] for codes in y_columns)
            for other_key, other_row in first_by_y.items():
                if other_key == key:
                    continue
                pair = (other_row, row) if other_row < row else (row, other_row)
                if pair in seen:
                    continue
                seen.add(pair)
                pairs.append(pair)
                if limit is not None and len(pairs) >= limit:
                    return pairs
    return pairs
