"""Conditional functional dependencies (the paper's §7 extension path).

The conclusion announces the intent "to extend the method to other
kinds of constraints"; CFDs (Fan et al., discussed in the paper's §2)
are the nearest neighbour: an FD that must hold only on the subset of
tuples matching a *pattern* of constant conditions.

A :class:`ConditionalFD` couples an embedded
:class:`~repro.fd.fd.FunctionalDependency` with a pattern
``{attribute: constant}``.  Semantics: the embedded FD must be
satisfied by ``σ_pattern(r)``.  All of the paper's machinery then
lifts directly, because confidence/goodness are instance measures and a
pattern just selects the instance:

* :func:`cfd_assess` — confidence and goodness on the matching subset;
* :func:`repair_cfd_antecedent` — the paper's repair move (extend the
  antecedent) executed against the selected instance;
* :func:`refine_condition` — the CFD-specific repair move the paper's
  framework suggests but cannot express for plain FDs: instead of
  adding antecedent attributes, *narrow the pattern* until the
  embedded FD holds, reporting the largest consistent refinements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.relational.relation import Relation

from .fd import FDSyntaxError, FunctionalDependency
from .measures import FDAssessment, assess

__all__ = [
    "ConditionalFD",
    "ConditionRefinement",
    "cfd_assess",
    "cfd_is_satisfied",
    "matching_rows",
    "repair_cfd_antecedent",
    "refine_condition",
]


@dataclass(frozen=True)
class ConditionalFD:
    """A CFD: an embedded FD plus a pattern of constant conditions.

    An empty pattern makes the CFD equivalent to its embedded FD.
    Pattern attributes may not appear in the FD itself (variable
    pattern entries of full CFD tableaux are exactly the FD's own
    attributes, so only constants are carried here).
    """

    fd: FunctionalDependency
    pattern: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        names = [name for name, _ in self.pattern]
        if len(set(names)) != len(names):
            raise FDSyntaxError("pattern repeats an attribute")
        clash = set(names) & set(self.fd.attributes)
        if clash:
            raise FDSyntaxError(
                f"pattern attributes {sorted(clash)} appear in the embedded FD"
            )

    @classmethod
    def build(
        cls, fd: FunctionalDependency, pattern: dict[str, Any] | None = None
    ) -> "ConditionalFD":
        """Construct from a plain dict pattern (ordering normalized)."""
        items = tuple(sorted((pattern or {}).items(), key=lambda kv: kv[0]))
        return cls(fd, items)

    @property
    def pattern_dict(self) -> dict[str, Any]:
        """The pattern as a dict."""
        return dict(self.pattern)

    def with_condition(self, attribute: str, value: Any) -> "ConditionalFD":
        """A refinement of this CFD with one more constant condition."""
        merged = self.pattern_dict
        merged[attribute] = value
        return ConditionalFD.build(self.fd, merged)

    def extended(self, *attrs: str) -> "ConditionalFD":
        """The antecedent-extension repair move, lifted to CFDs."""
        overlap = set(attrs) & set(self.pattern_dict)
        if overlap:
            raise FDSyntaxError(
                f"attributes {sorted(overlap)} are fixed by the pattern"
            )
        return ConditionalFD(self.fd.extended(*attrs), self.pattern)

    def __str__(self) -> str:
        if not self.pattern:
            return str(self.fd)
        conditions = ", ".join(f"{name}={value!r}" for name, value in self.pattern)
        return f"{self.fd} when ({conditions})"


def matching_rows(relation: Relation, cfd: ConditionalFD) -> list[int]:
    """Row indices matched by the CFD's pattern (all rows if empty)."""
    if not cfd.pattern:
        return list(range(relation.num_rows))
    tests: list[tuple[list[int], int]] = []
    for name, value in cfd.pattern:
        column = relation.column(name)
        code = column.code_for(value)
        if code is None:
            return []
        tests.append((column.codes, code))
    return [
        row
        for row in range(relation.num_rows)
        if all(codes[row] == code for codes, code in tests)
    ]


def cfd_assess(relation: Relation, cfd: ConditionalFD) -> FDAssessment:
    """Confidence/goodness of the embedded FD on the matching subset."""
    rows = matching_rows(relation, cfd)
    subset = relation.take(rows)
    return assess(subset, cfd.fd)


def cfd_is_satisfied(relation: Relation, cfd: ConditionalFD) -> bool:
    """Whether the CFD holds (embedded FD exact on the selection)."""
    return cfd_assess(relation, cfd).is_exact


def repair_cfd_antecedent(
    relation: Relation,
    cfd: ConditionalFD,
    config=None,
):
    """Run the CB repair search on the CFD's selected instance.

    Returns the plain :class:`~repro.core.repair.RepairSearchResult`
    over the subset; wrap the repaired FDs back into CFDs with the
    original pattern.  Columns that are constant on the subset (the
    pattern attributes, and anything else the selection fixed) are
    projected away first: a constant column can never split a class,
    so offering it as a repair candidate would only pad antecedents.
    """
    from repro.core.repair import find_repairs  # local: layering (core uses fd)

    subset = relation.take(matching_rows(relation, cfd))
    fd_attrs = set(cfd.fd.attributes)
    keep = [
        name
        for name in subset.attribute_names
        if name in fd_attrs or subset.column(name).cardinality > 1
    ]
    return find_repairs(subset.project(keep), cfd.fd, config)


@dataclass(frozen=True)
class ConditionRefinement:
    """One condition-refinement repair: a narrower CFD that holds."""

    cfd: ConditionalFD
    support: int  #: matching tuples of the refined pattern

    def __str__(self) -> str:
        return f"{self.cfd} [support={self.support}]"


def refine_condition(
    relation: Relation,
    cfd: ConditionalFD,
    min_support: int = 1,
) -> list[ConditionRefinement]:
    """CFD-specific repair: narrow the pattern until the FD holds.

    For every attribute outside the FD and the current pattern, and
    every value of it (within the current selection), test whether the
    embedded FD is exact on the narrowed selection.  Returns the
    refinements that hold, best-supported first — i.e. the largest
    consistent sub-populations.  This is the repair move available to
    CFDs but not to plain FDs: instead of claiming the rule needs more
    determinants, it claims the rule's *scope* shrank.
    """
    rows = matching_rows(relation, cfd)
    subset = relation.take(rows)
    refinements: list[ConditionRefinement] = []
    used = set(cfd.fd.attributes) | set(cfd.pattern_dict)
    for attr in relation.attribute_names:
        if attr in used:
            continue
        column = subset.column(attr)
        if column.has_nulls:
            continue
        for value in column.dictionary:
            narrowed = cfd.with_condition(attr, value)
            matched = matching_rows(relation, narrowed)
            if len(matched) < min_support:
                continue
            narrowed_subset = relation.take(matched)
            if assess(narrowed_subset, cfd.fd).is_exact:
                refinements.append(ConditionRefinement(narrowed, len(matched)))
    refinements.sort(key=lambda r: (-r.support, str(r.cfd)))
    return refinements
