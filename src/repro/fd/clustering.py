"""The clustering view of FDs (paper Definitions 5–6 and Section 3).

An FD ``F : X → Y`` induces two clusterings of the instance: ``C_X`` and
``C_Y``.  ``F`` is satisfied iff the relation between them is a
(necessarily surjective) function — equivalently, iff ``C_X`` is
*homogeneous* w.r.t. ``C_Y`` (every class of ``C_X`` properly associated
with a unique class of ``C_Y``).  When the function also is injective
(goodness 0), it is bijective — the paper's preferred "well-defined"
case.

These helpers make that view executable; the test suite uses them to
verify the counting view (confidence/goodness) against the clustering
view on random instances, and the EB baseline builds its entropies on
the same :class:`~repro.relational.partition.Partition` objects.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.relational.partition import Partition
from repro.relational.relation import Relation

from .fd import FunctionalDependency

__all__ = [
    "x_clustering",
    "is_homogeneous",
    "is_complete",
    "proper_association",
    "induced_mapping",
    "is_function",
    "is_well_defined_function",
]


def x_clustering(relation: Relation, attrs: Sequence[str]) -> Partition:
    """The X-clustering of Definition 5: rows grouped by ``attrs`` values."""
    return relation.partition(list(attrs))


def is_homogeneous(finer: Partition, coarser: Partition) -> bool:
    """Whether every class of ``finer`` is contained in one class of ``coarser``.

    This is homogeneity of ``finer`` w.r.t. ``coarser`` (Section 3): it
    holds iff each class has a *proper association* (Definition 6).
    """
    return finer.refines(coarser)


def is_complete(clustering: Partition, ground_truth: Partition) -> bool:
    """Completeness of ``clustering`` vs ``ground_truth`` (Section 5).

    Every ground-truth class must be contained in a single class of
    ``clustering`` — i.e. the ground truth refines it.
    """
    return ground_truth.refines(clustering)


def proper_association(
    cluster_rows: Sequence[int], clustering: Partition
) -> int | None:
    """Index of the unique class of ``clustering`` containing all rows.

    Returns ``None`` when the rows straddle several classes — i.e. there
    is no proper association (Definition 6).
    """
    index = clustering.class_index()
    first = index[cluster_rows[0]]
    for row in cluster_rows[1:]:
        if index[row] != first:
            return None
    return first


def induced_mapping(
    domain: Partition, codomain: Partition
) -> dict[int, int] | None:
    """The class-level function ``domain → codomain``, if it exists.

    Maps each class index of ``domain`` to the class index of
    ``codomain`` that properly contains it; ``None`` when some class has
    no proper association (the relation between the clusterings is not a
    function, so the FD is violated).
    """
    mapping: dict[int, int] = {}
    for class_id, cls_rows in enumerate(domain.classes):
        target = proper_association(cls_rows, codomain)
        if target is None:
            return None
        mapping[class_id] = target
    return mapping


def is_function(relation: Relation, fd: FunctionalDependency) -> bool:
    """Whether ``C_X → C_Y`` is a function — the clustering-view test of
    Definition 2 satisfaction."""
    cx = x_clustering(relation, fd.antecedent)
    cy = x_clustering(relation, fd.consequent)
    return induced_mapping(cx, cy) is not None


def is_well_defined_function(relation: Relation, fd: FunctionalDependency) -> bool:
    """Whether ``C_X → C_Y`` is a *bijective* function.

    The paper's preferred case ``{c = 1, g = 0}``: surjectivity is
    automatic (every Y-value occurs in some tuple), so a function with
    ``|C_X| = |C_Y|`` is bijective.
    """
    cx = x_clustering(relation, fd.antecedent)
    cy = x_clustering(relation, fd.consequent)
    if induced_mapping(cx, cy) is None:
        return False
    return cx.num_classes == cy.num_classes
