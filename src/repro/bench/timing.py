"""Timing utilities for the experiment harness.

The paper reports durations in a ``1h 59m 19s 884ms`` style (Table 5);
:func:`format_duration` reproduces that format so the regenerated
tables read like the originals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "format_duration"]


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper's tables do.

    >>> format_duration(0.005)
    '5ms'
    >>> format_duration(83.62)
    '1m 23s 620ms'
    >>> format_duration(7159.884)
    '1h 59m 19s 884ms'
    """
    if seconds < 0:
        raise ValueError("duration cannot be negative")
    millis = round(seconds * 1000)
    hours, millis = divmod(millis, 3_600_000)
    minutes, millis = divmod(millis, 60_000)
    secs, millis = divmod(millis, 1000)
    parts: list[str] = []
    if hours:
        parts.append(f"{hours}h")
    if minutes or hours:
        parts.append(f"{minutes}m")
    if secs or minutes or hours:
        parts.append(f"{secs}s")
    parts.append(f"{millis}ms")
    # Drop a trailing 0ms when there is a bigger unit, as the paper does
    # for round values ("4s 678ms" but "1s" stays "1s 0ms"-free).
    if len(parts) > 1 and parts[-1] == "0ms":
        parts.pop()
    return " ".join(parts)


@dataclass
class Timer:
    """A context manager measuring wall-clock time.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start

    @property
    def formatted(self) -> str:
        """The elapsed time in the paper's duration format."""
        return format_duration(self.elapsed)
