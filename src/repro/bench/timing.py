"""Timing utilities for the experiment harness.

The paper reports durations in a ``1h 59m 19s 884ms`` style (Table 5);
:func:`format_duration` reproduces that format so the regenerated
tables read like the originals.

:class:`BenchResults` is the machine-readable side: benches record one
entry per measured workload (name, size, seconds, backend, scale, rows,
plus any extra keys) and the suite writes them to
``BENCH_results.json`` so the perf trajectory across PRs can be diffed
and archived (CI uploads the file as a workflow artifact).  The output
path defaults to ``BENCH_results.json`` in the working directory and
can be moved with ``REPRO_BENCH_RESULTS``.

Writes are atomic, and :meth:`BenchResults.write` can *merge* into an
existing file: entries are keyed by ``(name, backend, scale, rows)``,
so a scale-factor-1 storage run recorded later updates its own rows
without clobbering the smoke-run entries already on disk (and vice
versa).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["BenchResults", "Timer", "bench_results_path", "format_duration"]

#: Environment variable overriding where BENCH_results.json is written.
RESULTS_ENV_VAR = "REPRO_BENCH_RESULTS"


def bench_results_path() -> Path:
    """Where the benchmark suite writes its machine-readable results."""
    return Path(os.environ.get(RESULTS_ENV_VAR, "BENCH_results.json"))


class BenchResults:
    """Collects per-benchmark measurements for ``BENCH_results.json``.

    One entry per measured workload; the canonical keys are ``name``
    (benchmark identifier), ``size`` (workload scale, e.g. rows),
    ``seconds`` (wall time), ``backend`` (kernel backend the run used),
    ``scale`` (dataset scale factor, e.g. TPC-H SF), and ``rows``
    (tuples processed) — extra keyword pairs (speedups, window counts,
    …) are kept verbatim.
    """

    def __init__(self) -> None:
        self.entries: list[dict[str, Any]] = []

    def record(
        self,
        name: str,
        seconds: float,
        size: int | None = None,
        backend: str | None = None,
        scale: float | str | None = None,
        rows: int | None = None,
        **extra: Any,
    ) -> dict[str, Any]:
        """Add one measurement; returns the stored entry."""
        entry: dict[str, Any] = {"name": name, "seconds": round(seconds, 6)}
        if size is not None:
            entry["size"] = size
        if backend is not None:
            entry["backend"] = backend
        if scale is not None:
            entry["scale"] = scale
        if rows is not None:
            entry["rows"] = rows
        entry.update(extra)
        self.entries.append(entry)
        return entry

    @staticmethod
    def _identity(entry: dict[str, Any]) -> tuple:
        """The merge key: one slot per (workload, backend, scale, rows)."""
        return tuple(
            entry.get(key) for key in ("name", "backend", "scale", "rows")
        )

    def write(
        self, path: str | Path | None = None, merge: bool = False
    ) -> Path | None:
        """Write the collected entries as JSON; no file when empty.

        The write is atomic (temp file + :func:`os.replace` in the
        target's directory): a benchmark run interrupted mid-write can
        leave a stale results file behind, never a truncated one.

        With ``merge=True``, entries already on disk survive unless this
        run re-measured the same identity ``(name, backend, scale,
        rows)`` — so a scale-factor run and a smoke run can share one
        results file without clobbering each other.  A corrupt or
        foreign existing file is treated as empty rather than fatal.
        """
        if not self.entries:
            return None
        target = Path(path) if path is not None else bench_results_path()
        entries = self.entries
        if merge and target.exists():
            try:
                existing = json.loads(target.read_text(encoding="utf-8"))
                previous = list(existing.get("results", []))
            except (OSError, ValueError, AttributeError):
                previous = []
            fresh = {self._identity(entry) for entry in entries}
            kept = [
                entry
                for entry in previous
                if isinstance(entry, dict) and self._identity(entry) not in fresh
            ]
            entries = kept + entries
        payload = {"results": entries}
        text = json.dumps(payload, indent=2, sort_keys=False) + "\n"
        scratch = target.with_name(f".{target.name}.tmp{os.getpid()}")
        scratch.write_text(text, encoding="utf-8")
        try:
            os.replace(scratch, target)
        except OSError:
            scratch.unlink(missing_ok=True)
            raise
        return target


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper's tables do.

    >>> format_duration(0.005)
    '5ms'
    >>> format_duration(83.62)
    '1m 23s 620ms'
    >>> format_duration(7159.884)
    '1h 59m 19s 884ms'
    """
    if seconds < 0:
        raise ValueError("duration cannot be negative")
    millis = round(seconds * 1000)
    hours, millis = divmod(millis, 3_600_000)
    minutes, millis = divmod(millis, 60_000)
    secs, millis = divmod(millis, 1000)
    parts: list[str] = []
    if hours:
        parts.append(f"{hours}h")
    if minutes or hours:
        parts.append(f"{minutes}m")
    if secs or minutes or hours:
        parts.append(f"{secs}s")
    parts.append(f"{millis}ms")
    # Drop a trailing 0ms when there is a bigger unit, as the paper does
    # for round values ("4s 678ms" but "1s" stays "1s 0ms"-free).
    if len(parts) > 1 and parts[-1] == "0ms":
        parts.pop()
    return " ".join(parts)


@dataclass
class Timer:
    """A context manager measuring wall-clock time.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start

    @property
    def formatted(self) -> str:
        """The elapsed time in the paper's duration format."""
        return format_duration(self.elapsed)
