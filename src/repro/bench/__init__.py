"""Benchmark harness (system S8 in DESIGN.md).

* :mod:`repro.bench.timing` — wall-clock timers and the paper's
  duration format;
* :mod:`repro.bench.tables` — ASCII rendering of regenerated tables;
* :mod:`repro.bench.experiments` — one runner per paper table/figure.
"""

from .tables import render_rows, render_table
from .timing import BenchResults, Timer, bench_results_path, format_duration

__all__ = [
    "BenchResults",
    "Timer",
    "bench_results_path",
    "format_duration",
    "render_rows",
    "render_table",
]
