"""Experiment: the §6.2 parameter study, made quantitative.

The paper closes its real-dataset section naming the parameters that
"influence our method" without measuring them:

  (i)   the number of distinct values of an attribute — "the more
        distinct values there are, the more time is needed";
  (ii)  the initial confidence of an FD — "the smaller the initial
        confidence, the greater the probability that a longer repair is
        needed";
  (iii) the average length of the repairs — "repairs that add many
        attributes ... require more computation time".

Each function below sweeps exactly one of these parameters on
engineered workloads (everything else held fixed) and reports the
driver the paper predicts.  The bench asserts the predicted monotone
trends.
"""

from __future__ import annotations

from repro.bench.timing import Timer
from repro.core.config import RepairConfig
from repro.core.repair import find_repairs
from repro.datagen.engineered import EngineeredSpec, engineered_relation
from repro.datagen.synthetic import random_relation
from repro.datagen.violations import with_target_confidence
from repro.fd.fd import FunctionalDependency
from repro.fd.measures import assess
from repro.relational.relation import Relation

__all__ = [
    "distinct_values_rows",
    "initial_confidence_rows",
    "repair_length_rows",
]


def distinct_values_rows(
    cardinalities: tuple[int, ...] = (4, 16, 64, 256, 1024),
    num_rows: int = 4_000,
    seed: int = 5,
) -> list[dict]:
    """Sweep (i): candidate-attribute cardinality vs one-pass ranking time.

    One relation per cardinality: a violated FD plus eight candidate
    columns of the given cardinality.  Reported time is a full one-step
    ExtendByOne pass (the per-level cost unit of the search).
    """
    from repro.core.candidates import extend_by_one

    rows = []
    repetitions = 5
    for cardinality in cardinalities:
        relation = random_relation(
            f"card{cardinality}",
            num_rows=num_rows,
            num_attrs=10,
            cardinality=[50, 20] + [cardinality] * 8,
            seed=seed,
        )
        fd = FunctionalDependency(("A0",), ("A1",))
        extend_by_one(relation, fd)  # warmup (hashes, allocator)
        relation.stats.clear()
        with Timer() as timer:
            for _ in range(repetitions):
                relation.stats.clear()  # defeat memoization: time raw counting
                extend_by_one(relation, fd)
        rows.append(
            {
                "cardinality": cardinality,
                "seconds": timer.elapsed / repetitions,
                "distinct_seen": relation.stats.cached_entries,
            }
        )
    return rows


def initial_confidence_rows(
    targets: tuple[float, ...] = (0.95, 0.8, 0.6, 0.4, 0.2),
    num_rows: int = 1_500,
    seed: int = 5,
) -> list[dict]:
    """Sweep (ii): initial confidence vs repair length and search size.

    Starts from an instance where ``X → Y`` is exact, then degrades it
    to each target confidence by noise injection and runs the find-first
    search.  Low confidence ⇒ more corrupted groups ⇒ repairs get longer
    or disappear, and the search explores more.
    """
    base = random_relation(
        "conf", num_rows=num_rows, num_attrs=6,
        cardinality=[80, 20, 12, 10, 14, 16], seed=seed,
    )
    columns = {name: base.column_values(name) for name in base.attribute_names}
    columns["Y"] = [f"y{v[1:]}" for v in columns["A0"]]
    relation = Relation.from_columns("conf", columns)
    fd = FunctionalDependency(("A0",), ("Y",))

    rows = []
    for target in targets:
        degraded = with_target_confidence(relation, fd, target, seed=seed)
        measured = assess(degraded, fd).confidence
        result = find_repairs(
            degraded, fd, RepairConfig.find_first(max_expansions=20_000)
        )
        rows.append(
            {
                "target": target,
                "confidence": round(measured, 3),
                "repair_len": result.minimal_size,
                "explored": result.explored,
                "enqueued": result.enqueued,
                "found": result.found,
            }
        )
    return rows


def repair_length_rows(
    lengths: tuple[int, ...] = (1, 2, 3),
    num_rows: int = 3_000,
    seed: int = 5,
) -> list[dict]:
    """Sweep (iii): engineered minimal repair length vs find-first time.

    One engineered relation per length; arity and cardinalities held
    constant (repair attributes swap roles with fillers).
    """
    rows = []
    for length in lengths:
        spec = EngineeredSpec(
            name=f"len{length}",
            num_rows=num_rows,
            x_name="X",
            y_name="Y",
            repair_names=tuple(f"R{i}" for i in range(length)),
            x_cardinality=12,
            y_cardinality=8,
            repair_cardinalities=tuple([6] * length),
            filler_cardinalities={f"F{i}": 6 for i in range(6 - length)},
            seed=seed,
        )
        relation = engineered_relation(spec)
        with Timer() as timer:
            result = find_repairs(relation, spec.fd, RepairConfig.find_first())
        rows.append(
            {
                "repair_len": length,
                "seconds": timer.elapsed,
                "explored": result.explored,
                "found_len": result.minimal_size,
            }
        )
    return rows
