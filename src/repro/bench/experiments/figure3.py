"""Experiment: Figure 3 — processing time vs attributes / tuples / size.

The paper plots, for the 1GB database, per-table repair time against
(a) the number of attributes, (b) the number of tuples and (c) the
overall table size (cells = arity × tuples).  We regenerate the same
three series from a Table 5-style run over one preset.

Shape claims (EXPERIMENTS.md): time correlates positively with all
three; the attribute effect is the strongest (the paper's §6.2 finding,
sharpened by Tables 7–8).
"""

from __future__ import annotations

from repro.datagen.tpch import TPCH_TABLE_NAMES, generate_table

from .table5 import DEFAULT_MAX_EXPANSIONS, table5_rows

__all__ = ["figure3_series"]


def figure3_series(
    preset: str = "large",
    seed: int = 42,
    tables: tuple[str, ...] = TPCH_TABLE_NAMES,
    max_expansions: int | None = DEFAULT_MAX_EXPANSIONS,
) -> dict[str, list[dict]]:
    """The three Figure 3 panels as point lists.

    Returns ``{"by_attributes": [...], "by_tuples": [...], "by_size":
    [...]}``; each point carries the table name, the x value, and the
    measured time in seconds.
    """
    timing_rows = table5_rows(
        presets=(preset,), seed=seed, tables=tables, max_expansions=max_expansions
    )
    shapes = {
        table: generate_table(table, preset, seed) for table in tables
    }
    by_attributes: list[dict] = []
    by_tuples: list[dict] = []
    by_size: list[dict] = []
    for row in timing_rows:
        table = row["table"]
        relation = shapes[table]
        seconds = row[f"time({preset})"]
        by_attributes.append(
            {"table": table, "attributes": relation.arity, "seconds": seconds}
        )
        by_tuples.append(
            {"table": table, "tuples": relation.num_rows, "seconds": seconds}
        )
        by_size.append(
            {
                "table": table,
                "cells": relation.arity * relation.num_rows,
                "seconds": seconds,
            }
        )
    by_attributes.sort(key=lambda p: p["attributes"])
    by_tuples.sort(key=lambda p: p["tuples"])
    by_size.sort(key=lambda p: p["cells"])
    return {
        "by_attributes": by_attributes,
        "by_tuples": by_tuples,
        "by_size": by_size,
    }
