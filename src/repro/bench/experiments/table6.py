"""Experiment: Table 6 — real databases overview and first-repair times.

One row per real dataset (Places exact; Country/Rental/Image/PageLinks
simulated; Veterans wide-profile — DESIGN.md §4), reporting arity,
cardinality, the declared FD (one attribute per side, as the paper
prescribes — for Places that is F4 : [District] → [PhNo], the FD the
paper says needed a 2-attribute repair), the time to find the *first*
repair, the number of distinct-count queries executed, and the repair
length found.

Cost-model note (EXPERIMENTS.md): the paper's prototype pays a MySQL
round-trip per COUNT(DISTINCT) query, so an 11-tuple table with a deep
search (Places, 257ms) out-costs a 239-tuple table with a shallow one
(Country, 32ms).  Our in-process engine pays per *row*, so that
particular inversion shows up in the executed-query counts rather than
in wall-clock time; all other Table 6 shape claims hold on wall-clock.
"""

from __future__ import annotations

from repro.bench.timing import Timer, format_duration
from repro.core.config import RepairConfig
from repro.core.repair import find_repairs
from repro.datagen.engineered import engineered_relation
from repro.datagen.places import F4, places_relation
from repro.datagen.realworld import (
    country_spec,
    image_spec,
    pagelinks_spec,
    rental_spec,
)
from repro.datagen.veterans import VETERANS_FD, veterans_relation

__all__ = ["table6_rows", "DEFAULT_SCALE", "VETERANS_TABLE6_ATTRS"]

#: Tuple-count multiplier for the simulated datasets (1.0 = paper-sized).
DEFAULT_SCALE = 0.1

#: Arity of the Veterans instance used in Table 6.  The original table
#: has 481 attributes (323 NULL-free); 150 keeps pure-Python generation
#: in seconds while remaining an order of magnitude wider than the rest.
VETERANS_TABLE6_ATTRS = 150


def table6_rows(scale: float = DEFAULT_SCALE, seed: int = 7) -> list[dict]:
    """Regenerate Table 6 (find-first mode, as the paper ran it)."""
    config = RepairConfig.find_first()
    workloads = [
        ("Places", places_relation(), F4),
    ]
    for spec_fn in (country_spec, rental_spec, image_spec, pagelinks_spec):
        spec = spec_fn(scale if spec_fn is not country_spec else 1.0, seed)
        workloads.append((spec.name, engineered_relation(spec), spec.fd))
    veterans = veterans_relation(
        num_attrs=VETERANS_TABLE6_ATTRS,
        num_rows=max(2_000, round(95_412 * scale)),
        seed=seed,
    )
    workloads.append(("Veterans", veterans, VETERANS_FD))

    rows = []
    for name, relation, fd in workloads:
        relation.stats.clear()
        with Timer() as timer:
            result = find_repairs(relation, fd, config)
        rows.append(
            {
                "table": name,
                "arity": relation.arity,
                "card": relation.num_rows,
                "fd": str(fd),
                "seconds": timer.elapsed,
                "pretty": format_duration(timer.elapsed),
                "count_queries": relation.stats.executed_count_queries,
                "repair_len": result.minimal_size,
            }
        )
    return rows
