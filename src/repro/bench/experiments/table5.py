"""Experiment: Table 4 (database overview) and Table 5 (FindFDRepairs times).

The paper generated 100MB/250MB/1GB TPC-H databases, declared one 1→1
FD per relation, and measured ``FindFDRepairs`` — **Algorithm 1**, i.e.
one ``ExtendByOne`` pass per FD, collecting every exact one-attribute
extension.  (That reading is what makes the paper's own numbers
coherent: the 1h59m ``lineitem`` row is ~14 candidates × 2
``COUNT(DISTINCT …)`` MySQL queries over 6M tuples, and the ms-scale
``nation``/``region`` rows are pure validation.)  ``one_step=False``
switches to the full Algorithm 3 queue search for comparison.

Our presets scale the row counts down (DESIGN.md §4) but keep the
ratios; ``full_size=True`` (or ``REPRO_TPCH_FULL=1``) uses the paper's
counts.

Shape claims the bench asserts (EXPERIMENTS.md):

* ``region``/``nation`` are the fastest rows, ``lineitem`` the slowest
  by orders of magnitude;
* per-table time grows monotonically with the database size.
"""

from __future__ import annotations

import os

from repro.bench.timing import Timer, format_duration
from repro.core.config import RepairConfig
from repro.core.repair import find_fd_repairs, find_repairs
from repro.datagen.tpch import (
    SCALE_PRESETS,
    TPCH_TABLE_NAMES,
    generate_table,
    tpch_fd,
)
from repro.fd.measures import assess

__all__ = ["DEFAULT_PRESETS", "table4_rows", "table5_rows", "presets_in_use"]

#: Scaled-down counterparts of the paper's three databases (1/10 of the
#: 100MB / 250MB / 1GB row counts, same ratios).
DEFAULT_PRESETS = ("small", "medium", "large")
_PAPER_PRESETS = ("paper-100mb", "paper-250mb", "paper-1gb")

#: Queue-pop budget when running the full Algorithm 3 search instead of
#: the paper's one-step Algorithm 1 (``one_step=False``).
DEFAULT_MAX_EXPANSIONS = 500


def presets_in_use(full_size: bool | None = None) -> tuple[str, ...]:
    """The presets to run: scaled by default, paper-sized on request."""
    if full_size is None:
        full_size = os.environ.get("REPRO_TPCH_FULL", "") == "1"
    return _PAPER_PRESETS if full_size else DEFAULT_PRESETS


def table4_rows(
    presets: tuple[str, ...] = DEFAULT_PRESETS, seed: int = 42
) -> list[dict]:
    """Regenerate Table 4: per-table arity and cardinality per database."""
    rows = []
    for table in TPCH_TABLE_NAMES:
        row: dict = {"table": table}
        for preset in presets:
            relation = generate_table(table, preset, seed)
            row["arity"] = relation.arity
            row[f"card({preset})"] = relation.num_rows
        rows.append(row)
    return rows


def table5_rows(
    presets: tuple[str, ...] = DEFAULT_PRESETS,
    seed: int = 42,
    tables: tuple[str, ...] = TPCH_TABLE_NAMES,
    one_step: bool = True,
    max_expansions: int | None = DEFAULT_MAX_EXPANSIONS,
) -> list[dict]:
    """Regenerate Table 5: FindFDRepairs time per table per database.

    Returns one row per table with a ``time(preset)`` (seconds) and a
    formatted ``pretty(preset)`` column per preset, plus the declared
    FD, its confidence, and whether the FD was violated at all.
    Timing excludes data generation, as the paper's does.
    """
    config = RepairConfig.find_all(
        max_expansions=None if one_step else max_expansions
    )
    rows = []
    for table in tables:
        fd = tpch_fd(table)
        row: dict = {"table": table, "fd": str(fd)}
        for preset in presets:
            relation = generate_table(table, preset, seed)
            if one_step:
                with Timer() as timer:
                    report = find_fd_repairs(relation, [fd], config, one_step_only=True)
                result = report.results[0]
            else:
                with Timer() as timer:
                    result = find_repairs(relation, fd, config)
            row[f"time({preset})"] = timer.elapsed
            row[f"pretty({preset})"] = format_duration(timer.elapsed)
            row["confidence"] = round(assess(relation, fd).confidence, 3)
            row["violated"] = result.was_violated
            row[f"repairs({preset})"] = len(result.all_repairs)
        rows.append(row)
    return rows
