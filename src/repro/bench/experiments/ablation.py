"""Ablation experiments beyond the paper's own tables.

Three studies, each tied to a design claim DESIGN.md calls out:

* :func:`cb_vs_eb_rows` — the comparison the paper could only do
  theoretically (§5): per violated FD, the CB one-step ranking cost
  (distinct-count queries) against the EB ranking cost (rows touched in
  cluster intersections), checking that both methods agree on which
  candidates yield exact FDs (Theorem 1's sound direction);
* :func:`backend_rows` — engine counting vs the SQL-text pipeline
  (the paper's "depends on the query plan" remark, §4.4);
* :func:`discovery_rows` — direct CB repair vs "discover then relax"
  (§2's argument against [16]): total work and whether discovery even
  surfaces an extension of the designer's FD.
"""

from __future__ import annotations

from repro.bench.timing import Timer
from repro.core.candidates import extend_by_one
from repro.core.config import RepairConfig
from repro.core.repair import find_repairs
from repro.datagen.places import places_fds, places_relation
from repro.datagen.realworld import country_spec, rental_spec
from repro.datagen.engineered import engineered_relation
from repro.discovery.tane import discover_fds
from repro.eb.repair import eb_extend_by_one
from repro.eb.entropy import EntropyCost
from repro.fd.measures import assess
from repro.sql.backend import SqlCountBackend

__all__ = ["cb_vs_eb_rows", "backend_rows", "discovery_rows", "ablation_workloads"]


def ablation_workloads(scale: float = 0.05, seed: int = 7) -> list[tuple]:
    """(name, relation, fd) triples shared by the ablation benches."""
    workloads = [("Places." + str(fd), places_relation(), fd) for fd in places_fds()]
    for spec_fn in (country_spec, rental_spec):
        spec = spec_fn(1.0 if spec_fn is country_spec else scale, seed)
        workloads.append(
            (f"{spec.name}.{spec.fd}", engineered_relation(spec), spec.fd)
        )
    return workloads


def cb_vs_eb_rows(scale: float = 0.05, seed: int = 7) -> list[dict]:
    """One-step candidate ranking: CB cost vs EB cost, same verdicts."""
    rows = []
    for name, relation, fd in ablation_workloads(scale, seed):
        relation.stats.clear()
        with Timer() as cb_timer:
            cb_candidates = extend_by_one(relation, fd)
        cb_queries = relation.stats.executed_count_queries
        cost = EntropyCost()
        with Timer() as eb_timer:
            eb_candidates = eb_extend_by_one(relation, fd, cost=cost)
        cb_exact = {c.added[-1] for c in cb_candidates if c.is_exact}
        eb_exact = {c.attribute for c in eb_candidates if c.is_exact}
        rows.append(
            {
                "workload": name,
                "cb_seconds": cb_timer.elapsed,
                "eb_seconds": eb_timer.elapsed,
                "cb_count_queries": cb_queries,
                "eb_rows_touched": cost.rows_touched,
                "eb_intersections": cost.intersections,
                "exact_sets_agree": cb_exact == eb_exact,
                "cb_top": cb_candidates[0].added[-1] if cb_candidates else None,
                "eb_top": eb_candidates[0].attribute if eb_candidates else None,
            }
        )
    return rows


def backend_rows(scale: float = 0.05, seed: int = 7) -> list[dict]:
    """FD assessment through the engine vs through SQL text."""
    rows = []
    for name, relation, fd in ablation_workloads(scale, seed):
        relation.stats.clear()
        with Timer() as engine_timer:
            engine = assess(relation, fd)
        backend = SqlCountBackend(relation)
        with Timer() as sql_timer:
            via_sql = backend.assess(fd)
        rows.append(
            {
                "workload": name,
                "engine_seconds": engine_timer.elapsed,
                "sql_seconds": sql_timer.elapsed,
                "agree": (
                    engine.confidence == via_sql.confidence
                    and engine.goodness == via_sql.goodness
                ),
                "sql_queries": backend.queries_executed,
            }
        )
    return rows


def discovery_rows(scale: float = 0.02, seed: int = 7) -> list[dict]:
    """Direct CB repair vs discover-then-relax (§2's comparison)."""
    rows = []
    for name, relation, fd in ablation_workloads(scale, seed):
        with Timer() as repair_timer:
            result = find_repairs(relation, fd, RepairConfig.find_first())
        with Timer() as discovery_timer:
            discovered = discover_fds(relation, max_lhs_size=2)
        extensions = discovered.extensions_of(fd)
        rows.append(
            {
                "workload": name,
                "repair_seconds": repair_timer.elapsed,
                "discovery_seconds": discovery_timer.elapsed,
                "repair_found": result.found,
                "discovered_fds": len(discovered.fds),
                "discovered_extensions": len(extensions),
                "candidates_tested": discovered.candidates_tested,
            }
        )
    return rows
