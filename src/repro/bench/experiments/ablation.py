"""Ablation experiments beyond the paper's own tables.

Three studies, each tied to a design claim DESIGN.md calls out:

* :func:`cb_vs_eb_rows` — the comparison the paper could only do
  theoretically (§5): per violated FD, the CB one-step ranking cost
  (distinct-count queries) against the EB ranking cost (rows touched in
  cluster intersections), checking that both methods agree on which
  candidates yield exact FDs (Theorem 1's sound direction);
* :func:`backend_rows` — engine counting vs the SQL-text pipeline
  (the paper's "depends on the query plan" remark, §4.4);
* :func:`discovery_rows` — direct CB repair vs "discover then relax"
  (§2's argument against [16]): total work and whether discovery even
  surfaces an extension of the designer's FD.
"""

from __future__ import annotations

import gc

from repro.bench.timing import Timer
from repro.core.candidates import extend_by_one
from repro.core.config import RepairConfig
from repro.core.repair import find_repairs
from repro.datagen.places import places_fds, places_relation
from repro.datagen.realworld import country_spec, rental_spec
from repro.datagen.engineered import engineered_relation
from repro.datagen.tpch import TPCH_TABLE_NAMES, generate_table
from repro.datagen.veterans import veterans_relation
from repro.discovery.tane import discover_fds, discover_fds_plain
from repro.eb.repair import eb_extend_by_one
from repro.eb.entropy import EntropyCost
from repro.fd.measures import assess
from repro.sql.backend import SqlCountBackend

__all__ = [
    "cb_vs_eb_rows",
    "backend_rows",
    "discovery_rows",
    "stripped_engine_rows",
    "ablation_workloads",
]


def ablation_workloads(scale: float = 0.05, seed: int = 7) -> list[tuple]:
    """(name, relation, fd) triples shared by the ablation benches."""
    workloads = [("Places." + str(fd), places_relation(), fd) for fd in places_fds()]
    for spec_fn in (country_spec, rental_spec):
        spec = spec_fn(1.0 if spec_fn is country_spec else scale, seed)
        workloads.append(
            (f"{spec.name}.{spec.fd}", engineered_relation(spec), spec.fd)
        )
    return workloads


def cb_vs_eb_rows(scale: float = 0.05, seed: int = 7) -> list[dict]:
    """One-step candidate ranking: CB cost vs EB cost, same verdicts."""
    rows = []
    for name, relation, fd in ablation_workloads(scale, seed):
        relation.stats.clear()
        with Timer() as cb_timer:
            cb_candidates = extend_by_one(relation, fd)
        cb_queries = relation.stats.executed_count_queries
        cost = EntropyCost()
        with Timer() as eb_timer:
            eb_candidates = eb_extend_by_one(relation, fd, cost=cost)
        cb_exact = {c.added[-1] for c in cb_candidates if c.is_exact}
        eb_exact = {c.attribute for c in eb_candidates if c.is_exact}
        rows.append(
            {
                "workload": name,
                "cb_seconds": cb_timer.elapsed,
                "eb_seconds": eb_timer.elapsed,
                "cb_count_queries": cb_queries,
                "eb_rows_touched": cost.rows_touched,
                "eb_intersections": cost.intersections,
                "exact_sets_agree": cb_exact == eb_exact,
                "cb_top": cb_candidates[0].added[-1] if cb_candidates else None,
                "eb_top": eb_candidates[0].attribute if eb_candidates else None,
            }
        )
    return rows


def backend_rows(scale: float = 0.05, seed: int = 7) -> list[dict]:
    """FD assessment through the engine vs through SQL text."""
    rows = []
    for name, relation, fd in ablation_workloads(scale, seed):
        relation.stats.clear()
        with Timer() as engine_timer:
            engine = assess(relation, fd)
        backend = SqlCountBackend(relation)
        with Timer() as sql_timer:
            via_sql = backend.assess(fd)
        rows.append(
            {
                "workload": name,
                "engine_seconds": engine_timer.elapsed,
                "sql_seconds": sql_timer.elapsed,
                "agree": (
                    engine.confidence == via_sql.confidence
                    and engine.goodness == via_sql.goodness
                ),
                "sql_queries": backend.queries_executed,
            }
        )
    return rows


def discovery_rows(scale: float = 0.02, seed: int = 7) -> list[dict]:
    """Direct CB repair vs discover-then-relax (§2's comparison)."""
    rows = []
    for name, relation, fd in ablation_workloads(scale, seed):
        with Timer() as repair_timer:
            result = find_repairs(relation, fd, RepairConfig.find_first())
        with Timer() as discovery_timer:
            discovered = discover_fds(relation, max_lhs_size=2)
        extensions = discovered.extensions_of(fd)
        rows.append(
            {
                "workload": name,
                "repair_seconds": repair_timer.elapsed,
                "discovery_seconds": discovery_timer.elapsed,
                "repair_found": result.found,
                "repair_explored": result.explored,
                "discovered_fds": len(discovered.fds),
                "discovered_extensions": len(extensions),
                "candidates_tested": discovered.candidates_tested,
            }
        )
    return rows


def stripped_engine_rows(preset: str = "small", seed: int = 42) -> list[dict]:
    """Stripped-partition discovery vs the plain distinct-count engine.

    The PR-1 partition-engine ablation: every TPC-H table at the
    default bench preset plus the Veterans case study at its module
    defaults (30 attributes × 10K rows), each discovered with both
    engines at the default lattice depth.  ``lineitem`` runs at
    ``max_lhs_size=2`` — it is the paper's own Table 5 heavyweight and
    its all-low-cardinality pool is the stripped engine's worst case
    (partitions never shrink), so it is the honest lower bound of the
    table rather than a showcase.
    """
    workloads: list[tuple[str, object, int]] = []
    for table in TPCH_TABLE_NAMES:
        max_lhs = 2 if table == "lineitem" else 3
        workloads.append(
            (f"tpch.{table}", generate_table(table, preset, seed), max_lhs)
        )
    workloads.append(("veterans", veterans_relation(), 3))

    rows = []
    for name, relation, max_lhs in workloads:
        relation.stats.clear()
        gc.collect()
        with Timer() as stripped_timer:
            stripped = discover_fds(relation, max_lhs_size=max_lhs)
        gc.collect()
        with Timer() as plain_timer:
            plain = discover_fds_plain(relation, max_lhs_size=max_lhs)
        identical = [(d.fd, d.confidence) for d in stripped.fds] == [
            (d.fd, d.confidence) for d in plain.fds
        ]
        rows.append(
            {
                "workload": name,
                "rows": relation.num_rows,
                "max_lhs": max_lhs,
                "stripped_seconds": stripped_timer.elapsed,
                "plain_seconds": plain_timer.elapsed,
                "speedup": plain_timer.elapsed / max(stripped_timer.elapsed, 1e-9),
                "identical": identical,
                "fds": len(stripped.fds),
            }
        )
    return rows
