"""Per-experiment runners: one module per paper table/figure + ablations.

See DESIGN.md §5 for the experiment index mapping each module to the
paper artifact it regenerates.
"""

from . import ablation, figure3, running_example, table5, table6, veterans_grid

__all__ = [
    "ablation",
    "figure3",
    "running_example",
    "table5",
    "table6",
    "veterans_grid",
]
