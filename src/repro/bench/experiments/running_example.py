"""Regenerates the running-example tables (paper Tables 1–3 and §3/§4 values).

These are exact-value reproductions (no timing): the golden numbers the
rest of the paper's narrative is built on.
"""

from __future__ import annotations

from repro.core.candidates import extend_by_one
from repro.datagen.places import F1, F2, F3, F4, places_fds, places_relation
from repro.fd.measures import assess
from repro.fd.ordering import order_fds

__all__ = [
    "section3_measures",
    "section41_ordering",
    "table1_rows",
    "table2_rows",
    "table3_rows",
]


def section3_measures() -> list[dict]:
    """Confidence/goodness of F1–F4 on Places (paper §3 and §4.3)."""
    relation = places_relation()
    rows = []
    for fd in (F1, F2, F3, F4):
        assessment = assess(relation, fd)
        rows.append(
            {
                "fd": str(fd),
                "confidence": round(assessment.confidence, 3),
                "goodness": assessment.goodness,
            }
        )
    return rows


def section41_ordering() -> list[dict]:
    """The repair order of F1–F3 (paper §4.1 worked example)."""
    relation = places_relation()
    return [
        {
            "fd": str(item.fd),
            "inconsistency": round(item.inconsistency, 3),
            "conflict": round(item.conflict, 3),
            "rank": round(item.rank, 3),
        }
        for item in order_fds(relation, places_fds())
    ]


def _candidate_rows(fd, base=None) -> list[dict]:
    relation = places_relation()
    return [
        {
            "attribute": candidate.added[-1],
            "confidence": round(candidate.confidence, 3),
            "goodness": candidate.goodness,
        }
        for candidate in extend_by_one(relation, fd, base=base)
    ]


def table1_rows() -> list[dict]:
    """Table 1: candidates to evolve F1 : [District, Region] → [AreaCode]."""
    return _candidate_rows(F1)


def table2_rows() -> list[dict]:
    """Table 2: candidates to evolve F4 : [District] → [PhNo]."""
    return _candidate_rows(F4)


def table3_rows() -> list[dict]:
    """Table 3: second-step candidates for F4^Street.

    Confidences match the paper exactly; the goodness column of the
    printed Table 3 is inconsistent with Definition 3 (see
    ``repro.datagen.places`` and EXPERIMENTS.md).
    """
    return _candidate_rows(F4.extended("Street"), base=F4)
