"""Experiment: Tables 7–8 — the Veterans case study grid.

The paper slices the Veterans table into {10K..70K} tuples × {10,20,30}
attributes, and measures (i) find-all-repairs time (Table 7) and (ii)
find-first-repair time (Table 8).

Shape claims (EXPERIMENTS.md):

* for fixed tuples, time grows much faster with attribute count than
  it grows with tuple count for fixed attributes;
* find-first ≤ find-all everywhere;
* at 10 attributes no repair exists, so find-first ≈ find-all (the
  paper's 70K/10 observation).

The default grid is scaled 1/10 in tuples (1K..7K) to stay
laptop-friendly in pure Python; pass ``tuple_counts`` explicitly (or
set ``REPRO_VETERANS_FULL=1``) for the paper-sized grid.
"""

from __future__ import annotations

import os

from repro.bench.timing import Timer, format_duration
from repro.core.config import RepairConfig
from repro.core.repair import find_repairs
from repro.datagen.veterans import VETERANS_FD, veterans_relation

__all__ = [
    "DEFAULT_TUPLE_COUNTS",
    "DEFAULT_ATTR_COUNTS",
    "veterans_grid_rows",
    "tuple_counts_in_use",
]

#: Four of the paper's seven tuple counts, scaled 1/10 (the full scaled
#: grid adds ~20 minutes of find-all time without changing any shape;
#: REPRO_VETERANS_FULL=1 runs the paper's 10K–70K grid).
DEFAULT_TUPLE_COUNTS = (1_000, 2_000, 3_000, 5_000)
_PAPER_TUPLE_COUNTS = tuple(n * 10_000 for n in range(1, 8))
DEFAULT_ATTR_COUNTS = (10, 20, 30)

#: Queue-pop budget for the find-all grid (None = unbounded, as paper).
DEFAULT_MAX_EXPANSIONS = 50_000


def tuple_counts_in_use(full_size: bool | None = None) -> tuple[int, ...]:
    """Scaled tuple counts by default; the paper's with the env override."""
    if full_size is None:
        full_size = os.environ.get("REPRO_VETERANS_FULL", "") == "1"
    return _PAPER_TUPLE_COUNTS if full_size else DEFAULT_TUPLE_COUNTS


def veterans_grid_rows(
    mode: str,
    tuple_counts: tuple[int, ...] = DEFAULT_TUPLE_COUNTS,
    attr_counts: tuple[int, ...] = DEFAULT_ATTR_COUNTS,
    seed: int = 98,
    max_expansions: int | None = DEFAULT_MAX_EXPANSIONS,
) -> list[dict]:
    """Run the grid in ``mode`` ∈ {"all", "first"}.

    Returns one row per tuple count with ``seconds(attrs)`` /
    ``pretty(attrs)`` / ``repairs(attrs)`` columns per attribute count —
    the exact layout of the paper's Tables 7 and 8.
    """
    if mode not in ("all", "first"):
        raise ValueError("mode must be 'all' or 'first'")
    config = (
        RepairConfig.find_all(max_expansions=max_expansions)
        if mode == "all"
        else RepairConfig.find_first(max_expansions=max_expansions)
    )
    rows = []
    for num_rows in tuple_counts:
        row: dict = {"tuples": num_rows}
        for num_attrs in attr_counts:
            relation = veterans_relation(num_attrs, num_rows, seed)
            with Timer() as timer:
                result = find_repairs(relation, VETERANS_FD, config)
            row[f"seconds({num_attrs})"] = timer.elapsed
            row[f"pretty({num_attrs})"] = format_duration(timer.elapsed)
            row[f"repairs({num_attrs})"] = len(result.all_repairs)
        rows.append(row)
    return rows
