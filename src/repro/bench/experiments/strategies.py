"""Ablations over *repair strategies* and their payoffs.

Three studies extending the paper's evaluation along its own arguments:

* :func:`repair_strategy_rows` — the §1 philosophical contrast, priced:
  the CB intensional repair (add attributes, keep every tuple) against
  the two extensional repairs (delete tuples / rewrite cells) on the
  same violated workloads;
* :func:`dc_relax_rows` — the §2 impracticality argument, end to end:
  CB's first-repair search against the full discover-then-relax
  workflow of [16], comparing both wall time and whether the workflow
  can produce a usable replacement at all;
* :func:`advisor_rows` — the §6.3 quality claim: point-query cost with
  the FD-derived indexes versus the plain scan, on the engineered
  Table 6 workloads after repair.
"""

from __future__ import annotations

from repro.advisor.advisor import recommend_indexes
from repro.advisor.rewrite import execute_indexed
from repro.bench.timing import Timer
from repro.core.repair import find_first_repair
from repro.datagen.engineered import engineered_relation
from repro.datagen.places import places_fds, places_relation
from repro.datagen.realworld import country_spec, rental_spec
from repro.datarepair.deletion import DeletionStrategy, minimum_deletion_repair
from repro.datarepair.update import value_update_repair
from repro.dc.relax import discover_then_relax
from repro.fd.measures import assess
from repro.sql.executor import execute_on_relation

__all__ = [
    "repair_strategy_rows",
    "dc_relax_rows",
    "advisor_rows",
    "drift_detection_rows",
]


def _strategy_workloads(scale: float = 0.02, seed: int = 7) -> list[tuple]:
    """(name, relation, fd) triples with genuinely violated FDs."""
    workloads = [
        (f"Places.{fd}", places_relation(), fd) for fd in places_fds()
    ]
    country = country_spec(1.0, seed)
    rental = rental_spec(scale, seed)
    for spec in (country, rental):
        workloads.append((f"{spec.name}.{spec.fd}", engineered_relation(spec), spec.fd))
    return workloads


def repair_strategy_rows(scale: float = 0.02, seed: int = 7) -> list[dict]:
    """Intensional (CB) vs extensional (deletion / update) repair."""
    rows: list[dict] = []
    for name, relation, fd in _strategy_workloads(scale, seed):
        if assess(relation, fd).is_exact:
            continue
        with Timer() as cb_timer:
            repair = find_first_repair(relation, fd)
        with Timer() as deletion_timer:
            deletion = minimum_deletion_repair(
                relation, [fd], strategy=DeletionStrategy.GREEDY
            )
        with Timer() as update_timer:
            update = value_update_repair(relation, [fd])
        rows.append(
            {
                "workload": name,
                "rows": relation.num_rows,
                "cb_attrs_added": repair.num_added if repair else None,
                "cb_tuples_kept": relation.num_rows,
                "cb_seconds": cb_timer.elapsed,
                "del_tuples_lost": deletion.num_deleted,
                "del_fraction": round(deletion.deletion_fraction, 4),
                "del_seconds": deletion_timer.elapsed,
                "upd_cells_changed": update.num_changes,
                "upd_converged": update.converged,
                "upd_seconds": update_timer.elapsed,
            }
        )
    return rows


def dc_relax_rows(scale: float = 0.02, seed: int = 7, max_pairs: int = 60_000) -> list[dict]:
    """CB direct repair vs the [16] discover-then-relax workflow."""
    rows: list[dict] = []
    for name, relation, fd in _strategy_workloads(scale, seed):
        if assess(relation, fd).is_exact:
            continue
        with Timer() as cb_timer:
            repair = find_first_repair(relation, fd)
        with Timer() as relax_timer:
            report = discover_then_relax(
                relation, [fd], max_size=4, max_pairs=max_pairs
            )
        verdict = report.verdicts[0]
        rows.append(
            {
                "workload": name,
                "rows": relation.num_rows,
                "cb_repaired": repair is not None,
                "cb_seconds": cb_timer.elapsed,
                "relax_outcome": verdict.outcome.value,
                "relax_repaired": verdict.repaired,
                "mined_constraints": report.discovery.num_constraints,
                "relax_seconds": relax_timer.elapsed,
                "sampled": report.discovery.sampled,
            }
        )
    return rows


def drift_detection_rows(
    window_size: int = 25,
    clean_windows: int = 6,
    drifted_windows: int = 6,
    seed: int = 7,
) -> list[dict]:
    """Detection delay and repair recovery on an injected semantic drift.

    A log starts with ``clean_windows`` of data satisfying the Country
    FD, then switches to the drifted regime (Y depends on the repair
    attribute too).  For each detector we record the window where drift
    is declared (delay = windows after the true change point) and
    whether the triggered CB repair proposes the ground-truth
    extension.
    """
    from repro.datagen.violations import inject_drift
    from repro.temporal.drift import CusumDetector, ThresholdDetector
    from repro.temporal.evolve import evolve_fd
    from repro.temporal.tfd import TemporalFD
    from repro.temporal.window import TupleLog

    spec = country_spec(1.0, seed)
    base = engineered_relation(spec)
    fd = spec.fd
    determinant = spec.repair_names[0]
    # A clean regime: Y already extended so X -> Y holds exactly.
    clean = value_update_repair(base, [fd]).repaired
    drifted = inject_drift(clean, fd, determinant, seed=seed)

    rows_needed = window_size * max(clean_windows, drifted_windows)
    clean_rows = [
        clean.row(i % clean.num_rows) for i in range(window_size * clean_windows)
    ]
    drift_rows = [
        drifted.row(i % drifted.num_rows)
        for i in range(window_size * drifted_windows)
    ]
    log = TupleLog(clean.schema, clean_rows + drift_rows)
    tfd = TemporalFD(fd, window_size=window_size)
    truth_window = clean_windows  # first window containing drifted rows
    ground_truth = fd.extended(determinant)

    results: list[dict] = []
    detectors = [
        ("threshold(p=2)", ThresholdDetector(patience=2)),
        ("cusum", CusumDetector(decision=0.1)),
    ]
    for name, detector in detectors:
        report = evolve_fd(log, tfd, detector=detector)
        declared = report.verdict.change_window
        results.append(
            {
                "detector": name,
                "windows": report.series.num_windows,
                "true_change": truth_window,
                "declared_at": declared,
                "delay": None if declared is None else declared - truth_window,
                "drifted": report.drifted,
                "ground_truth_proposed": ground_truth in report.proposals,
            }
        )
    return results


def advisor_rows(scale: float = 0.05, seed: int = 7, probes: int = 200) -> list[dict]:
    """Index-backed point queries vs scans on repaired workloads."""
    rows: list[dict] = []
    for spec in (country_spec(1.0, seed), rental_spec(scale, seed)):
        relation = engineered_relation(spec)
        repaired_fd = spec.repaired_fd
        report = recommend_indexes(relation, [repaired_fd])
        indexed = report.build(relation)
        antecedent = repaired_fd.antecedent
        columns = {name: relation.column_values(name) for name in antecedent}
        table = relation.name

        def _quote(value) -> str:
            return f"'{value}'" if isinstance(value, str) else str(value)

        queries = []
        for i in range(probes):
            row = i % relation.num_rows
            where = " and ".join(
                f"{name} = {_quote(columns[name][row])}" for name in antecedent
            )
            queries.append(f"select count(*) from {table} where {where}")
        with Timer() as scan_timer:
            for sql in queries:
                execute_on_relation(relation, sql)
        index_hits = 0
        with Timer() as index_timer:
            for sql in queries:
                _, plan = execute_indexed(indexed, sql)
                index_hits += plan.access_path == "index"
        rows.append(
            {
                "workload": f"{spec.name}.{repaired_fd}",
                "rows": relation.num_rows,
                "indexes_built": len(indexed.indexes),
                "probes": probes,
                "index_hits": index_hits,
                "scan_seconds": scan_timer.elapsed,
                "index_seconds": index_timer.elapsed,
                "speedup": round(scan_timer.elapsed / max(index_timer.elapsed, 1e-9), 1),
            }
        )
    return rows
