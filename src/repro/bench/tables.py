"""Plain-text table rendering for regenerated paper tables.

Every experiment runner returns row dicts; :func:`render_table` turns
them into the aligned ASCII tables the benches print, so a bench run's
output can be eyeballed against the paper side by side.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

__all__ = ["render_table", "render_rows"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def render_rows(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of row dicts; columns default to first row's keys."""
    if not rows:
        return title or "(no rows)"
    keys = list(columns) if columns else list(rows[0].keys())
    body = [[row.get(key, "") for key in keys] for row in rows]
    return render_table(keys, body, title=title)


def _cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
