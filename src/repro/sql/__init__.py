"""Mini SQL layer (system S2 in DESIGN.md).

A three-stage pipeline — :func:`parse` produces an AST,
:func:`~repro.sql.plan.plan_query` normalises it into a logical plan
(Scan / Join / Filter / Aggregate / Sort / Project / Limit), and the
executor compiles each operator onto the columnar kernels (or the
retained row-dict oracle via ``engine="rowdict"``).  The grammar covers
the query surface the paper's prototype uses — ``COUNT(DISTINCT …)``
measure queries — plus joins, GROUP BY / HAVING, ORDER BY and
LIMIT/OFFSET for workload experiments.  :func:`connect` /
:class:`Database` is the user-facing facade; :class:`SqlCountBackend`
computes FD measures through literal SQL text.
"""

from .ast import (
    AggregateCall,
    And,
    Arith,
    ColumnRef,
    Comparison,
    CountDistinct,
    CountStar,
    InList,
    IsNull,
    JoinClause,
    Literal,
    Not,
    Or,
    OrderItem,
    SelectItem,
    SelectQuery,
)
from .backend import SqlCountBackend
from .database import Database, connect
from .errors import PlanError, SqlExecutionError
from .executor import (
    ResultRow,
    ResultSet,
    execute,
    execute_on_relation,
    execute_plan,
)
from .optimize import (
    OPTIMIZE_ENV_VAR,
    active_optimize,
    optimize_plan,
    render_plan,
    resolve_optimize,
    set_optimize,
    use_optimize,
)
from .parser import parse
from .plan import (
    Aggregate,
    AggregateSpec,
    Filter,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    Sort,
    SortKey,
    plan_query,
    to_sql,
)
from .stats import (
    ColumnStats,
    StatisticsProvider,
    TableStats,
    relation_stats,
    store_stats,
)
from .tokens import SqlSyntaxError, Token, TokenType, tokenize

__all__ = [
    "Aggregate",
    "AggregateCall",
    "AggregateSpec",
    "And",
    "Arith",
    "ColumnRef",
    "ColumnStats",
    "Comparison",
    "CountDistinct",
    "CountStar",
    "Database",
    "Filter",
    "InList",
    "IsNull",
    "Join",
    "JoinClause",
    "Limit",
    "Literal",
    "Not",
    "OPTIMIZE_ENV_VAR",
    "Or",
    "OrderItem",
    "Plan",
    "PlanError",
    "Project",
    "ResultRow",
    "ResultSet",
    "Scan",
    "SelectItem",
    "SelectQuery",
    "Sort",
    "SortKey",
    "SqlCountBackend",
    "SqlExecutionError",
    "SqlSyntaxError",
    "StatisticsProvider",
    "TableStats",
    "Token",
    "TokenType",
    "active_optimize",
    "connect",
    "execute",
    "execute_on_relation",
    "execute_plan",
    "optimize_plan",
    "parse",
    "plan_query",
    "relation_stats",
    "render_plan",
    "resolve_optimize",
    "set_optimize",
    "store_stats",
    "to_sql",
    "tokenize",
    "use_optimize",
]
