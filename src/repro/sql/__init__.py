"""Mini SQL layer (system S2 in DESIGN.md).

Lexer, parser and executor for the query surface the paper's prototype
uses — ``SELECT COUNT(DISTINCT …) FROM R [WHERE …]`` plus plain
SELECT / GROUP BY for inspection — and :class:`SqlCountBackend`, which
computes FD measures through literal SQL text.
"""

from .ast import (
    And,
    ColumnRef,
    Comparison,
    CountDistinct,
    CountStar,
    IsNull,
    Literal,
    Not,
    Or,
    SelectItem,
    SelectQuery,
)
from .backend import SqlCountBackend
from .executor import ResultSet, SqlExecutionError, execute, execute_on_relation
from .parser import parse
from .tokens import SqlSyntaxError, Token, TokenType, tokenize

__all__ = [
    "And",
    "ColumnRef",
    "Comparison",
    "CountDistinct",
    "CountStar",
    "IsNull",
    "Literal",
    "Not",
    "Or",
    "ResultSet",
    "SelectItem",
    "SelectQuery",
    "SqlCountBackend",
    "SqlExecutionError",
    "SqlSyntaxError",
    "Token",
    "TokenType",
    "execute",
    "execute_on_relation",
    "parse",
    "tokenize",
]
