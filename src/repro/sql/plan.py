"""Logical query plans: the middle stage of parse → plan → execute.

:func:`plan_query` normalises a parsed :class:`~repro.sql.ast.SelectQuery`
into a tree of logical operators::

    Limit(Project(Sort(Filter[having](Aggregate(Filter[where](Join*(Scan)))))))

with every stage optional except Scan and Project.  The planner is
purely syntactic — it needs no catalog — so plans are frozen,
comparable dataclasses and :func:`to_sql` can unparse one back to SQL
text such that ``plan_query(parse(to_sql(p))) == p`` (the property the
round-trip suite pins).

Normalisations performed here, so the executor never re-derives them:

* aggregate calls (``COUNT(*)``, ``COUNT(DISTINCT …)``, ``SUM``/…)
  anywhere in SELECT, HAVING, or ORDER BY are pulled out into
  :class:`AggregateSpec` slots and replaced by references to synthetic
  ``__agg<i>`` columns of the :class:`Aggregate` operator's output;
* ``ORDER BY alias`` is substituted with the aliased item's expression;
* ``GROUP BY`` names (possibly ``t.col``-qualified) become
  :class:`~repro.sql.ast.ColumnRef` keys;
* join ``ON`` conditions are decomposed into equi-join key pairs, with
  each side attributed to the new table or the accumulated left input.

Semantic restrictions (raised as :class:`PlanError`): aggregates in
WHERE or ON, non-equality join conditions, boolean predicates used as
values, ``*`` mixed with other items, and plain columns that escape
GROUP BY.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .ast import (
    AGGREGATE_FUNCS,
    AggregateCall,
    And,
    Arith,
    ColumnRef,
    Comparison,
    CountDistinct,
    CountStar,
    Expression,
    InList,
    IsNull,
    JoinClause,
    Literal,
    Not,
    Or,
    OrderItem,
    SelectQuery,
)
from .errors import PlanError
from .tokens import KEYWORDS

__all__ = [
    "Scan",
    "Join",
    "Filter",
    "Aggregate",
    "AggregateSpec",
    "Sort",
    "SortKey",
    "Project",
    "Limit",
    "Plan",
    "PlanError",
    "plan_query",
    "to_sql",
]

#: Prefix of the synthetic columns an Aggregate operator emits.
AGG_PREFIX = "__agg"


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scan:
    """Read one relation from the catalog.

    ``columns`` (set by the optimizer's projection pruning, ``None`` in
    planner output) restricts the frame to a subset of the table's
    attributes, in schema order; the executor then never decodes the
    rest.
    """

    table: str
    alias: str | None = None
    columns: tuple[str, ...] | None = None

    @property
    def binding(self) -> str:
        """The qualifier this table's columns answer to."""
        return self.alias or self.table


@dataclass(frozen=True)
class Join:
    """Equi-join the accumulated input with one more table.

    ``columns`` prunes the *right* table's frame the same way
    ``Scan.columns`` prunes the scan (join keys are always included by
    the optimizer when it sets this).
    """

    source: "Plan"
    kind: str  # "inner" | "left"
    table: str
    alias: str | None
    left_keys: tuple[ColumnRef, ...]
    right_keys: tuple[ColumnRef, ...]
    columns: tuple[str, ...] | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class Filter:
    """Keep the rows where ``predicate`` is true (two-valued)."""

    source: "Plan"
    predicate: Expression


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate slot: ``func([DISTINCT] arguments…)``.

    ``arguments = ()`` encodes ``COUNT(*)``; multiple arguments only
    occur for ``COUNT(DISTINCT a, b, …)``.
    """

    func: str
    arguments: tuple[Expression, ...] = ()
    distinct: bool = False


@dataclass(frozen=True)
class Aggregate:
    """Group by key columns and compute aggregate slots.

    Output frame: one column per group key (keeping its source name and
    qualifier) followed by one ``__agg<i>`` column per spec.  With no
    group keys the output is a single global group — one row even on
    empty input.
    """

    source: "Plan"
    group_by: tuple[ColumnRef, ...]
    specs: tuple[AggregateSpec, ...]


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY key over the pre-projection frame."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class Sort:
    """Stable sort (NULL smallest, NaN next, then value order)."""

    source: "Plan"
    keys: tuple[SortKey, ...]


@dataclass(frozen=True)
class Project:
    """Evaluate output expressions; optionally deduplicate rows.

    A single ``ColumnRef("*")`` expression (with name ``"*"``) expands
    to every input column at execution time.
    """

    source: "Plan"
    expressions: tuple[Expression, ...]
    names: tuple[str, ...]
    distinct: bool = False


@dataclass(frozen=True)
class Limit:
    """Row-range slice after projection: ``[offset : offset + limit]``."""

    source: "Plan"
    limit: int | None
    offset: int = 0


Plan = Union[Scan, Join, Filter, Aggregate, Sort, Project, Limit]


# ----------------------------------------------------------------------
# Helpers over expressions
# ----------------------------------------------------------------------
_AGGREGATE_NODES = (CountStar, CountDistinct, AggregateCall)
_BOOLEAN_NODES = (Comparison, InList, IsNull, Not, And, Or)


def _children(expression: Expression) -> tuple[Expression, ...]:
    if isinstance(expression, (Arith, Comparison, And, Or)):
        return (expression.left, expression.right)
    if isinstance(expression, (IsNull, Not, InList)):
        return (expression.operand,)
    if isinstance(expression, AggregateCall):
        return (expression.argument,)
    return ()


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, _AGGREGATE_NODES):
        return True
    return any(_contains_aggregate(child) for child in _children(expression))


def _forbid_aggregates(expression: Expression, where: str) -> None:
    if _contains_aggregate(expression):
        raise PlanError(f"aggregates are not allowed in {where}")


def _parse_ref(name: str) -> ColumnRef:
    """A possibly dotted GROUP BY name as a ColumnRef."""
    if "." in name:
        table, _, column = name.partition(".")
        return ColumnRef(column, table=table)
    return ColumnRef(name)


def _ref_matches(ref: ColumnRef, key: ColumnRef) -> bool:
    """Whether a select-list reference denotes a group key."""
    if ref.name != key.name:
        return False
    return ref.table is None or key.table is None or ref.table == key.table


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
class _AggregateRewriter:
    """Pulls aggregate calls out of expressions into shared specs."""

    def __init__(self, group_by: tuple[ColumnRef, ...]) -> None:
        self.group_by = group_by
        self.specs: list[AggregateSpec] = []

    def _slot(self, spec: AggregateSpec) -> ColumnRef:
        try:
            index = self.specs.index(spec)
        except ValueError:
            index = len(self.specs)
            self.specs.append(spec)
        return ColumnRef(f"{AGG_PREFIX}{index}")

    def rewrite(self, expression: Expression) -> Expression:
        if isinstance(expression, CountStar):
            return self._slot(AggregateSpec("count"))
        if isinstance(expression, CountDistinct):
            arguments = tuple(_parse_ref(name) for name in expression.columns)
            return self._slot(AggregateSpec("count", arguments, distinct=True))
        if isinstance(expression, AggregateCall):
            if expression.func not in AGGREGATE_FUNCS:
                raise PlanError(f"unknown aggregate function {expression.func!r}")
            _forbid_aggregates(expression.argument, "aggregate arguments")
            spec = AggregateSpec(
                expression.func, (expression.argument,), expression.distinct
            )
            return self._slot(spec)
        if isinstance(expression, ColumnRef):
            if any(_ref_matches(expression, key) for key in self.group_by):
                return expression
            if not self.group_by:
                raise PlanError(
                    "cannot mix aggregates and plain columns without GROUP BY"
                )
            raise PlanError(
                f"column {expression.qualified!r} must appear in GROUP BY"
            )
        if isinstance(expression, Literal):
            return expression
        if isinstance(expression, Arith):
            return Arith(
                expression.op,
                self.rewrite(expression.left),
                self.rewrite(expression.right),
            )
        if isinstance(expression, Comparison):
            return Comparison(
                expression.op,
                self.rewrite(expression.left),
                self.rewrite(expression.right),
            )
        if isinstance(expression, InList):
            return InList(
                self.rewrite(expression.operand),
                expression.values,
                expression.negated,
            )
        if isinstance(expression, IsNull):
            return IsNull(self.rewrite(expression.operand), expression.negated)
        if isinstance(expression, Not):
            return Not(self.rewrite(expression.operand))
        if isinstance(expression, And):
            return And(self.rewrite(expression.left), self.rewrite(expression.right))
        if isinstance(expression, Or):
            return Or(self.rewrite(expression.left), self.rewrite(expression.right))
        raise PlanError(f"cannot plan expression {expression!r}")


def _conjuncts(expression: Expression) -> list[Expression]:
    if isinstance(expression, And):
        return _conjuncts(expression.left) + _conjuncts(expression.right)
    return [expression]


def _join_keys(
    join: JoinClause,
) -> tuple[tuple[ColumnRef, ...], tuple[ColumnRef, ...]]:
    """Split an ON condition into (left-side, right-side) key columns."""
    binding = join.alias or join.table
    left_keys: list[ColumnRef] = []
    right_keys: list[ColumnRef] = []
    for conjunct in _conjuncts(join.on):
        _forbid_aggregates(conjunct, "JOIN conditions")
        if not (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            raise PlanError(
                "JOIN conditions must be conjunctions of column equalities, "
                f"got {conjunct!r}"
            )
        sides = (conjunct.left, conjunct.right)
        on_right = [ref.table == binding for ref in sides]
        if on_right == [False, True]:
            left_ref, right_ref = sides
        elif on_right == [True, False]:
            right_ref, left_ref = sides
        else:
            raise PlanError(
                f"cannot attribute join condition on {join.table!r}: exactly one "
                f"side must be qualified with {binding!r}"
            )
        left_keys.append(left_ref)
        right_keys.append(right_ref)
    return tuple(left_keys), tuple(right_keys)


def plan_query(query: SelectQuery) -> Plan:
    """Normalise a parsed query into a logical plan."""
    node: Plan = Scan(query.table, query.table_alias)
    for join in query.joins:
        if join.kind not in ("inner", "left"):
            raise PlanError(f"unknown join kind {join.kind!r}")
        left_keys, right_keys = _join_keys(join)
        node = Join(node, join.kind, join.table, join.alias, left_keys, right_keys)
    if query.where is not None:
        _forbid_aggregates(query.where, "WHERE")
        node = Filter(node, query.where)

    group_by = tuple(_parse_ref(name) for name in query.group_by)
    star = (
        len(query.items) == 1
        and isinstance(query.items[0].expression, ColumnRef)
        and query.items[0].expression.name == "*"
    )
    if any(
        isinstance(item.expression, ColumnRef) and item.expression.name == "*"
        for item in query.items
    ) and not star:
        raise PlanError("SELECT * cannot be combined with other items")

    needs_aggregate = bool(group_by) or any(
        _contains_aggregate(item.expression) for item in query.items
    )
    if query.having is not None:
        needs_aggregate = True
    if any(_contains_aggregate(key.expression) for key in query.order_by):
        needs_aggregate = True

    if needs_aggregate and star:
        if not group_by:
            raise PlanError(
                "cannot mix aggregates and plain columns without GROUP BY"
            )
        raise PlanError("column '*' must appear in GROUP BY")

    if needs_aggregate:
        rewriter = _AggregateRewriter(group_by)
        expressions = tuple(rewriter.rewrite(item.expression) for item in query.items)
        having = None if query.having is None else rewriter.rewrite(query.having)
        order_keys = _order_keys(query, expressions, rewriter.rewrite)
        node = Aggregate(node, group_by, tuple(rewriter.specs))
        if having is not None:
            node = Filter(node, having)
    else:
        expressions = tuple(item.expression for item in query.items)
        having = None
        order_keys = _order_keys(query, expressions, lambda e: e)

    for key in order_keys:
        _forbid_boolean(key.expression, "ORDER BY")
    if order_keys:
        node = Sort(node, order_keys)

    if star:
        names: tuple[str, ...] = ("*",)
    else:
        names = tuple(item.output_name for item in query.items)
        for expression in expressions:
            _forbid_boolean(expression, "SELECT items")
    node = Project(node, expressions, names, distinct=query.distinct)
    if query.limit is not None or query.offset is not None:
        node = Limit(node, query.limit, query.offset or 0)
    return node


def _forbid_boolean(expression: Expression, where: str) -> None:
    if isinstance(expression, _BOOLEAN_NODES):
        raise PlanError(f"boolean expressions are not supported in {where}")


def _order_keys(
    query: SelectQuery,
    rewritten_items: tuple[Expression, ...],
    rewrite,
) -> tuple[SortKey, ...]:
    """Resolve ORDER BY keys: alias substitution, then normal rewriting."""
    keys: list[SortKey] = []
    for item in query.order_by:
        expression = item.expression
        if isinstance(expression, ColumnRef) and expression.table is None:
            for select_item, rewritten in zip(query.items, rewritten_items):
                if select_item.alias == expression.name:
                    expression = rewritten
                    break
            else:
                expression = rewrite(expression)
        else:
            expression = rewrite(expression)
        keys.append(SortKey(expression, item.descending))
    return tuple(keys)


# ----------------------------------------------------------------------
# Unparsing (the round-trip property's other half)
# ----------------------------------------------------------------------
def to_sql(plan: Plan) -> str:
    """SQL text whose plan equals ``plan`` (canonical shapes only).

    Raises :class:`PlanError` when the plan does not have the canonical
    :func:`plan_query` shape or contains unrepresentable literals.
    """
    node = plan
    limit: Limit | None = None
    if isinstance(node, Limit):
        limit = node
        node = node.source
    if not isinstance(node, Project):
        raise PlanError(f"cannot unparse plan rooted at {type(node).__name__}")
    project = node
    node = project.source
    sort: Sort | None = None
    if isinstance(node, Sort):
        sort = node
        node = node.source
    having: Filter | None = None
    if isinstance(node, Filter) and isinstance(node.source, Aggregate):
        having = node
        node = node.source
    aggregate: Aggregate | None = None
    if isinstance(node, Aggregate):
        aggregate = node
        node = node.source
    where: Filter | None = None
    if isinstance(node, Filter):
        where = node
        node = node.source
    joins: list[Join] = []
    pushed: list[Expression] = []
    # The optimizer pushes WHERE conjuncts below joins as plain Filter
    # nodes; fold them back into the rendered WHERE so optimized plans
    # unparse too (canonical plans have no spine filters and round-trip
    # unchanged).
    while isinstance(node, (Join, Filter)):
        if isinstance(node, Join):
            joins.append(node)
        else:
            pushed.append(node.predicate)
        node = node.source
    joins.reverse()
    pushed.reverse()
    if not isinstance(node, Scan):
        raise PlanError(f"cannot unparse plan with a {type(node).__name__} source")
    scan = node

    specs = aggregate.specs if aggregate else ()

    parts = ["SELECT"]
    if project.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_item_sql(e, n, specs) for e, n in
                           zip(project.expressions, project.names)))
    parts.append(f"FROM {scan.table}")
    if scan.alias:
        parts.append(f"AS {scan.alias}")
    for join in joins:
        parts.append("LEFT JOIN" if join.kind == "left" else "JOIN")
        parts.append(join.table)
        if join.alias:
            parts.append(f"AS {join.alias}")
        condition = " AND ".join(
            f"({_expr_sql(l, specs)} = {_expr_sql(r, specs)})"
            for l, r in zip(join.left_keys, join.right_keys)
        )
        parts.append(f"ON {condition}")
    predicates = pushed + ([where.predicate] if where is not None else [])
    if predicates:
        combined = predicates[0]
        for predicate in predicates[1:]:
            combined = And(combined, predicate)
        parts.append(f"WHERE {_expr_sql(combined, specs)}")
    if aggregate is not None and aggregate.group_by:
        parts.append(
            "GROUP BY " + ", ".join(key.qualified for key in aggregate.group_by)
        )
    if having is not None:
        parts.append(f"HAVING {_expr_sql(having.predicate, specs)}")
    if sort is not None:
        rendered = []
        for key in sort.keys:
            text = _expr_sql(key.expression, specs)
            rendered.append(f"{text} DESC" if key.descending else text)
        parts.append("ORDER BY " + ", ".join(rendered))
    if limit is not None:
        if limit.limit is None:
            raise PlanError("cannot unparse an OFFSET without a LIMIT")
        parts.append(f"LIMIT {limit.limit}")
        if limit.offset:
            parts.append(f"OFFSET {limit.offset}")
    return " ".join(parts)


def _agg_slot(ref: ColumnRef, specs: tuple[AggregateSpec, ...]) -> AggregateSpec | None:
    if ref.table is not None or not ref.name.startswith(AGG_PREFIX):
        return None
    suffix = ref.name[len(AGG_PREFIX):]
    if not suffix.isdigit() or int(suffix) >= len(specs):
        return None
    return specs[int(suffix)]


def _spec_sql(spec: AggregateSpec) -> str:
    if spec.func == "count" and not spec.arguments:
        return "COUNT(*)"
    if (
        spec.func == "count"
        and spec.distinct
        and all(isinstance(a, ColumnRef) for a in spec.arguments)
    ):
        columns = ", ".join(a.qualified for a in spec.arguments)
        return f"COUNT(DISTINCT {columns})"
    if len(spec.arguments) != 1:
        raise PlanError(f"cannot unparse aggregate spec {spec!r}")
    inner = _expr_sql(spec.arguments[0], ())
    prefix = "DISTINCT " if spec.distinct else ""
    return f"{spec.func.upper()}({prefix}{inner})"


def _derived_name(expression: Expression, specs: tuple[AggregateSpec, ...]) -> str:
    """What ``SelectItem.output_name`` derives after a reparse."""
    if isinstance(expression, ColumnRef):
        spec = _agg_slot(expression, specs)
        if spec is None:
            return expression.name
        if spec.func == "count" and not spec.arguments:
            return "count"
        if (
            spec.func == "count"
            and spec.distinct
            and all(isinstance(a, ColumnRef) for a in spec.arguments)
        ):
            return "count_distinct"
        return spec.func
    return "expr"


def _item_sql(
    expression: Expression, name: str, specs: tuple[AggregateSpec, ...]
) -> str:
    if isinstance(expression, ColumnRef) and expression.name == "*":
        return "*"
    text = _expr_sql(expression, specs)
    if name == _derived_name(expression, specs):
        return text
    if name.lower() in KEYWORDS or not _is_identifier(name):
        raise PlanError(f"cannot unparse output name {name!r} as an alias")
    return f"{text} AS {name}"


def _is_identifier(name: str) -> bool:
    return bool(name) and (name[0].isalpha() or name[0] == "_") and all(
        ch.isalnum() or ch == "_" for ch in name
    )


def _literal_sql(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, (int, float)):
        text = repr(value)
        if any(ch in text for ch in "einfa"):  # 1e-07, inf, nan
            raise PlanError(f"cannot unparse numeric literal {value!r}")
        return text
    if isinstance(value, str):
        if "'" in value:
            raise PlanError(f"cannot unparse string literal {value!r}")
        return f"'{value}'"
    raise PlanError(f"cannot unparse literal {value!r}")


def _expr_sql(expression: Expression, specs: tuple[AggregateSpec, ...]) -> str:
    if isinstance(expression, ColumnRef):
        spec = _agg_slot(expression, specs)
        if spec is not None:
            return _spec_sql(spec)
        return expression.qualified
    if isinstance(expression, Literal):
        return _literal_sql(expression.value)
    if isinstance(expression, (Arith, Comparison)):
        left = _expr_sql(expression.left, specs)
        right = _expr_sql(expression.right, specs)
        return f"({left} {expression.op} {right})"
    if isinstance(expression, InList):
        values = ", ".join(_literal_sql(v) for v in expression.values)
        keyword = "NOT IN" if expression.negated else "IN"
        return f"({_expr_sql(expression.operand, specs)} {keyword} ({values}))"
    if isinstance(expression, IsNull):
        keyword = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"({_expr_sql(expression.operand, specs)} {keyword})"
    if isinstance(expression, Not):
        return f"(NOT {_expr_sql(expression.operand, specs)})"
    if isinstance(expression, And):
        return (
            f"({_expr_sql(expression.left, specs)} AND "
            f"{_expr_sql(expression.right, specs)})"
        )
    if isinstance(expression, Or):
        return (
            f"({_expr_sql(expression.left, specs)} OR "
            f"{_expr_sql(expression.right, specs)})"
        )
    if isinstance(expression, CountStar):
        return "COUNT(*)"
    if isinstance(expression, CountDistinct):
        return f"COUNT(DISTINCT {', '.join(expression.columns)})"
    if isinstance(expression, AggregateCall):
        return _spec_sql(
            AggregateSpec(expression.func, (expression.argument,), expression.distinct)
        )
    raise PlanError(f"cannot unparse expression {expression!r}")
