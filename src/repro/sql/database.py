"""User-facing query facade over a catalog.

``connect(catalog)`` (or ``Database(catalog)``) is the front door of
the SQL layer: one object that runs the whole parse → plan → execute
pipeline and pins per-call engine and worker settings::

    db = connect(catalog)
    result = db.query("SELECT City, COUNT(*) FROM Places GROUP BY City")
    print(result.to_csv())

The facade adds no semantics of its own — :meth:`Database.query` is
``execute`` plus a scoped :func:`repro.relational.parallel.use_workers`
— so everything the property suite proves about the engines holds here
too.

Chunked stores attach through a per-database **store cache**:
:meth:`Database.attach_store` (and :meth:`Database.query_store`) keep
each opened :class:`~repro.storage.reader.StoredRelation` alive, keyed
by resolved directory, so repeated queries against the same store reuse
its parsed manifest, mmaps, and remap caches instead of re-opening the
directory per call.  :meth:`Database.explain` renders the optimized
plan plus the zone-map chunk-skip counts for store-backed scans.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Union

from repro.relational import parallel
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation

from .errors import SqlExecutionError
from .executor import ResultSet, compile_expression, execute, execute_plan
from .optimize import optimize_plan, render_plan
from .parser import parse
from .plan import Filter, Plan, Scan, plan_query, to_sql
from .stats import StatisticsProvider

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.reader import StoredRelation

__all__ = ["Database", "connect"]


class Database:
    """A catalog bound to the parse → plan → execute pipeline."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        #: Opened stores by resolved directory (the open-once cache).
        self._stores: dict[str, "StoredRelation"] = {}
        #: The same stores by relation name (query_store routing).
        self._store_names: dict[str, "StoredRelation"] = {}

    @classmethod
    def from_relations(cls, *relations: Relation) -> "Database":
        """Build a database holding just the given relations."""
        catalog = Catalog()
        for relation in relations:
            catalog.add_relation(relation)
        return cls(catalog)

    def table_names(self) -> list[str]:
        return list(self.catalog.relation_names())

    # ------------------------------------------------------------------
    # Chunked stores
    # ------------------------------------------------------------------
    def _open_store(
        self, store: "Union[str, Path, StoredRelation]"
    ) -> "StoredRelation":
        """Resolve ``store`` through the cache, opening it at most once.

        Accepts a directory path or an already-open
        :class:`StoredRelation`; either way the cached handle (warm
        manifest, mmaps, remap tables) wins over a fresh open.
        """
        from repro.storage.reader import StoredRelation, open_store

        if isinstance(store, StoredRelation):
            key = str(Path(store.directory).resolve())
            opened = self._stores.setdefault(key, store)
        else:
            key = str(Path(store).resolve())
            opened = self._stores.get(key)
            if opened is None:
                opened = open_store(store)
                self._stores[key] = opened
        self._store_names.setdefault(opened.name, opened)
        return opened

    def store(self, name: str) -> "StoredRelation":
        """The cached open store registered under ``name``."""
        try:
            return self._store_names[name]
        except KeyError:
            raise SqlExecutionError(f"no attached store named {name!r}") from None

    def attach_store(
        self,
        store: "Union[str, Path, StoredRelation]",
        where=None,
        columns=None,
        limit: int | None = None,
        replace: bool = False,
    ) -> Relation:
        """Register a chunked on-disk store as a queryable table.

        ``store`` may be a directory path or an open
        :class:`StoredRelation`; the opened handle is cached on the
        database, so re-attaching (or :meth:`query_store`) never
        re-reads the manifest or rebuilds remap caches.  The store is
        scanned chunk-at-a-time with the optional filter pushed down
        (:func:`repro.storage.sqlbridge.scan_store`), so only surviving
        rows are ever materialized; the resulting relation joins the
        catalog under the store's name and is returned.  Pass
        ``where``/``columns``/``limit`` to bound the resident slice of
        a store larger than RAM.
        """
        from repro.storage.sqlbridge import scan_store

        opened = self._open_store(store)
        relation = scan_store(opened, where=where, columns=columns, limit=limit)
        self.catalog.add_relation(relation, replace=replace)
        return relation

    def query_store(
        self,
        sql: str,
        engine: str = "columnar",
        workers: int | None = None,
        scan_stats=None,
    ) -> ResultSet:
        """Run one single-table statement straight off its attached store.

        The FROM table is resolved through the store cache (no
        re-open); WHERE and the referenced columns push down into the
        chunked scan, zone maps skip refuted chunks, and only the
        survivors are materialized.  ``scan_stats`` (a
        :class:`~repro.storage.sqlbridge.ScanStats`) receives the skip
        counters.
        """
        from repro.storage.sqlbridge import query_store

        query = parse(sql)
        return query_store(
            self.store(query.table),
            sql,
            engine=engine,
            workers=workers,
            scan_stats=scan_stats,
        )

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(
        self,
        sql: str,
        engine: str = "columnar",
        workers: int | None = None,
        optimize: str | None = None,
    ) -> ResultSet:
        """Run one SQL statement and return its :class:`ResultSet`.

        ``workers`` scopes the parallel morsel count for this call only
        (``None`` keeps the process-wide setting); ``optimize``
        (``"on"``/``"off"``) likewise scopes the query optimizer.
        """
        if workers is None:
            return execute(self.catalog, sql, engine, optimize=optimize)
        with parallel.use_workers(workers):
            return execute(self.catalog, sql, engine, optimize=optimize)

    def query_plan(
        self,
        plan: "Plan | str",
        engine: str = "columnar",
        workers: int | None = None,
        optimized: bool = True,
    ) -> "ResultSet | Plan":
        """Plans and executes, depending on the argument.

        Given SQL text, returns the **logical plan** the executor would
        run — optimized against the catalog's statistics by default,
        the raw planner output with ``optimized=False`` (this is the
        ``EXPLAIN`` surface; render it with
        :func:`repro.sql.optimize.render_plan` or
        :func:`repro.sql.plan.to_sql`).  Given an already-built
        :class:`Plan`, executes it and returns the :class:`ResultSet`
        (the programmatic surface, unchanged).
        """
        if isinstance(plan, str):
            built = plan_query(parse(plan))
            if not optimized:
                return built
            return optimize_plan(built, StatisticsProvider(catalog=self.catalog))
        if workers is None:
            return execute_plan(self.catalog, plan, engine)
        with parallel.use_workers(workers):
            return execute_plan(self.catalog, plan, engine)

    def explain(self, sql: str) -> str:
        """The optimized plan for ``sql``, as text, with scan effects.

        Three sections: the plan re-rendered as SQL (:func:`to_sql`),
        the operator tree (:func:`render_plan`), and — for each scan
        whose table is an attached store — the zone-map verdict: how
        many chunks the pushed-down predicate skips, without reading
        any of them.
        """
        plan = self.query_plan(sql, optimized=True)
        lines = [to_sql(plan), "", render_plan(plan).rstrip("\n")]
        scans = self._scan_reports(plan)
        if scans:
            lines.append("")
            lines.extend(scans)
        return "\n".join(lines) + "\n"

    def _scan_reports(self, plan: Plan) -> list[str]:
        """One ``scan <table>: …`` line per leftmost scan of the plan."""
        from repro.storage.sqlbridge import count_skippable_chunks

        node = plan
        pushed: list = []
        while not isinstance(node, Scan):
            if isinstance(node, Filter):
                pushed.append(node.predicate)
            else:
                pushed = []  # residual/having filters are not on the scan
            node = node.source
        store = self._store_names.get(node.table)
        if store is None:
            return [f"scan {node.table}: in-memory relation (no zone maps)"]
        # Innermost pushed filter first — the order scan_store tests them.
        predicates = [compile_expression(p) for p in reversed(pushed)]
        where = None
        for predicate in predicates:
            where = predicate if where is None else _ir_and(where, predicate)
        stats = count_skippable_chunks(store, where)
        return [
            f"scan {node.table}: store-backed, zone maps skip "
            f"{stats.chunks_skipped}/{stats.chunks_total} chunks"
        ]


def _ir_and(left, right):
    from repro.relational import expr as ir

    return ir.And(left, right)


def connect(source: Catalog | Database) -> Database:
    """The conventional entry point: wrap a catalog in a Database."""
    if isinstance(source, Database):
        return source
    return Database(source)
