"""User-facing query facade over a catalog.

``connect(catalog)`` (or ``Database(catalog)``) is the front door of
the SQL layer: one object that runs the whole parse → plan → execute
pipeline and pins per-call engine and worker settings::

    db = connect(catalog)
    result = db.query("SELECT City, COUNT(*) FROM Places GROUP BY City")
    print(result.to_csv())

The facade adds no semantics of its own — :meth:`Database.query` is
``execute`` plus a scoped :func:`repro.relational.parallel.use_workers`
— so everything the property suite proves about the engines holds here
too.
"""

from __future__ import annotations

from repro.relational import parallel
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation

from .executor import ResultSet, execute, execute_plan
from .plan import Plan

__all__ = ["Database", "connect"]


class Database:
    """A catalog bound to the parse → plan → execute pipeline."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    @classmethod
    def from_relations(cls, *relations: Relation) -> "Database":
        """Build a database holding just the given relations."""
        catalog = Catalog()
        for relation in relations:
            catalog.add_relation(relation)
        return cls(catalog)

    def table_names(self) -> list[str]:
        return list(self.catalog.relation_names())

    def attach_store(
        self,
        store,
        where=None,
        columns=None,
        limit: int | None = None,
        replace: bool = False,
    ) -> Relation:
        """Register a chunked on-disk store as a queryable table.

        The store is scanned chunk-at-a-time with the optional filter
        pushed down (:func:`repro.storage.sqlbridge.scan_store`), so
        only surviving rows are ever materialized; the resulting
        relation joins the catalog under the store's name and is
        returned.  Pass ``where``/``columns``/``limit`` to bound the
        resident slice of a store larger than RAM.
        """
        from repro.storage.sqlbridge import scan_store

        relation = scan_store(store, where=where, columns=columns, limit=limit)
        self.catalog.add_relation(relation, replace=replace)
        return relation

    def query(
        self, sql: str, engine: str = "columnar", workers: int | None = None
    ) -> ResultSet:
        """Run one SQL statement and return its :class:`ResultSet`.

        ``workers`` scopes the parallel morsel count for this call only
        (``None`` keeps the process-wide setting).
        """
        if workers is None:
            return execute(self.catalog, sql, engine)
        with parallel.use_workers(workers):
            return execute(self.catalog, sql, engine)

    def query_plan(
        self, plan: Plan, engine: str = "columnar", workers: int | None = None
    ) -> ResultSet:
        """Run an already-built logical plan (the programmatic surface)."""
        if workers is None:
            return execute_plan(self.catalog, plan, engine)
        with parallel.use_workers(workers):
            return execute_plan(self.catalog, plan, engine)


def connect(source: Catalog | Database) -> Database:
    """The conventional entry point: wrap a catalog in a Database."""
    if isinstance(source, Database):
        return source
    return Database(source)
