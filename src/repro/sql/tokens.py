"""SQL tokenizer for the query layer.

Covers the surface of the parse → plan → execute pipeline: keyword and
identifier tokens (with ``.``-qualified references left to the parser),
quoted strings, numbers, comparison *and* arithmetic operators,
parentheses, commas, ``*``.

Errors carry the full source coordinates — byte offset, 1-based line
and column, and the offending fragment — so a multi-line query reports
``line 3, column 7`` instead of a bare offset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.relational.errors import ReproError

__all__ = ["SqlSyntaxError", "TokenType", "Token", "tokenize", "KEYWORDS"]


class SqlSyntaxError(ReproError, ValueError):
    """Raised on malformed SQL text.

    ``position`` is the byte offset into the source; ``line`` and
    ``column`` are 1-based when known.  ``fragment`` is the offending
    token text (or ``"end of input"``).
    """

    def __init__(
        self,
        message: str,
        position: int | None = None,
        line: int | None = None,
        column: int | None = None,
        fragment: str | None = None,
    ) -> None:
        where = ""
        if line is not None and column is not None:
            where = f" (line {line}, column {column}"
            if fragment:
                where += f", at {fragment!r}"
            where += ")"
        elif position is not None:
            where = f" (at offset {position})"
        super().__init__(f"{message}{where}")
        self.position = position
        self.line = line
        self.column = column
        self.fragment = fragment


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    STAR = "star"
    END = "end"


KEYWORDS = {
    "select", "distinct", "count", "sum", "min", "max", "avg", "from",
    "where", "group", "by", "order", "having", "and", "or", "not", "is",
    "null", "in", "as", "asc", "desc", "limit", "offset", "true", "false",
    "join", "inner", "left", "outer", "on",
}

_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "/")
_PUNCTUATION = "(),."


@dataclass(frozen=True)
class Token:
    """One lexical token with its source coordinates."""

    type: TokenType
    value: str
    position: int
    line: int = field(default=1, compare=False)
    column: int = field(default=1, compare=False)

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword (case-insensitive)."""
        return self.type is TokenType.KEYWORD and self.value == word

    @property
    def described(self) -> str:
        """The fragment an error message should show for this token."""
        return self.value if self.type is not TokenType.END else "end of input"


class _Cursor:
    """Tracks line/column while scanning the source left to right."""

    __slots__ = ("text", "line", "column", "_scanned")

    def __init__(self, text: str) -> None:
        self.text = text
        self.line = 1
        self.column = 1
        self._scanned = 0

    def at(self, index: int) -> tuple[int, int]:
        """``(line, column)`` of ``index``; indices must be ascending."""
        for ch in self.text[self._scanned : index]:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self._scanned = max(self._scanned, index)
        return self.line, self.column


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens; always ends with an END token."""
    tokens: list[Token] = []
    cursor = _Cursor(text)
    index = 0
    length = len(text)

    def emit(type_: TokenType, value: str, position: int) -> None:
        line, column = cursor.at(position)
        tokens.append(Token(type_, value, position, line, column))

    def fail(message: str, position: int, fragment: str) -> None:
        line, column = cursor.at(position)
        raise SqlSyntaxError(message, position, line, column, fragment)

    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch == "'":
            end = text.find("'", index + 1)
            if end == -1:
                fail("unterminated string literal", index, text[index : index + 10])
            emit(TokenType.STRING, text[index + 1 : end], index)
            index = end + 1
            continue
        if ch == '"':
            end = text.find('"', index + 1)
            if end == -1:
                fail("unterminated quoted identifier", index, text[index : index + 10])
            emit(TokenType.IDENTIFIER, text[index + 1 : end], index)
            index = end + 1
            continue
        if ch.isdigit() or (ch in "+-" and index + 1 < length and text[index + 1].isdigit()):
            end = index + 1
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            emit(TokenType.NUMBER, text[index:end], index)
            index = end
            continue
        matched_operator = _match_operator(text, index)
        if matched_operator is not None:
            emit(TokenType.OPERATOR, matched_operator, index)
            index += len(matched_operator)
            continue
        if ch in _PUNCTUATION:
            emit(TokenType.PUNCTUATION, ch, index)
            index += 1
            continue
        if ch == "*":
            emit(TokenType.STAR, "*", index)
            index += 1
            continue
        if ch.isalpha() or ch == "_":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                emit(TokenType.KEYWORD, lowered, index)
            else:
                emit(TokenType.IDENTIFIER, word, index)
            index = end
            continue
        fail(f"unexpected character {ch!r}", index, ch)
    line, column = cursor.at(length)
    tokens.append(Token(TokenType.END, "", length, line, column))
    return tokens


def _match_operator(text: str, index: int) -> str | None:
    for op in _OPERATORS:
        if text.startswith(op, index):
            return op
    return None
