"""SQL tokenizer for the mini query layer.

Supports exactly the surface the paper's prototype needs (Section 4.4
computes confidence and goodness with ``SELECT COUNT(DISTINCT …)``
queries) plus enough of SELECT/WHERE/GROUP BY for the examples: keyword
and identifier tokens, quoted strings, numbers, comparison operators,
parentheses, commas, ``*``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.relational.errors import ReproError

__all__ = ["SqlSyntaxError", "TokenType", "Token", "tokenize", "KEYWORDS"]


class SqlSyntaxError(ReproError, ValueError):
    """Raised on malformed SQL text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        suffix = f" (at offset {position})" if position is not None else ""
        super().__init__(f"{message}{suffix}")
        self.position = position


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    STAR = "star"
    END = "end"


KEYWORDS = {
    "select", "distinct", "count", "from", "where", "group", "by", "order",
    "and", "or", "not", "is", "null", "as", "asc", "desc", "limit", "true",
    "false",
}

_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">")
_PUNCTUATION = "(),"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword (case-insensitive)."""
        return self.type is TokenType.KEYWORD and self.value == word


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens; always ends with an END token."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch == "'":
            end = text.find("'", index + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated string literal", index)
            tokens.append(Token(TokenType.STRING, text[index + 1 : end], index))
            index = end + 1
            continue
        if ch == '"':
            end = text.find('"', index + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier", index)
            tokens.append(Token(TokenType.IDENTIFIER, text[index + 1 : end], index))
            index = end + 1
            continue
        matched_operator = _match_operator(text, index)
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, index))
            index += len(matched_operator)
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, index))
            index += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", index))
            index += 1
            continue
        if ch.isdigit() or (ch in "+-" and index + 1 < length and text[index + 1].isdigit()):
            end = index + 1
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, text[index:end], index))
            index = end
            continue
        if ch.isalpha() or ch == "_":
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, index))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, index))
            index = end
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", index)
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _match_operator(text: str, index: int) -> str | None:
    for op in _OPERATORS:
        if text.startswith(op, index):
            return op
    return None
