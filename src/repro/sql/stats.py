"""Statistics feeding the query optimizer's cost model.

The paper's profiling metadata — per-attribute distinct counts and null
counts — is exactly what a cost-based optimizer consumes, so this module
reuses it directly: :func:`relation_stats` reads
:class:`~repro.relational.statistics.RelationStatistics` (dictionary
cardinalities, free on encoded columns), :func:`store_stats` reads the
store manifest written at finalize time, and when the engine runs in
``approx="sketch"`` mode the distinct estimates are re-derived through
the PR-9 HyperLogLog so the optimizer exercises the same sketch path a
scale-out deployment would.

Two numbers matter downstream: ``distinct`` (possibly sketch-estimated,
drives join-order cost ranking) and ``exact_distinct`` (dictionary
cardinality or ``None``; uniqueness guards that must be *sound*, like
"this join key is a key", only ever trust the exact figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.relational.schema import RelationSchema
from repro.relational.types import AttributeType
from repro.sketch import active_approx, estimate_distinct

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.catalog import Catalog
    from repro.relational.relation import Relation
    from repro.storage.reader import StoredRelation

__all__ = [
    "ColumnStats",
    "TableStats",
    "StatisticsProvider",
    "relation_stats",
    "store_stats",
]


@dataclass(frozen=True)
class ColumnStats:
    """Optimizer-visible facts about one column."""

    distinct: float
    """Distinct non-null values (HLL estimate in sketch mode)."""

    null_count: int
    """NULLs in the column."""

    exact_distinct: int | None
    """Dictionary cardinality when known exactly, else ``None``.

    Soundness-critical guards (join-key uniqueness) use only this.
    """

    attr_type: AttributeType
    """Declared type, for the pushdown safety analysis."""


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column stats for one relation."""

    num_rows: int
    columns: Mapping[str, ColumnStats]
    schema: RelationSchema

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def is_unique_key(self, name: str) -> bool:
        """``True`` only when ``name`` is *provably* duplicate- and
        NULL-free: exact distinct count equals the row count."""
        stats = self.columns.get(name)
        if stats is None or stats.exact_distinct is None:
            return False
        return stats.null_count == 0 and stats.exact_distinct == self.num_rows


def _sketchable(distinct_exact: int, values) -> float:
    """The distinct estimate honoring the active approx mode.

    In sketch mode the dictionary's values run through the HyperLogLog —
    the estimate a chunked/distributed profile would produce — so the
    cost model sees sketch error instead of silently exact numbers.
    """
    if active_approx() != "sketch":
        return float(distinct_exact)
    return estimate_distinct(values)


def relation_stats(relation: "Relation") -> TableStats:
    """Build :class:`TableStats` from an in-memory relation.

    Distinct and null counts come from :class:`RelationStatistics`
    (dictionary metadata, no scan); sketch mode re-estimates distincts
    through the HLL.
    """
    rel_stats = relation.stats
    columns: dict[str, ColumnStats] = {}
    for attr in relation.schema.attributes:
        exact = rel_stats.cardinality(attr.name)
        columns[attr.name] = ColumnStats(
            distinct=_sketchable(exact, relation.column(attr.name).dictionary),
            null_count=rel_stats.null_count(attr.name),
            exact_distinct=exact,
            attr_type=attr.type,
        )
    return TableStats(
        num_rows=relation.num_rows, columns=columns, schema=relation.schema
    )


def store_stats(store: "StoredRelation") -> TableStats:
    """Build :class:`TableStats` from a chunked store's manifest.

    Global cardinality and null counts were persisted by
    ``StoreWriter.finalize``; nothing is decoded here.
    """
    columns: dict[str, ColumnStats] = {}
    for attr in store.schema.attributes:
        exact = store.cardinality(attr.name)
        columns[attr.name] = ColumnStats(
            distinct=float(exact),
            null_count=store.null_count(attr.name),
            exact_distinct=exact,
            attr_type=attr.type,
        )
    return TableStats(
        num_rows=store.num_rows, columns=columns, schema=store.schema
    )


@dataclass
class StatisticsProvider:
    """Lazily materializes :class:`TableStats` per table name.

    Backed by a catalog, a single relation (the ``execute_on_relation``
    path), or both; results are memoized for the lifetime of one
    optimizer invocation so repeated lookups during rule application
    stay O(1).
    """

    catalog: "Catalog | None" = None
    relation: "Relation | None" = None
    _cache: dict[str, TableStats | None] = field(default_factory=dict)

    def table_stats(self, table: str) -> TableStats | None:
        if table not in self._cache:
            self._cache[table] = self._build(table)
        return self._cache[table]

    def _build(self, table: str) -> TableStats | None:
        if self.relation is not None and self.relation.name == table:
            return relation_stats(self.relation)
        if self.catalog is not None and table in self.catalog:
            return relation_stats(self.catalog.relation(table))
        return None
