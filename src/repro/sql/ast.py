"""AST nodes for the mini SQL layer.

The grammar is deliberately small (DESIGN.md §2/S2); every node is an
immutable dataclass, and the executor dispatches on node type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

__all__ = [
    "ColumnRef",
    "Literal",
    "Comparison",
    "IsNull",
    "Not",
    "And",
    "Or",
    "CountStar",
    "CountDistinct",
    "SelectItem",
    "SelectQuery",
    "Expression",
]


@dataclass(frozen=True)
class ColumnRef:
    """A reference to an attribute by name."""

    name: str


@dataclass(frozen=True)
class Literal:
    """A constant: string, number, boolean, or NULL."""

    value: Any


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` with op ∈ {=, <>, <, <=, >, >=}."""

    op: str
    left: Union["Expression", ColumnRef, Literal]
    right: Union["Expression", ColumnRef, Literal]


@dataclass(frozen=True)
class IsNull:
    """``expr IS [NOT] NULL``."""

    operand: Union[ColumnRef, Literal]
    negated: bool = False


@dataclass(frozen=True)
class Not:
    """Logical negation."""

    operand: "Expression"


@dataclass(frozen=True)
class And:
    """Logical conjunction."""

    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Or:
    """Logical disjunction."""

    left: "Expression"
    right: "Expression"


Expression = Union[Comparison, IsNull, Not, And, Or, ColumnRef, Literal]


@dataclass(frozen=True)
class CountStar:
    """``COUNT(*)``."""


@dataclass(frozen=True)
class CountDistinct:
    """``COUNT(DISTINCT A, B, …)`` — the paper's workhorse aggregate."""

    columns: tuple[str, ...]


@dataclass(frozen=True)
class SelectItem:
    """One projection item: a column, ``COUNT(*)`` or ``COUNT(DISTINCT …)``."""

    expression: Union[ColumnRef, CountStar, CountDistinct]
    alias: str | None = None

    @property
    def output_name(self) -> str:
        """Column name of this item in the result."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        if isinstance(self.expression, CountStar):
            return "count"
        return "count_distinct"


@dataclass(frozen=True)
class SelectQuery:
    """A parsed ``SELECT`` statement."""

    items: tuple[SelectItem, ...]
    table: str
    where: Expression | None = None
    group_by: tuple[str, ...] = ()
    distinct: bool = False
    limit: int | None = None
