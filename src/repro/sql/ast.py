"""AST nodes for the SQL layer.

Every node is an immutable dataclass.  The planner (:mod:`repro.sql.plan`)
normalises a parsed :class:`SelectQuery` into a logical operator tree;
the executor never walks this AST directly except through the plan.

Pre-PR-7 constructors keep working: ``ColumnRef("a")``,
``SelectQuery(items=…, table=…, where=…, group_by=…, distinct=…,
limit=…)``, ``CountStar()`` and ``CountDistinct(("a", "b"))`` are all
unchanged — new fields default away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

__all__ = [
    "ColumnRef",
    "Literal",
    "Arith",
    "Comparison",
    "InList",
    "IsNull",
    "Not",
    "And",
    "Or",
    "CountStar",
    "CountDistinct",
    "AggregateCall",
    "AGGREGATE_FUNCS",
    "JoinClause",
    "OrderItem",
    "SelectItem",
    "SelectQuery",
    "Expression",
]


@dataclass(frozen=True)
class ColumnRef:
    """A reference to an attribute, optionally table-qualified (``t.col``)."""

    name: str
    table: str | None = None

    @property
    def qualified(self) -> str:
        """Display form: ``t.col`` when qualified, else ``col``."""
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    """A constant: string, number, boolean, or NULL."""

    value: Any


@dataclass(frozen=True)
class Arith:
    """``left <op> right`` with op ∈ {+, -, *, /}."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` with op ∈ {=, <>, <, <=, >, >=}."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class InList:
    """``expr [NOT] IN (literal, …)``."""

    operand: "Expression"
    values: tuple[Any, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    """``expr IS [NOT] NULL``."""

    operand: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class Not:
    """Logical negation."""

    operand: "Expression"


@dataclass(frozen=True)
class And:
    """Logical conjunction."""

    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Or:
    """Logical disjunction."""

    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class CountStar:
    """``COUNT(*)``."""


@dataclass(frozen=True)
class CountDistinct:
    """``COUNT(DISTINCT A, B, …)`` — the paper's workhorse aggregate."""

    columns: tuple[str, ...]


AGGREGATE_FUNCS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class AggregateCall:
    """``func(expr)`` for func ∈ COUNT/SUM/MIN/MAX/AVG.

    ``COUNT(*)`` and ``COUNT(DISTINCT …)`` keep their dedicated nodes
    for backward compatibility; the planner normalises all three shapes
    into one internal spec.
    """

    func: str
    argument: "Expression"
    distinct: bool = False


Expression = Union[
    Arith,
    Comparison,
    InList,
    IsNull,
    Not,
    And,
    Or,
    ColumnRef,
    Literal,
    CountStar,
    CountDistinct,
    AggregateCall,
]


@dataclass(frozen=True)
class JoinClause:
    """``[INNER|LEFT [OUTER]] JOIN table [AS alias] ON condition``."""

    kind: str  # "inner" | "left"
    table: str
    alias: str | None
    on: Expression


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` key with its direction."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectItem:
    """One projection item: any expression plus an optional alias."""

    expression: Expression
    alias: str | None = None

    @property
    def output_name(self) -> str:
        """Column name of this item in the result."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        if isinstance(self.expression, CountStar):
            return "count"
        if isinstance(self.expression, CountDistinct):
            return "count_distinct"
        if isinstance(self.expression, AggregateCall):
            return self.expression.func
        return "expr"


@dataclass(frozen=True)
class SelectQuery:
    """A parsed ``SELECT`` statement."""

    items: tuple[SelectItem, ...]
    table: str
    where: Expression | None = None
    group_by: tuple[str, ...] = ()
    distinct: bool = False
    limit: int | None = None
    table_alias: str | None = None
    joins: tuple[JoinClause, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    offset: int | None = None
