"""Executor for the mini SQL layer.

Evaluates a parsed :class:`~repro.sql.ast.SelectQuery` against a
:class:`~repro.relational.catalog.Catalog` (or a single relation).
Results come back as a :class:`ResultSet` — column names plus row
tuples — so examples and the CLI can print MySQL-style output.

Semantics follow SQL where it matters to the paper:

* ``COUNT(DISTINCT a, b)`` ignores rows where *any* counted attribute
  is NULL (MySQL behaviour; the FD layer forbids NULLs in FD attributes
  anyway, so engine-counting and SQL-counting agree on FD measures —
  a property the test suite checks);
* comparisons with NULL are never true (no three-valued logic beyond
  that: ``WHERE`` keeps a row only when the predicate evaluates to
  truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.relational.catalog import Catalog
from repro.relational.errors import ReproError
from repro.relational.relation import Relation

from .ast import (
    And,
    ColumnRef,
    Comparison,
    CountDistinct,
    CountStar,
    Expression,
    IsNull,
    Literal,
    Not,
    Or,
    SelectQuery,
)
from .parser import parse

__all__ = ["ResultSet", "SqlExecutionError", "execute", "execute_on_relation"]


class SqlExecutionError(ReproError):
    """Raised when a well-formed query cannot be evaluated."""


@dataclass(frozen=True)
class ResultSet:
    """Query output: ordered column names and row tuples."""

    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]

    @property
    def scalar(self) -> Any:
        """The single value of a 1×1 result (e.g. a COUNT)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlExecutionError(
                f"expected a scalar result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_text(self, max_rows: int = 20) -> str:
        """A plain-text rendering (used by the CLI)."""
        header = " | ".join(self.columns)
        divider = "-" * len(header)
        body = [
            " | ".join("NULL" if v is None else str(v) for v in row)
            for row in self.rows[:max_rows]
        ]
        if len(self.rows) > max_rows:
            body.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join([header, divider, *body])


def execute(catalog: Catalog, sql: str) -> ResultSet:
    """Parse and run ``sql`` against a catalog."""
    query = parse(sql)
    relation = catalog.relation(query.table)
    return _run(relation, query)


def execute_on_relation(relation: Relation, sql: str) -> ResultSet:
    """Parse and run ``sql``; the FROM clause must name this relation."""
    query = parse(sql)
    if query.table != relation.name:
        raise SqlExecutionError(
            f"query targets {query.table!r} but got relation {relation.name!r}"
        )
    return _run(relation, query)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def _run(relation: Relation, query: SelectQuery) -> ResultSet:
    rows = _filtered_rows(relation, query.where)
    if query.group_by:
        return _run_grouped(relation, query, rows)
    aggregates = [
        item for item in query.items
        if isinstance(item.expression, (CountStar, CountDistinct))
    ]
    if aggregates:
        if len(aggregates) != len(query.items):
            raise SqlExecutionError(
                "cannot mix aggregates and plain columns without GROUP BY"
            )
        values = tuple(
            _aggregate(relation, item.expression, rows) for item in query.items
        )
        columns = tuple(item.output_name for item in query.items)
        return ResultSet(columns, (values,))
    return _run_projection(relation, query, rows)


def _filtered_rows(relation: Relation, where: Expression | None) -> list[int]:
    if where is None:
        return list(range(relation.num_rows))
    names = relation.attribute_names
    columns = {name: relation.column(name) for name in names}
    keep: list[int] = []
    for row in range(relation.num_rows):
        values = {name: columns[name].value(row) for name in names}
        if _evaluate(where, values):
            keep.append(row)
    return keep


def _evaluate(expr: Expression, values: dict[str, Any]) -> bool:
    if isinstance(expr, Comparison):
        left = _operand(expr.left, values)
        right = _operand(expr.right, values)
        if left is None or right is None:
            return False
        try:
            if expr.op == "=":
                return left == right
            if expr.op == "<>":
                return left != right
            if expr.op == "<":
                return left < right
            if expr.op == "<=":
                return left <= right
            if expr.op == ">":
                return left > right
            if expr.op == ">=":
                return left >= right
        except TypeError:
            raise SqlExecutionError(
                f"cannot compare {left!r} and {right!r} with {expr.op}"
            ) from None
        raise SqlExecutionError(f"unknown operator {expr.op!r}")
    if isinstance(expr, IsNull):
        value = _operand(expr.operand, values)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, Not):
        return not _evaluate(expr.operand, values)
    if isinstance(expr, And):
        return _evaluate(expr.left, values) and _evaluate(expr.right, values)
    if isinstance(expr, Or):
        return _evaluate(expr.left, values) or _evaluate(expr.right, values)
    raise SqlExecutionError(f"cannot evaluate {expr!r} as a predicate")


def _operand(expr: Any, values: dict[str, Any]) -> Any:
    if isinstance(expr, ColumnRef):
        if expr.name not in values:
            raise SqlExecutionError(f"unknown column {expr.name!r}")
        return values[expr.name]
    if isinstance(expr, Literal):
        return expr.value
    raise SqlExecutionError(f"cannot evaluate operand {expr!r}")


def _aggregate(relation: Relation, expression: Any, rows: list[int]) -> int:
    if isinstance(expression, CountStar):
        return len(rows)
    if isinstance(expression, CountDistinct):
        columns = [relation.column(name) for name in expression.columns]
        seen: set[tuple[int, ...]] = set()
        for row in rows:
            codes = tuple(column.codes[row] for column in columns)
            if any(code < 0 for code in codes):  # SQL: NULLs are not counted
                continue
            seen.add(codes)
        return len(seen)
    raise SqlExecutionError(f"unsupported aggregate {expression!r}")


def _run_projection(
    relation: Relation, query: SelectQuery, rows: list[int]
) -> ResultSet:
    names: list[str] = []
    for item in query.items:
        assert isinstance(item.expression, ColumnRef)
        if item.expression.name == "*":
            names.extend(relation.attribute_names)
        else:
            names.append(item.expression.name)
    columns = [relation.column(name) for name in names]
    output_names: list[str] = []
    star_used = any(
        isinstance(item.expression, ColumnRef) and item.expression.name == "*"
        for item in query.items
    )
    if star_used:
        output_names = list(names)
    else:
        output_names = [item.output_name for item in query.items]
    result_rows: list[tuple[Any, ...]] = []
    seen: set[tuple[Any, ...]] = set()
    for row in rows:
        record = tuple(column.value(row) for column in columns)
        if query.distinct:
            if record in seen:
                continue
            seen.add(record)
        result_rows.append(record)
        if query.limit is not None and len(result_rows) >= query.limit:
            break
    return ResultSet(tuple(output_names), tuple(result_rows))


def _run_grouped(
    relation: Relation, query: SelectQuery, rows: list[int]
) -> ResultSet:
    group_columns = [relation.column(name) for name in query.group_by]
    groups: dict[tuple[int, ...], list[int]] = {}
    for row in rows:
        key = tuple(column.codes[row] for column in group_columns)
        groups.setdefault(key, []).append(row)
    output_names: list[str] = []
    for item in query.items:
        if isinstance(item.expression, ColumnRef):
            if item.expression.name not in query.group_by:
                raise SqlExecutionError(
                    f"column {item.expression.name!r} must appear in GROUP BY"
                )
        output_names.append(item.output_name)
    result_rows: list[tuple[Any, ...]] = []
    for key, group_rows in groups.items():
        record: list[Any] = []
        for item in query.items:
            if isinstance(item.expression, ColumnRef):
                position = query.group_by.index(item.expression.name)
                column = group_columns[position]
                code = key[position]
                record.append(None if code < 0 else column.dictionary[code])
            else:
                record.append(_aggregate(relation, item.expression, group_rows))
        result_rows.append(tuple(record))
        if query.limit is not None and len(result_rows) >= query.limit:
            break
    return ResultSet(tuple(output_names), tuple(result_rows))
