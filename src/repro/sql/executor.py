"""Plan executor: the third stage of parse → plan → execute.

A logical plan (:mod:`repro.sql.plan`) is evaluated bottom-up over
*frames* — ordered columns with a name and a table qualifier each.
Results come back as a :class:`ResultSet` (column names plus row
tuples with dict-style access).

Two engines implement every operator:

* ``"columnar"`` (default) — frames hold dictionary-encoded
  :class:`~repro.relational.encoding.EncodedColumn` vectors.  Filters
  compile to the typed predicate IR of :mod:`repro.relational.expr`
  and run as vectorized masks through the active kernel backend; joins
  remap one side's dictionary into the other's code space and run the
  ``hash_join_index`` / ``left_join_index`` kernels; grouping rides
  ``group_rows``; ORDER BY pre-computes integer ranks per dictionary
  entry and argsorts them with the ``sort_index`` kernel.
* ``"rowdict"`` — frames hold decoded row tuples and every operator is
  a per-row tree walk, retained as the *equivalence oracle*: the
  property suite asserts both engines return identical results on both
  kernel backends, NULL/NaN edge cases included.

Name resolution is *static and eager* in both engines: every column
reference in a filter, projection, join key, or sort key is resolved
against the input frame (respecting ``t.col`` qualifiers, rejecting
ambiguous names) before any row is evaluated.

Deliberately shared between the engines — they define the semantics,
so sharing is what makes the oracle comparison byte-exact:

* :func:`_fold_spec` — aggregate folds (``SUM``/``MIN``/``MAX``/``AVG``
  skip NULLs and return NULL on empty input; ``COUNT`` returns 0), so
  float accumulation order is identical;
* :func:`_distinct_ranks` — the total order ORDER BY uses
  (NULL smallest, then NaN, then value order; incomparable mixes
  raise), applied to each engine's first-seen distinct values.

SQL semantics that matter to the paper are unchanged from the
pre-plan executor: ``COUNT(DISTINCT a, b)`` ignores rows where any
counted attribute is NULL, and comparisons with NULL are never true
(two-valued logic; ``NOT (A = 3)`` is true on a NULL row).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.relational import expr as ir
from repro.relational import kernels
from repro.relational.catalog import Catalog
from repro.relational.encoding import EncodedColumn, remap_dictionary
from repro.relational.errors import UnknownAttributeError, validate_engine
from repro.relational.relation import Relation

from .ast import (
    AggregateCall,
    And,
    Arith,
    ColumnRef,
    Comparison,
    CountDistinct,
    CountStar,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    SelectQuery,
)
from .errors import PlanError, SqlExecutionError
from .optimize import optimize_plan, resolve_optimize
from .parser import parse
from .stats import StatisticsProvider
from .plan import (
    Aggregate,
    AggregateSpec,
    Filter,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    Sort,
    SortKey,
    plan_query,
)

__all__ = [
    "ResultRow",
    "ResultSet",
    "SqlExecutionError",
    "PlanError",
    "compile_expression",
    "execute",
    "execute_on_relation",
    "execute_plan",
]

_ENGINES = ("columnar", "rowdict")

#: Code-space sentinel for a right-side NULL join key: never equal to a
#: left code (≥ 0), a left NULL (-1), or an unseen value (-2), so SQL's
#: "NULL never matches" falls out of plain int equality.
_JOIN_NULL = -3


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
class ResultRow(tuple):
    """One result row: a tuple that also answers to column names."""

    def __new__(cls, values: Iterable[Any], names: tuple[str, ...]):
        row = super().__new__(cls, values)
        row._names = names
        return row

    def __getitem__(self, key):
        if isinstance(key, str):
            try:
                index = self._names.index(key)
            except ValueError:
                raise KeyError(f"unknown column {key!r}") from None
            return tuple.__getitem__(self, index)
        return tuple.__getitem__(self, key)

    def as_dict(self) -> dict[str, Any]:
        """The row as ``{column: value}`` (first wins on duplicates)."""
        out: dict[str, Any] = {}
        for name, value in zip(self._names, self):
            out.setdefault(name, value)
        return out


@dataclass(frozen=True)
class ResultSet:
    """Query output: ordered column names and row tuples."""

    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]

    @property
    def column_names(self) -> tuple[str, ...]:
        """Alias of :attr:`columns` (the facade-facing name)."""
        return self.columns

    @property
    def scalar(self) -> Any:
        """The single value of a 1×1 result (e.g. a COUNT)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlExecutionError(
                f"expected a scalar result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index: int):
        return self.rows[index]

    def to_text(self, max_rows: int = 20) -> str:
        """A plain-text rendering (used by the CLI)."""
        header = " | ".join(self.columns)
        divider = "-" * len(header)
        body = [
            " | ".join("NULL" if v is None else str(v) for v in row)
            for row in self.rows[:max_rows]
        ]
        if len(self.rows) > max_rows:
            body.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join([header, divider, *body])

    def to_csv(self) -> str:
        """The result as CSV text (header row first, NULL → empty)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(["" if v is None else v for v in row])
        return buffer.getvalue()


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _maybe_optimize(
    plan: Plan,
    catalog: Catalog | None,
    relation: Relation | None,
    optimize: str | None,
) -> Plan:
    """Apply the optimizer unless the effective mode is ``"off"``.

    ``optimize`` overrides per call (``"on"``/``"off"``); ``None``
    defers to :func:`repro.sql.optimize.active_optimize` — installed by
    ``EngineConfig(optimize=...)`` / ``$REPRO_OPTIMIZE``.  The ``"off"``
    path is the byte-identical oracle the equivalence suite pins
    against.
    """
    if resolve_optimize(optimize) != "on":
        return plan
    return optimize_plan(
        plan, StatisticsProvider(catalog=catalog, relation=relation)
    )


def execute(
    catalog: Catalog,
    sql: str,
    engine: str = "columnar",
    optimize: str | None = None,
) -> ResultSet:
    """Parse, plan, optimize and run ``sql`` against a catalog."""
    return execute_plan(catalog, plan_query(parse(sql)), engine, optimize=optimize)


def execute_plan(
    catalog: Catalog,
    plan: Plan,
    engine: str = "columnar",
    optimize: str | None = None,
) -> ResultSet:
    """Run an already-built logical plan against a catalog."""
    validate_engine(engine, _ENGINES, SqlExecutionError)
    plan = _maybe_optimize(plan, catalog, None, optimize)
    if engine == "columnar":
        return _ColumnarEngine(catalog, None).run(plan)
    return _RowdictEngine(catalog, None).run(plan)


def execute_on_relation(
    relation: Relation,
    sql: str,
    engine: str = "columnar",
    optimize: str | None = None,
) -> ResultSet:
    """Parse and run ``sql``; the FROM clause must name this relation."""
    query = parse(sql)
    if query.table != relation.name:
        raise SqlExecutionError(
            f"query targets {query.table!r} but got relation {relation.name!r}"
        )
    return _run(relation, query, engine, optimize=optimize)


def _run(
    relation: Relation,
    query: SelectQuery,
    engine: str = "columnar",
    optimize: str | None = None,
) -> ResultSet:
    """Plan and run a parsed query against one relation (no catalog).

    Retained under its historical name: the advisor's index-aware
    executor and the oracle property suite call it directly.
    """
    validate_engine(engine, _ENGINES, SqlExecutionError)
    plan = plan_query(query)
    plan = _maybe_optimize(plan, None, relation, optimize)
    if engine == "columnar":
        return _ColumnarEngine(None, relation).run(plan)
    return _RowdictEngine(None, relation).run(plan)


# ----------------------------------------------------------------------
# AST → IR compilation (name-based; kept as a public compat surface)
# ----------------------------------------------------------------------
def compile_expression(expression: Expression) -> ir.Predicate:
    """Compile a parsed WHERE AST into the relational predicate IR.

    Column references compile by *name* (qualifiers are dropped); the
    executor itself compiles by resolved frame position instead.
    """
    if isinstance(expression, ColumnRef):
        return ir.Col(expression.name)
    if isinstance(expression, Literal):
        return ir.Lit(expression.value)
    if isinstance(expression, Arith):
        return ir.Arith(
            expression.op,
            compile_expression(expression.left),
            compile_expression(expression.right),
        )
    if isinstance(expression, Comparison):
        return ir.Cmp(
            expression.op,
            compile_expression(expression.left),
            compile_expression(expression.right),
        )
    if isinstance(expression, InList):
        membership = ir.InList(compile_expression(expression.operand), expression.values)
        return ir.Not(membership) if expression.negated else membership
    if isinstance(expression, IsNull):
        return ir.IsNull(compile_expression(expression.operand), expression.negated)
    if isinstance(expression, Not):
        return ir.Not(compile_expression(expression.operand))
    if isinstance(expression, And):
        return ir.And(
            compile_expression(expression.left), compile_expression(expression.right)
        )
    if isinstance(expression, Or):
        return ir.Or(
            compile_expression(expression.left), compile_expression(expression.right)
        )
    raise SqlExecutionError(f"cannot evaluate {expression!r} as a predicate")


# ----------------------------------------------------------------------
# Shared semantics
# ----------------------------------------------------------------------
def _resolve_ref(
    names: Sequence[str], quals: Sequence[str | None], ref: ColumnRef
) -> int:
    """Static name resolution against a frame schema."""
    matches = [
        i
        for i, (name, qual) in enumerate(zip(names, quals))
        if name == ref.name and (ref.table is None or qual == ref.table)
    ]
    if not matches:
        raise SqlExecutionError(f"unknown column {ref.qualified!r}")
    if len(matches) > 1:
        raise SqlExecutionError(f"ambiguous column {ref.qualified!r}")
    return matches[0]


def _fold_spec(
    spec: AggregateSpec, arg_columns: Sequence[Sequence[Any]], rows: Iterable[int]
) -> Any:
    """One aggregate value over one group.

    ``arg_columns`` holds the fully evaluated argument values (whole
    frame); ``rows`` selects the group.  Rows with a NULL in any
    argument are skipped (SQL), DISTINCT keeps first-seen unique
    tuples, and the fold iterates in group row order — shared between
    both engines so float results are bit-identical.
    """
    if not spec.arguments:  # COUNT(*)
        return sum(1 for _ in rows)
    tuples: list[tuple[Any, ...]] = []
    for row in rows:
        values = tuple(column[row] for column in arg_columns)
        if any(value is None for value in values):
            continue
        tuples.append(values)
    if spec.distinct:
        seen: dict[tuple[Any, ...], None] = {}
        for values in tuples:
            seen.setdefault(values, None)
        tuples = list(seen)
    if spec.func == "count":
        return len(tuples)
    if not tuples:
        return None
    values = [t[0] for t in tuples]
    try:
        if spec.func == "sum":
            return sum(values[1:], values[0])
        if spec.func == "min":
            return min(values)
        if spec.func == "max":
            return max(values)
        if spec.func == "avg":
            return sum(values[1:], values[0]) / len(values)
    except TypeError as error:
        raise SqlExecutionError(f"cannot aggregate {spec.func}: {error}") from None
    raise SqlExecutionError(f"unknown aggregate function {spec.func!r}")


_UNSET = object()


def _distinct_ranks(values: Sequence[Any]) -> list[int]:
    """ORDER BY ranks for a sequence of distinct values.

    NaN entries all rank 1 (after NULL's implicit 0, before every
    comparable value); comparable values are ranked by sorted order
    with ``==``-equal entries sharing a rank (stable sort then keeps
    their input order).  Raises on an incomparable mix.
    """
    ranks = [1] * len(values)
    comparable = [(v, i) for i, v in enumerate(values) if v == v]
    try:
        comparable.sort(key=lambda pair: pair[0])
    except TypeError as error:
        raise SqlExecutionError(f"cannot order by mixed types: {error}") from None
    rank = 1
    previous: Any = _UNSET
    for value, index in comparable:
        if previous is _UNSET or not (value == previous):
            rank += 1
        ranks[index] = rank
        previous = value
    return ranks


def _arith_value(op: str, left: Any, right: Any) -> Any:
    """Shared scalar arithmetic: NULL propagates, errors are uniform."""
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
    except TypeError:
        raise SqlExecutionError(f"cannot compute {left!r} {op} {right!r}") from None
    except ZeroDivisionError:
        raise SqlExecutionError(f"division by zero: {left!r} / {right!r}") from None
    raise SqlExecutionError(f"unknown arithmetic operator {op!r}")


def _peel_result_shape(plan: Plan) -> tuple[Limit | None, Project]:
    limit: Limit | None = None
    if isinstance(plan, Limit):
        limit = plan
        plan = plan.source
    if not isinstance(plan, Project):
        raise SqlExecutionError(
            f"plan root must be Project or Limit, got {type(plan).__name__}"
        )
    return limit, plan


def _slice_positions(
    positions: Sequence[int], limit: Limit | None
) -> Sequence[int]:
    if limit is None:
        return positions
    start = limit.offset
    if limit.limit is None:
        return positions[start:]
    return positions[start : start + limit.limit]


# ----------------------------------------------------------------------
# Columnar engine
# ----------------------------------------------------------------------
class _CFrame:
    """An ordered set of encoded columns with names and qualifiers."""

    __slots__ = ("names", "quals", "columns", "num_rows")

    def __init__(
        self,
        names: list[str],
        quals: list[str | None],
        columns: list[EncodedColumn],
        num_rows: int,
    ) -> None:
        self.names = names
        self.quals = quals
        self.columns = columns
        self.num_rows = num_rows

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        qualifier: str,
        subset: tuple[str, ...] | None = None,
    ) -> "_CFrame":
        names = list(relation.attribute_names)
        if subset is not None:
            names = [name for name in names if name in subset] or names[:1]
        columns = [relation.column(name) for name in names]
        return cls(names, [qualifier] * len(names), columns, relation.num_rows)

    def take(self, rows: Sequence[int]) -> "_CFrame":
        columns = [column.take(rows) for column in self.columns]
        return _CFrame(self.names, self.quals, columns, len(rows))

    def resolve(self, ref: ColumnRef) -> int:
        return _resolve_ref(self.names, self.quals, ref)


class _FrameSchema:
    """Just enough schema for the IR mask evaluator's name probes."""

    __slots__ = ("_count",)

    def __init__(self, count: int) -> None:
        self._count = count

    def position(self, name: str) -> int:
        index = int(name)
        if not 0 <= index < self._count:
            raise UnknownAttributeError(name)
        return index


class _FrameRelation:
    """Adapter: a frame pretending to be a Relation for the IR evaluator.

    Column "names" are frame positions as strings — the executor
    resolves real names statically and compiles ``Col(str(position))``.
    """

    def __init__(self, frame: _CFrame) -> None:
        self._frame = frame
        self.schema = _FrameSchema(len(frame.columns))

    @property
    def num_rows(self) -> int:
        return self._frame.num_rows

    @property
    def attribute_names(self) -> list[str]:
        return [str(i) for i in range(len(self._frame.columns))]

    def column(self, name: str) -> EncodedColumn:
        return self._frame.columns[int(name)]


def _compact(column: EncodedColumn) -> EncodedColumn:
    """Re-encode so the dictionary is exactly the present values,
    first-seen — the invariant ORDER BY's rank tables rely on."""
    return column.take(range(len(column.codes)))


class _ColumnarEngine:
    def __init__(self, catalog: Catalog | None, relation: Relation | None) -> None:
        self._catalog = catalog
        self._relation = relation

    def run(self, plan: Plan) -> ResultSet:
        limit, project = _peel_result_shape(plan)
        frame = self._frame(project.source)
        names, columns = self._project_columns(frame, project)
        backend = kernels.get_backend()
        if project.distinct:
            codes = [
                column.kernel_codes()
                if isinstance(column, EncodedColumn)
                else EncodedColumn.from_values(column).kernel_codes()
                for column in columns
            ]
            positions: Sequence[int] = list(backend.distinct_rows(codes))
        else:
            positions = range(frame.num_rows)
        positions = _slice_positions(positions, limit)
        out_rows = []
        decoded: list[list[Any]] = []
        for column in columns:
            if isinstance(column, EncodedColumn):
                gathered = backend.gather(column.kernel_codes(), list(positions))
                dictionary = column.dictionary
                decoded.append(
                    [None if code < 0 else dictionary[code] for code in gathered]
                )
            else:
                decoded.append([column[p] for p in positions])
        names_tuple = tuple(names)
        for i in range(len(positions)):
            out_rows.append(ResultRow((column[i] for column in decoded), names_tuple))
        return ResultSet(names_tuple, tuple(out_rows))

    # -- operators ------------------------------------------------------
    def _frame(self, plan: Plan) -> _CFrame:
        if isinstance(plan, Scan):
            return _CFrame.from_relation(
                self._scan_relation(plan), plan.binding, plan.columns
            )
        if isinstance(plan, Filter):
            return self._filter(self._frame(plan.source), plan)
        if isinstance(plan, Join):
            return self._join(self._frame(plan.source), plan)
        if isinstance(plan, Aggregate):
            return self._aggregate(self._frame(plan.source), plan)
        if isinstance(plan, Sort):
            return self._sort(self._frame(plan.source), plan.keys)
        raise SqlExecutionError(f"unsupported plan node {type(plan).__name__}")

    def _scan_relation(self, scan: Scan) -> Relation:
        if self._catalog is None:
            assert self._relation is not None
            return self._relation
        return self._catalog.relation(scan.table)

    def _filter(self, frame: _CFrame, node: Filter) -> _CFrame:
        predicate = self._compile(frame, node.predicate)
        try:
            rows = ir.filter_rows(_FrameRelation(frame), predicate)
        except (ir.ExpressionError, UnknownAttributeError) as error:
            raise SqlExecutionError(str(error)) from None
        return frame.take(rows)

    def _compile(self, frame: _CFrame, expression: Expression) -> Any:
        if isinstance(expression, ColumnRef):
            return ir.Col(str(frame.resolve(expression)))
        if isinstance(expression, Literal):
            return ir.Lit(expression.value)
        if isinstance(expression, Arith):
            return ir.Arith(
                expression.op,
                self._compile(frame, expression.left),
                self._compile(frame, expression.right),
            )
        if isinstance(expression, Comparison):
            return ir.Cmp(
                expression.op,
                self._compile(frame, expression.left),
                self._compile(frame, expression.right),
            )
        if isinstance(expression, InList):
            membership = ir.InList(
                self._compile(frame, expression.operand), expression.values
            )
            return ir.Not(membership) if expression.negated else membership
        if isinstance(expression, IsNull):
            return ir.IsNull(
                self._compile(frame, expression.operand), expression.negated
            )
        if isinstance(expression, Not):
            return ir.Not(self._compile(frame, expression.operand))
        if isinstance(expression, And):
            return ir.And(
                self._compile(frame, expression.left),
                self._compile(frame, expression.right),
            )
        if isinstance(expression, Or):
            return ir.Or(
                self._compile(frame, expression.left),
                self._compile(frame, expression.right),
            )
        raise SqlExecutionError(f"cannot evaluate {expression!r} as a predicate")

    def _join(self, frame: _CFrame, node: Join) -> _CFrame:
        if self._catalog is None:
            raise SqlExecutionError("joins require a catalog")
        right_rel = self._catalog.relation(node.table)
        right = _CFrame.from_relation(right_rel, node.binding, node.columns)
        backend = kernels.get_backend()
        left_codes = []
        right_codes = []
        for left_ref, right_ref in zip(node.left_keys, node.right_keys):
            left_col = frame.columns[frame.resolve(left_ref)]
            right_col = right.columns[right.resolve(right_ref)]
            # SQL ON-equality: NULL never matches (right NULLs leave the
            # shared code space entirely), NaN never matches (== policy).
            mapping = remap_dictionary(right_col, left_col, nan_matches=False)
            left_codes.append(left_col.kernel_codes())
            right_codes.append(
                backend.remap_codes(right_col.kernel_codes(), mapping, _JOIN_NULL)
            )
        if node.kind == "left":
            left_rows, right_rows = backend.left_join_index(left_codes, right_codes)
            right_columns = [
                _compact(
                    EncodedColumn(
                        list(backend.gather_padded(column.kernel_codes(), right_rows)),
                        list(column.dictionary),
                    )
                )
                for column in right.columns
            ]
        else:
            left_rows, right_rows = backend.hash_join_index(left_codes, right_codes)
            right_columns = [column.take(right_rows) for column in right.columns]
        left_columns = [column.take(left_rows) for column in frame.columns]
        return _CFrame(
            frame.names + right.names,
            frame.quals + right.quals,
            left_columns + right_columns,
            len(left_columns[0].codes) if left_columns else 0,
        )

    def _eval_values(self, frame: _CFrame, expression: Expression) -> list[Any]:
        """Evaluate a value expression over every frame row."""
        if isinstance(expression, ColumnRef):
            return frame.columns[frame.resolve(expression)].values()
        if isinstance(expression, Literal):
            return [expression.value] * frame.num_rows
        if isinstance(expression, Arith):
            left = self._eval_values(frame, expression.left)
            right = self._eval_values(frame, expression.right)
            op = expression.op
            return [_arith_value(op, l, r) for l, r in zip(left, right)]
        raise SqlExecutionError(f"cannot evaluate {expression!r} as a value")

    def _aggregate(self, frame: _CFrame, node: Aggregate) -> _CFrame:
        backend = kernels.get_backend()
        key_positions = [frame.resolve(key) for key in node.group_by]
        if key_positions:
            key_codes = [frame.columns[p].kernel_codes() for p in key_positions]
            groups = backend.group_rows(key_codes, list(range(frame.num_rows)))
        else:
            groups = [list(range(frame.num_rows))]
        arg_columns_per_spec = [
            [self._eval_values(frame, argument) for argument in spec.arguments]
            for spec in node.specs
        ]
        first_rows = [group[0] for group in groups] if key_positions else []
        columns = [frame.columns[p].take(first_rows) for p in key_positions]
        names = [frame.names[p] for p in key_positions]
        quals: list[str | None] = [frame.quals[p] for p in key_positions]
        for index, (spec, arg_columns) in enumerate(
            zip(node.specs, arg_columns_per_spec)
        ):
            values = [_fold_spec(spec, arg_columns, group) for group in groups]
            columns.append(EncodedColumn.from_values(values))
            names.append(f"__agg{index}")
            quals.append(None)
        return _CFrame(names, quals, columns, len(groups))

    def _sort(self, frame: _CFrame, keys: tuple[SortKey, ...]) -> _CFrame:
        backend = kernels.get_backend()
        rank_columns = []
        for key in keys:
            if isinstance(key.expression, ColumnRef):
                column = frame.columns[frame.resolve(key.expression)]
            else:
                column = EncodedColumn.from_values(
                    self._eval_values(frame, key.expression)
                )
            ranks = _distinct_ranks(column.dictionary)
            sign = -1 if key.descending else 1
            rank_columns.append(
                [sign * (0 if code < 0 else ranks[code]) for code in column.codes]
            )
        order = backend.sort_index(rank_columns)
        return frame.take(list(order))

    def _project_columns(
        self, frame: _CFrame, node: Project
    ) -> tuple[list[str], list[Any]]:
        """Output names plus one column each — an EncodedColumn for plain
        references, a value list for computed expressions."""
        if node.names == ("*",):
            return list(frame.names), list(frame.columns)
        names = list(node.names)
        columns: list[Any] = []
        for expression in node.expressions:
            if isinstance(expression, ColumnRef):
                columns.append(frame.columns[frame.resolve(expression)])
            else:
                columns.append(self._eval_values(frame, expression))
        return names, columns


# ----------------------------------------------------------------------
# Row-dict engine (the retained equivalence oracle)
# ----------------------------------------------------------------------
class _RFrame:
    """Decoded row tuples plus the same (names, qualifiers) schema."""

    __slots__ = ("names", "quals", "rows")

    def __init__(
        self, names: list[str], quals: list[str | None], rows: list[tuple[Any, ...]]
    ) -> None:
        self.names = names
        self.quals = quals
        self.rows = rows

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        qualifier: str,
        subset: tuple[str, ...] | None = None,
    ) -> "_RFrame":
        names = list(relation.attribute_names)
        if subset is not None:
            names = [name for name in names if name in subset] or names[:1]
        columns = [relation.column(name) for name in names]
        rows = [
            tuple(column.value(row) for column in columns)
            for row in range(relation.num_rows)
        ]
        return cls(names, [qualifier] * len(names), rows)

    def resolve(self, ref: ColumnRef) -> int:
        return _resolve_ref(self.names, self.quals, ref)


class _RowdictEngine:
    def __init__(self, catalog: Catalog | None, relation: Relation | None) -> None:
        self._catalog = catalog
        self._relation = relation

    def run(self, plan: Plan) -> ResultSet:
        limit, project = _peel_result_shape(plan)
        frame = self._frame(project.source)
        if project.names == ("*",):
            names = tuple(frame.names)
            out_rows = list(frame.rows)
        else:
            names = tuple(project.names)
            for expression in project.expressions:
                self._bind(frame, expression)
            out_rows = [
                tuple(
                    self._value(expression, frame, row)
                    for expression in project.expressions
                )
                for row in frame.rows
            ]
        if project.distinct:
            seen: dict[tuple[Any, ...], None] = {}
            deduped = []
            for row in out_rows:
                if row not in seen:
                    seen[row] = None
                    deduped.append(row)
            out_rows = deduped
        positions = _slice_positions(range(len(out_rows)), limit)
        return ResultSet(
            names, tuple(ResultRow(out_rows[p], names) for p in positions)
        )

    # -- operators ------------------------------------------------------
    def _frame(self, plan: Plan) -> _RFrame:
        if isinstance(plan, Scan):
            return _RFrame.from_relation(
                self._scan_relation(plan), plan.binding, plan.columns
            )
        if isinstance(plan, Filter):
            return self._filter(self._frame(plan.source), plan)
        if isinstance(plan, Join):
            return self._join(self._frame(plan.source), plan)
        if isinstance(plan, Aggregate):
            return self._aggregate(self._frame(plan.source), plan)
        if isinstance(plan, Sort):
            return self._sort(self._frame(plan.source), plan.keys)
        raise SqlExecutionError(f"unsupported plan node {type(plan).__name__}")

    def _scan_relation(self, scan: Scan) -> Relation:
        if self._catalog is None:
            assert self._relation is not None
            return self._relation
        return self._catalog.relation(scan.table)

    def _bind(self, frame: _RFrame, expression: Expression) -> None:
        """Eager static resolution of every column reference."""
        if isinstance(expression, ColumnRef):
            frame.resolve(expression)
            return
        if isinstance(expression, (Arith, Comparison, And, Or)):
            self._bind(frame, expression.left)
            self._bind(frame, expression.right)
            return
        if isinstance(expression, (IsNull, Not, InList)):
            self._bind(frame, expression.operand)
            return
        if isinstance(expression, (Literal, CountStar, CountDistinct)):
            return
        if isinstance(expression, AggregateCall):
            self._bind(frame, expression.argument)
            return
        raise SqlExecutionError(f"cannot evaluate {expression!r}")

    def _filter(self, frame: _RFrame, node: Filter) -> _RFrame:
        self._bind(frame, node.predicate)
        kept = [
            row
            for row in frame.rows
            if self._truth(node.predicate, frame, row)
        ]
        return _RFrame(frame.names, frame.quals, kept)

    def _value(self, expression: Expression, frame: _RFrame, row: tuple) -> Any:
        if isinstance(expression, ColumnRef):
            return row[frame.resolve(expression)]
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, Arith):
            return _arith_value(
                expression.op,
                self._value(expression.left, frame, row),
                self._value(expression.right, frame, row),
            )
        raise SqlExecutionError(f"cannot evaluate {expression!r} as a value")

    def _truth(self, expression: Expression, frame: _RFrame, row: tuple) -> bool:
        if isinstance(expression, Comparison):
            left = self._value(expression.left, frame, row)
            right = self._value(expression.right, frame, row)
            if left is None or right is None:
                return False
            op = expression.op
            try:
                if op == "=":
                    return bool(left == right)
                if op == "<>":
                    return bool(left != right)
                if op == "<":
                    return bool(left < right)
                if op == "<=":
                    return bool(left <= right)
                if op == ">":
                    return bool(left > right)
                if op == ">=":
                    return bool(left >= right)
            except TypeError:
                raise SqlExecutionError(
                    f"cannot compare {left!r} and {right!r} with {op}"
                ) from None
            raise SqlExecutionError(f"unknown comparison operator {op!r}")
        if isinstance(expression, InList):
            value = self._value(expression.operand, frame, row)
            if value is None:
                return expression.negated
            hit = any(item is not None and value == item for item in expression.values)
            return (not hit) if expression.negated else hit
        if isinstance(expression, IsNull):
            value = self._value(expression.operand, frame, row)
            return (value is not None) if expression.negated else (value is None)
        if isinstance(expression, Not):
            return not self._truth(expression.operand, frame, row)
        if isinstance(expression, And):
            return self._truth(expression.left, frame, row) and self._truth(
                expression.right, frame, row
            )
        if isinstance(expression, Or):
            return self._truth(expression.left, frame, row) or self._truth(
                expression.right, frame, row
            )
        raise SqlExecutionError(f"cannot evaluate {expression!r} as a predicate")

    def _join(self, frame: _RFrame, node: Join) -> _RFrame:
        if self._catalog is None:
            raise SqlExecutionError("joins require a catalog")
        right = _RFrame.from_relation(
            self._catalog.relation(node.table), node.binding, node.columns
        )
        left_positions = [frame.resolve(ref) for ref in node.left_keys]
        right_positions = [right.resolve(ref) for ref in node.right_keys]
        build: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
        for row in right.rows:
            key = tuple(row[p] for p in right_positions)
            if any(v is None or v != v for v in key):  # NULL/NaN never match
                continue
            build.setdefault(key, []).append(row)
        padding = (None,) * len(right.names)
        out_rows: list[tuple[Any, ...]] = []
        for row in frame.rows:
            key = tuple(row[p] for p in left_positions)
            if any(v is None or v != v for v in key):
                matches = None
            else:
                matches = build.get(key)
            if matches is None:
                if node.kind == "left":
                    out_rows.append(row + padding)
                continue
            for match in matches:
                out_rows.append(row + match)
        return _RFrame(
            frame.names + right.names, frame.quals + right.quals, out_rows
        )

    def _aggregate(self, frame: _RFrame, node: Aggregate) -> _RFrame:
        key_positions = [frame.resolve(key) for key in node.group_by]
        groups: dict[tuple[Any, ...], list[int]] = {}
        if key_positions:
            for index, row in enumerate(frame.rows):
                key = tuple(row[p] for p in key_positions)
                groups.setdefault(key, []).append(index)
            group_rows = list(groups.values())
        else:
            group_rows = [list(range(len(frame.rows)))]
        arg_columns_per_spec = []
        for spec in node.specs:
            for argument in spec.arguments:
                self._bind(frame, argument)
            arg_columns_per_spec.append(
                [
                    [self._value(argument, frame, row) for row in frame.rows]
                    for argument in spec.arguments
                ]
            )
        out_rows = []
        for rows in group_rows:
            record = [frame.rows[rows[0]][p] for p in key_positions]
            for spec, arg_columns in zip(node.specs, arg_columns_per_spec):
                record.append(_fold_spec(spec, arg_columns, rows))
            out_rows.append(tuple(record))
        names = [frame.names[p] for p in key_positions]
        quals: list[str | None] = [frame.quals[p] for p in key_positions]
        for index in range(len(node.specs)):
            names.append(f"__agg{index}")
            quals.append(None)
        return _RFrame(names, quals, out_rows)

    def _sort(self, frame: _RFrame, keys: tuple[SortKey, ...]) -> _RFrame:
        rank_columns: list[list[int]] = []
        for key in keys:
            self._bind(frame, key.expression)
            values = [
                self._value(key.expression, frame, row) for row in frame.rows
            ]
            # First-seen distinct values (identity-aware for NaN, like
            # the columnar dictionary), ranked by the shared total order.
            index: dict[Any, int] = {}
            distinct: list[Any] = []
            codes = []
            for value in values:
                if value is None:
                    codes.append(-1)
                    continue
                slot = index.get(value)
                if slot is None:
                    slot = len(distinct)
                    index[value] = slot
                    distinct.append(value)
                codes.append(slot)
            ranks = _distinct_ranks(distinct)
            sign = -1 if key.descending else 1
            rank_columns.append(
                [sign * (0 if code < 0 else ranks[code]) for code in codes]
            )
        order = sorted(
            range(len(frame.rows)),
            key=lambda row: tuple(column[row] for column in rank_columns),
        )
        return _RFrame(frame.names, frame.quals, [frame.rows[i] for i in order])
