"""Executor for the mini SQL layer.

Evaluates a parsed :class:`~repro.sql.ast.SelectQuery` against a
:class:`~repro.relational.catalog.Catalog` (or a single relation).
Results come back as a :class:`ResultSet` — column names plus row
tuples — so examples and the CLI can print MySQL-style output.

Two engines implement evaluation:

* ``"columnar"`` (default) — the query compiles to the typed predicate
  IR of :mod:`repro.relational.expr` and runs filter → group →
  aggregate end-to-end on encoded code columns through the active
  kernel backend.  ``WHERE`` becomes a vectorized mask (equality and
  ``IN`` resolve in code space through the dictionary), ``GROUP BY``
  plus ``COUNT``/``COUNT(DISTINCT …)`` run as one grouped-aggregate
  kernel call, and projections gather codes instead of decoding row by
  row.
* ``"rowdict"`` — the original tree-walking interpreter over
  materialized row dicts, retained as the *equivalence oracle*: the
  property suite asserts both engines return identical results on both
  kernel backends, NULL edge cases included.

Semantics follow SQL where it matters to the paper:

* ``COUNT(DISTINCT a, b)`` ignores rows where *any* counted attribute
  is NULL (MySQL behaviour; the FD layer forbids NULLs in FD attributes
  anyway, so engine-counting and SQL-counting agree on FD measures —
  a property the test suite checks);
* comparisons with NULL are never true (no three-valued logic beyond
  that: ``WHERE`` keeps a row only when the predicate evaluates to
  truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.relational import expr as ir
from repro.relational import kernels
from repro.relational.catalog import Catalog
from repro.relational.errors import ReproError, UnknownAttributeError
from repro.relational.relation import Relation

from .ast import (
    And,
    ColumnRef,
    Comparison,
    CountDistinct,
    CountStar,
    Expression,
    IsNull,
    Literal,
    Not,
    Or,
    SelectQuery,
)
from .parser import parse

__all__ = [
    "ResultSet",
    "SqlExecutionError",
    "compile_expression",
    "execute",
    "execute_on_relation",
]

_ENGINES = ("columnar", "rowdict")


class SqlExecutionError(ReproError):
    """Raised when a well-formed query cannot be evaluated."""


@dataclass(frozen=True)
class ResultSet:
    """Query output: ordered column names and row tuples."""

    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]

    @property
    def scalar(self) -> Any:
        """The single value of a 1×1 result (e.g. a COUNT)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlExecutionError(
                f"expected a scalar result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_text(self, max_rows: int = 20) -> str:
        """A plain-text rendering (used by the CLI)."""
        header = " | ".join(self.columns)
        divider = "-" * len(header)
        body = [
            " | ".join("NULL" if v is None else str(v) for v in row)
            for row in self.rows[:max_rows]
        ]
        if len(self.rows) > max_rows:
            body.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join([header, divider, *body])


def execute(catalog: Catalog, sql: str, engine: str = "columnar") -> ResultSet:
    """Parse and run ``sql`` against a catalog."""
    query = parse(sql)
    relation = catalog.relation(query.table)
    return _run(relation, query, engine)


def execute_on_relation(
    relation: Relation, sql: str, engine: str = "columnar"
) -> ResultSet:
    """Parse and run ``sql``; the FROM clause must name this relation."""
    query = parse(sql)
    if query.table != relation.name:
        raise SqlExecutionError(
            f"query targets {query.table!r} but got relation {relation.name!r}"
        )
    return _run(relation, query, engine)


# ----------------------------------------------------------------------
# AST → IR compilation
# ----------------------------------------------------------------------
def compile_expression(expression: Expression) -> ir.Predicate:
    """Compile a parsed ``WHERE`` AST into the relational predicate IR."""
    if isinstance(expression, Comparison):
        return ir.Cmp(
            expression.op,
            _compile_operand(expression.left),
            _compile_operand(expression.right),
        )
    if isinstance(expression, IsNull):
        return ir.IsNull(_compile_operand(expression.operand), expression.negated)
    if isinstance(expression, Not):
        return ir.Not(compile_expression(expression.operand))
    if isinstance(expression, And):
        return ir.And(
            compile_expression(expression.left), compile_expression(expression.right)
        )
    if isinstance(expression, Or):
        return ir.Or(
            compile_expression(expression.left), compile_expression(expression.right)
        )
    raise SqlExecutionError(f"cannot evaluate {expression!r} as a predicate")


def _compile_operand(operand: Any) -> ir.Operand:
    if isinstance(operand, ColumnRef):
        return ir.Col(operand.name)
    if isinstance(operand, Literal):
        return ir.Lit(operand.value)
    raise SqlExecutionError(f"cannot evaluate operand {operand!r}")


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------
def _run(relation: Relation, query: SelectQuery, engine: str = "columnar") -> ResultSet:
    if engine not in _ENGINES:
        raise SqlExecutionError(f"engine must be one of {_ENGINES}, got {engine!r}")
    rows = _filtered_rows(relation, query.where, engine)
    if query.group_by:
        if engine == "columnar":
            return _run_grouped_columnar(relation, query, rows)
        return _run_grouped(relation, query, rows)
    aggregates = [
        item for item in query.items
        if isinstance(item.expression, (CountStar, CountDistinct))
    ]
    if aggregates:
        if len(aggregates) != len(query.items):
            raise SqlExecutionError(
                "cannot mix aggregates and plain columns without GROUP BY"
            )
        aggregate = _aggregate_columnar if engine == "columnar" else _aggregate
        values = tuple(
            aggregate(relation, item.expression, rows) for item in query.items
        )
        columns = tuple(item.output_name for item in query.items)
        return ResultSet(columns, (values,))
    if engine == "columnar":
        return _run_projection_columnar(relation, query, rows)
    return _run_projection(relation, query, rows)


def _filtered_rows(
    relation: Relation, where: Expression | None, engine: str
) -> Sequence[int]:
    if where is None:
        return list(range(relation.num_rows))
    if engine == "columnar":
        predicate = compile_expression(where)
        try:
            return ir.filter_rows(relation, predicate)
        except UnknownAttributeError as error:
            raise SqlExecutionError(str(error)) from None
        except ir.ExpressionError as error:
            raise SqlExecutionError(str(error)) from None
    names = relation.attribute_names
    columns = {name: relation.column(name) for name in names}
    keep: list[int] = []
    for row in range(relation.num_rows):
        values = {name: columns[name].value(row) for name in names}
        if _evaluate(where, values):
            keep.append(row)
    return keep


def _projection_names(relation: Relation, query: SelectQuery) -> tuple[list[str], list[str]]:
    """Resolved input column names and output labels of a projection."""
    names: list[str] = []
    for item in query.items:
        assert isinstance(item.expression, ColumnRef)
        if item.expression.name == "*":
            names.extend(relation.attribute_names)
        else:
            names.append(item.expression.name)
    star_used = any(
        isinstance(item.expression, ColumnRef) and item.expression.name == "*"
        for item in query.items
    )
    if star_used:
        output_names = list(names)
    else:
        output_names = [item.output_name for item in query.items]
    return names, output_names


# ----------------------------------------------------------------------
# Columnar engine
# ----------------------------------------------------------------------
def _gathered_codes(
    relation: Relation, names: Sequence[str], rows: Sequence[int]
) -> list[Sequence[int]]:
    backend = kernels.get_backend()
    return [
        backend.gather(relation.column(name).kernel_codes(), rows) for name in names
    ]


def _aggregate_columnar(
    relation: Relation, expression: Any, rows: Sequence[int]
) -> int:
    if isinstance(expression, CountStar):
        return len(rows)
    if isinstance(expression, CountDistinct):
        backend = kernels.get_backend()
        gathered = _gathered_codes(relation, expression.columns, rows)
        # SQL semantics: a row with NULL in any counted column is not
        # counted.  Build the validity mask in code space and count
        # distinct combinations among the surviving positions.
        valid = backend.mask_fill(len(rows), True)
        for codes in gathered:
            valid = backend.mask_and(
                valid, backend.mask_not(backend.mask_eq_code(codes, -1))
            )
        positions = backend.filter_mask(valid)
        if len(positions) == 0:
            return 0
        return backend.count_distinct(
            [backend.gather(codes, positions) for codes in gathered]
        )
    raise SqlExecutionError(f"unsupported aggregate {expression!r}")


def _decode_column(column, codes: Sequence[int]) -> list[Any]:
    dictionary = column.dictionary
    if hasattr(codes, "tolist"):
        codes = codes.tolist()
    return [None if code < 0 else dictionary[code] for code in codes]


def _run_projection_columnar(
    relation: Relation, query: SelectQuery, rows: Sequence[int]
) -> ResultSet:
    names, output_names = _projection_names(relation, query)
    backend = kernels.get_backend()
    columns = [relation.column(name) for name in names]
    if query.distinct:
        gathered = _gathered_codes(relation, names, rows)
        positions = backend.distinct_rows(gathered)
        if query.limit is not None:
            positions = positions[: query.limit]
        out_codes = [backend.gather(codes, positions) for codes in gathered]
    else:
        if query.limit is not None:
            rows = rows[: query.limit]
        out_codes = _gathered_codes(relation, names, rows)
    decoded = [
        _decode_column(column, codes) for column, codes in zip(columns, out_codes)
    ]
    if not decoded:
        return ResultSet(tuple(output_names), ())
    return ResultSet(tuple(output_names), tuple(zip(*decoded)))


def _run_grouped_columnar(
    relation: Relation, query: SelectQuery, rows: Sequence[int]
) -> ResultSet:
    group_columns = [relation.column(name) for name in query.group_by]
    output_names: list[str] = []
    distinct_specs: list[list[Sequence[int]]] = []
    for item in query.items:
        if isinstance(item.expression, ColumnRef):
            if item.expression.name not in query.group_by:
                raise SqlExecutionError(
                    f"column {item.expression.name!r} must appear in GROUP BY"
                )
        elif isinstance(item.expression, CountDistinct):
            distinct_specs.append(
                [
                    relation.column(name).kernel_codes()
                    for name in item.expression.columns
                ]
            )
        elif not isinstance(item.expression, CountStar):
            raise SqlExecutionError(f"unsupported aggregate {item.expression!r}")
        output_names.append(item.output_name)
    backend = kernels.get_backend()
    keys, counts, distincts = backend.grouped_aggregate(
        [column.kernel_codes() for column in group_columns], rows, distinct_specs
    )
    num_groups = len(keys)
    if query.limit is not None:
        num_groups = min(num_groups, query.limit)
    result_rows: list[tuple[Any, ...]] = []
    for group in range(num_groups):
        key = keys[group]
        record: list[Any] = []
        spec_index = 0
        for item in query.items:
            if isinstance(item.expression, ColumnRef):
                position = query.group_by.index(item.expression.name)
                code = key[position]
                column = group_columns[position]
                record.append(None if code < 0 else column.dictionary[code])
            elif isinstance(item.expression, CountStar):
                record.append(counts[group])
            else:
                record.append(distincts[spec_index][group])
                spec_index += 1
        result_rows.append(tuple(record))
    return ResultSet(tuple(output_names), tuple(result_rows))


# ----------------------------------------------------------------------
# Row-dict engine (the retained equivalence oracle)
# ----------------------------------------------------------------------
def _evaluate(expr: Expression, values: dict[str, Any]) -> bool:
    if isinstance(expr, Comparison):
        left = _operand(expr.left, values)
        right = _operand(expr.right, values)
        if left is None or right is None:
            return False
        try:
            if expr.op == "=":
                return left == right
            if expr.op == "<>":
                return left != right
            if expr.op == "<":
                return left < right
            if expr.op == "<=":
                return left <= right
            if expr.op == ">":
                return left > right
            if expr.op == ">=":
                return left >= right
        except TypeError:
            raise SqlExecutionError(
                f"cannot compare {left!r} and {right!r} with {expr.op}"
            ) from None
        raise SqlExecutionError(f"unknown operator {expr.op!r}")
    if isinstance(expr, IsNull):
        value = _operand(expr.operand, values)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, Not):
        return not _evaluate(expr.operand, values)
    if isinstance(expr, And):
        return _evaluate(expr.left, values) and _evaluate(expr.right, values)
    if isinstance(expr, Or):
        return _evaluate(expr.left, values) or _evaluate(expr.right, values)
    raise SqlExecutionError(f"cannot evaluate {expr!r} as a predicate")


def _operand(expr: Any, values: dict[str, Any]) -> Any:
    if isinstance(expr, ColumnRef):
        if expr.name not in values:
            raise SqlExecutionError(f"unknown column {expr.name!r}")
        return values[expr.name]
    if isinstance(expr, Literal):
        return expr.value
    raise SqlExecutionError(f"cannot evaluate operand {expr!r}")


def _aggregate(relation: Relation, expression: Any, rows: Sequence[int]) -> int:
    if isinstance(expression, CountStar):
        return len(rows)
    if isinstance(expression, CountDistinct):
        columns = [relation.column(name) for name in expression.columns]
        seen: set[tuple[int, ...]] = set()
        for row in rows:
            codes = tuple(column.codes[row] for column in columns)
            if any(code < 0 for code in codes):  # SQL: NULLs are not counted
                continue
            seen.add(codes)
        return len(seen)
    raise SqlExecutionError(f"unsupported aggregate {expression!r}")


def _run_projection(
    relation: Relation, query: SelectQuery, rows: Sequence[int]
) -> ResultSet:
    names, output_names = _projection_names(relation, query)
    columns = [relation.column(name) for name in names]
    result_rows: list[tuple[Any, ...]] = []
    seen: set[tuple[Any, ...]] = set()
    for row in rows:
        if query.limit is not None and len(result_rows) >= query.limit:
            break
        record = tuple(column.value(row) for column in columns)
        if query.distinct:
            if record in seen:
                continue
            seen.add(record)
        result_rows.append(record)
    return ResultSet(tuple(output_names), tuple(result_rows))


def _run_grouped(
    relation: Relation, query: SelectQuery, rows: Sequence[int]
) -> ResultSet:
    group_columns = [relation.column(name) for name in query.group_by]
    groups: dict[tuple[int, ...], list[int]] = {}
    for row in rows:
        key = tuple(column.codes[row] for column in group_columns)
        groups.setdefault(key, []).append(row)
    output_names: list[str] = []
    for item in query.items:
        if isinstance(item.expression, ColumnRef):
            if item.expression.name not in query.group_by:
                raise SqlExecutionError(
                    f"column {item.expression.name!r} must appear in GROUP BY"
                )
        output_names.append(item.output_name)
    result_rows: list[tuple[Any, ...]] = []
    for key, group_rows in groups.items():
        if query.limit is not None and len(result_rows) >= query.limit:
            break
        record: list[Any] = []
        for item in query.items:
            if isinstance(item.expression, ColumnRef):
                position = query.group_by.index(item.expression.name)
                column = group_columns[position]
                code = key[position]
                record.append(None if code < 0 else column.dictionary[code])
            else:
                record.append(_aggregate(relation, item.expression, group_rows))
        result_rows.append(tuple(record))
    return ResultSet(tuple(output_names), tuple(result_rows))
