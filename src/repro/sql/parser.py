"""Recursive-descent parser for the SQL grammar.

Grammar (case-insensitive keywords)::

    query      := SELECT [DISTINCT] items FROM table_ref join*
                  [WHERE expr] [GROUP BY columns [HAVING expr]]
                  [ORDER BY order_item (',' order_item)*]
                  [LIMIT number [OFFSET number]]
    table_ref  := identifier [[AS] identifier]
    join       := [INNER | LEFT [OUTER]] JOIN table_ref ON expr
    items      := '*' | item (',' item)*
    item       := expr [AS identifier]
    columns    := qualified (',' qualified)*
    order_item := expr [ASC | DESC]
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | cmp_expr
    cmp_expr   := add_expr [cmpop add_expr
                            | IS [NOT] NULL
                            | [NOT] IN '(' literal (',' literal)* ')']
    add_expr   := mul_expr (('+' | '-') mul_expr)*
    mul_expr   := primary (('*' | '/') primary)*
    primary    := '(' expr ')' | literal | aggregate | qualified
    aggregate  := COUNT '(' ('*' | [DISTINCT] args) ')'
                  | (SUM|MIN|MAX|AVG) '(' [DISTINCT] expr ')'
    qualified  := identifier ['.' identifier]

``COUNT(*)`` and ``COUNT(DISTINCT col, …)`` keep their dedicated AST
nodes; every other aggregate shape becomes :class:`AggregateCall`.
"""

from __future__ import annotations

from .ast import (
    AggregateCall,
    And,
    Arith,
    ColumnRef,
    Comparison,
    CountDistinct,
    CountStar,
    Expression,
    InList,
    IsNull,
    JoinClause,
    Literal,
    Not,
    Or,
    OrderItem,
    SelectItem,
    SelectQuery,
)
from .tokens import SqlSyntaxError, Token, TokenType, tokenize

__all__ = ["parse"]

_AGG_KEYWORDS = ("count", "sum", "min", "max", "avg")
_CMP_OPS = ("<>", "!=", "<=", ">=", "=", "<", ">")


def parse(text: str) -> SelectQuery:
    """Parse SQL text into a :class:`SelectQuery`."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _fail(self, message: str, token: Token | None = None) -> None:
        token = token or self._current
        raise SqlSyntaxError(
            message, token.position, token.line, token.column, token.described
        )

    def _expect_keyword(self, word: str) -> Token:
        token = self._current
        if not token.is_keyword(word):
            self._fail(f"expected {word.upper()}, got {token.described!r}")
        return self._advance()

    def _expect_punct(self, char: str) -> Token:
        token = self._current
        if token.type is not TokenType.PUNCTUATION or token.value != char:
            self._fail(f"expected {char!r}, got {token.described!r}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == char:
            self._advance()
            return True
        return False

    def _accept_operator(self, *ops: str) -> str | None:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value in ops:
            self._advance()
            return token.value
        return None

    def _expect_identifier(self) -> str:
        token = self._current
        if token.type is not TokenType.IDENTIFIER:
            self._fail(f"expected an identifier, got {token.described!r}")
        self._advance()
        return token.value

    def _expect_number(self, context: str) -> int:
        token = self._current
        if token.type is not TokenType.NUMBER or "." in token.value:
            self._fail(f"{context} expects an integer")
        self._advance()
        return int(token.value)

    # -- grammar --------------------------------------------------------
    def parse_query(self) -> SelectQuery:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = self._parse_items()
        self._expect_keyword("from")
        table, table_alias = self._parse_table_ref()
        joins = self._parse_joins()
        where: Expression | None = None
        group_by: tuple[str, ...] = ()
        having: Expression | None = None
        order_by: tuple[OrderItem, ...] = ()
        limit: int | None = None
        offset: int | None = None
        if self._accept_keyword("where"):
            where = self._parse_expr()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = tuple(self._parse_columns())
            if self._accept_keyword("having"):
                having = self._parse_expr()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = tuple(self._parse_order_items())
        if self._accept_keyword("limit"):
            limit = self._expect_number("LIMIT")
            if self._accept_keyword("offset"):
                offset = self._expect_number("OFFSET")
        end = self._current
        if end.type is not TokenType.END:
            self._fail(f"unexpected trailing input {end.value!r}")
        return SelectQuery(
            items=tuple(items),
            table=table,
            where=where,
            group_by=group_by,
            distinct=distinct,
            limit=limit,
            table_alias=table_alias,
            joins=tuple(joins),
            having=having,
            order_by=order_by,
            offset=offset,
        )

    def _parse_table_ref(self) -> tuple[str, str | None]:
        table = self._expect_identifier()
        alias: str | None = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return table, alias

    def _parse_joins(self) -> list[JoinClause]:
        joins: list[JoinClause] = []
        while True:
            if self._accept_keyword("join"):
                kind = "inner"
            elif self._accept_keyword("inner"):
                self._expect_keyword("join")
                kind = "inner"
            elif self._accept_keyword("left"):
                self._accept_keyword("outer")
                self._expect_keyword("join")
                kind = "left"
            else:
                return joins
            table, alias = self._parse_table_ref()
            self._expect_keyword("on")
            condition = self._parse_expr()
            joins.append(JoinClause(kind, table, alias, condition))

    def _parse_items(self) -> list[SelectItem]:
        if self._current.type is TokenType.STAR and self._peek().is_keyword("from"):
            self._advance()
            return [SelectItem(ColumnRef("*"))]
        items = [self._parse_item()]
        while self._accept_punct(","):
            items.append(self._parse_item())
        return items

    def _parse_item(self) -> SelectItem:
        expression = self._parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        return SelectItem(expression, alias)

    def _parse_columns(self) -> list[str]:
        columns = [self._parse_qualified_name()]
        while self._accept_punct(","):
            columns.append(self._parse_qualified_name())
        return columns

    def _parse_qualified_name(self) -> str:
        name = self._expect_identifier()
        if self._accept_punct("."):
            return f"{name}.{self._expect_identifier()}"
        return name

    def _parse_order_items(self) -> list[OrderItem]:
        items = [self._parse_order_item()]
        while self._accept_punct(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(expression, descending)

    # -- expressions ----------------------------------------------------
    def _parse_expr(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = And(left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_cmp()

    def _parse_cmp(self) -> Expression:
        left = self._parse_add()
        token = self._current
        if token.is_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, negated)
        negated_in = False
        if token.is_keyword("not") and self._peek().is_keyword("in"):
            self._advance()
            negated_in = True
            token = self._current
        if token.is_keyword("in"):
            self._advance()
            return self._parse_in_list(left, negated_in)
        if negated_in:  # NOT consumed but no IN followed
            self._fail(f"expected IN, got {token.described!r}")
        op = self._accept_operator(*_CMP_OPS)
        if op is not None:
            right = self._parse_add()
            return Comparison("<>" if op == "!=" else op, left, right)
        return left

    def _parse_in_list(self, operand: Expression, negated: bool) -> InList:
        self._expect_punct("(")
        values = [self._parse_literal_value()]
        while self._accept_punct(","):
            values.append(self._parse_literal_value())
        self._expect_punct(")")
        return InList(operand, tuple(values), negated)

    def _parse_literal_value(self) -> object:
        literal = self._parse_literal()
        if literal is None:
            self._fail(f"IN expects literal values, got {self._current.described!r}")
        return literal.value

    def _parse_add(self) -> Expression:
        left = self._parse_mul()
        while True:
            op = self._accept_operator("+", "-")
            if op is not None:
                left = Arith(op, left, self._parse_mul())
                continue
            # The lexer folds a sign into a number when they are
            # adjacent, so ``a -7`` arrives as IDENT, NUMBER("-7").
            token = self._current
            if token.type is TokenType.NUMBER and token.value[0] in "+-":
                self._advance()
                magnitude = token.value[1:]
                value = float(magnitude) if "." in magnitude else int(magnitude)
                left = Arith(token.value[0], left, Literal(value))
                continue
            return left

    def _parse_mul(self) -> Expression:
        left = self._parse_primary()
        while True:
            if self._current.type is TokenType.STAR:
                self._advance()
                left = Arith("*", left, self._parse_primary())
                continue
            op = self._accept_operator("/")
            if op is not None:
                left = Arith("/", left, self._parse_primary())
                continue
            return left

    def _parse_primary(self) -> Expression:
        token = self._current
        if self._accept_punct("("):
            inner = self._parse_expr()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.KEYWORD and token.value in _AGG_KEYWORDS:
            return self._parse_aggregate()
        literal = self._parse_literal()
        if literal is not None:
            return literal
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            if self._accept_punct("."):
                return ColumnRef(self._expect_identifier(), table=token.value)
            return ColumnRef(token.value)
        self._fail(f"expected an operand, got {token.described!r}")
        raise AssertionError("unreachable")

    def _parse_aggregate(self) -> Expression:
        func = self._advance().value
        self._expect_punct("(")
        if func == "count":
            if self._current.type is TokenType.STAR:
                self._advance()
                self._expect_punct(")")
                return CountStar()
            distinct = self._accept_keyword("distinct")
            argument = self._parse_expr()
            if distinct and isinstance(argument, ColumnRef):
                columns = [argument.qualified]
                while self._accept_punct(","):
                    columns.append(self._parse_qualified_name())
                self._expect_punct(")")
                return CountDistinct(tuple(columns))
            self._expect_punct(")")
            return AggregateCall("count", argument, distinct)
        distinct = self._accept_keyword("distinct")
        argument = self._parse_expr()
        self._expect_punct(")")
        return AggregateCall(func, argument, distinct)

    def _parse_literal(self) -> Literal | None:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        return None
