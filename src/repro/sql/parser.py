"""Recursive-descent parser for the mini SQL grammar.

Grammar (case-insensitive keywords)::

    query      := SELECT [DISTINCT] items FROM identifier
                  [WHERE expr] [GROUP BY columns] [LIMIT number]
    items      := item (',' item)* | '*'
    item       := (COUNT '(' '*' ')' | COUNT '(' DISTINCT columns ')'
                  | identifier) [AS identifier]
    columns    := identifier (',' identifier)*
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | primary
    primary    := '(' expr ')' | operand (comparison | IS [NOT] NULL)
    operand    := identifier | literal
"""

from __future__ import annotations

from .ast import (
    And,
    ColumnRef,
    Comparison,
    CountDistinct,
    CountStar,
    Expression,
    IsNull,
    Literal,
    Not,
    Or,
    SelectItem,
    SelectQuery,
)
from .tokens import SqlSyntaxError, Token, TokenType, tokenize

__all__ = ["parse"]


def parse(text: str) -> SelectQuery:
    """Parse SQL text into a :class:`SelectQuery`."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._current
        if not token.is_keyword(word):
            raise SqlSyntaxError(f"expected {word.upper()}, got {token.value!r}", token.position)
        return self._advance()

    def _expect_punct(self, char: str) -> Token:
        token = self._current
        if token.type is not TokenType.PUNCTUATION or token.value != char:
            raise SqlSyntaxError(f"expected {char!r}, got {token.value!r}", token.position)
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == char:
            self._advance()
            return True
        return False

    def _expect_identifier(self) -> str:
        token = self._current
        if token.type is not TokenType.IDENTIFIER:
            raise SqlSyntaxError(f"expected an identifier, got {token.value!r}", token.position)
        self._advance()
        return token.value

    # -- grammar --------------------------------------------------------
    def parse_query(self) -> SelectQuery:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = self._parse_items()
        self._expect_keyword("from")
        table = self._expect_identifier()
        where: Expression | None = None
        group_by: tuple[str, ...] = ()
        limit: int | None = None
        if self._accept_keyword("where"):
            where = self._parse_expr()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = tuple(self._parse_columns())
        if self._accept_keyword("limit"):
            token = self._current
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError("LIMIT expects a number", token.position)
            self._advance()
            limit = int(token.value)
        end = self._current
        if end.type is not TokenType.END:
            raise SqlSyntaxError(f"unexpected trailing input {end.value!r}", end.position)
        return SelectQuery(
            items=tuple(items),
            table=table,
            where=where,
            group_by=group_by,
            distinct=distinct,
            limit=limit,
        )

    def _parse_items(self) -> list[SelectItem]:
        if self._current.type is TokenType.STAR:
            self._advance()
            return [SelectItem(ColumnRef("*"))]
        items = [self._parse_item()]
        while self._accept_punct(","):
            items.append(self._parse_item())
        return items

    def _parse_item(self) -> SelectItem:
        token = self._current
        if token.is_keyword("count"):
            self._advance()
            self._expect_punct("(")
            if self._current.type is TokenType.STAR:
                self._advance()
                self._expect_punct(")")
                expression: CountStar | CountDistinct = CountStar()
            else:
                self._expect_keyword("distinct")
                columns = self._parse_columns()
                self._expect_punct(")")
                expression = CountDistinct(tuple(columns))
        elif token.type is TokenType.IDENTIFIER:
            expression = ColumnRef(self._expect_identifier())
        else:
            raise SqlSyntaxError(
                f"expected a column or COUNT, got {token.value!r}", token.position
            )
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        return SelectItem(expression, alias)

    def _parse_columns(self) -> list[str]:
        columns = [self._expect_identifier()]
        while self._accept_punct(","):
            columns.append(self._expect_identifier())
        return columns

    def _parse_expr(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = And(left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        if self._accept_punct("("):
            inner = self._parse_expr()
            self._expect_punct(")")
            return inner
        operand = self._parse_operand()
        token = self._current
        if token.is_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            if not isinstance(operand, (ColumnRef, Literal)):
                raise SqlSyntaxError("IS NULL expects a column or literal", token.position)
            return IsNull(operand, negated)
        if token.type is TokenType.OPERATOR:
            self._advance()
            right = self._parse_operand()
            op = "<>" if token.value == "!=" else token.value
            return Comparison(op, operand, right)
        raise SqlSyntaxError(
            f"expected a comparison or IS NULL, got {token.value!r}", token.position
        )

    def _parse_operand(self) -> ColumnRef | Literal:
        token = self._current
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return ColumnRef(token.value)
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        raise SqlSyntaxError(f"expected an operand, got {token.value!r}", token.position)
