"""Errors shared by the SQL planning and execution stages.

:class:`SqlSyntaxError` (tokenizer/parser) lives in
:mod:`repro.sql.tokens`; this module holds the post-parse failures.
:class:`PlanError` subclasses :class:`SqlExecutionError` so callers
that run a query end to end can keep catching one type regardless of
whether the problem surfaced while planning or while executing.
"""

from __future__ import annotations

from repro.relational.errors import ReproError

__all__ = ["SqlExecutionError", "PlanError"]


class SqlExecutionError(ReproError):
    """Raised when a well-formed query cannot be evaluated."""


class PlanError(SqlExecutionError):
    """Raised when a parsed query cannot be turned into a logical plan."""
