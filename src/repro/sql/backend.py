"""A SQL-text counting backend for FD measures.

Section 4.4 notes the prototype computes confidence and goodness with
``SELECT COUNT(DISTINCT …)`` queries (Q1/Q2).  This backend routes every
count through the full lex→parse→execute pipeline, mirroring that
deployment.  It exists for two reasons:

* fidelity — the examples show the literal queries the paper prints;
* ablation — ``benchmarks/bench_ablation_backends.py`` measures the
  overhead of the SQL path against the engine's direct (memoized)
  counting, the pure-Python analogue of the paper's remark that query
  time "heavily depends on the query plan implemented by the DBMS".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import FDAssessment
from repro.relational.relation import Relation

from .executor import execute_on_relation

__all__ = ["SqlCountBackend"]


@dataclass
class SqlCountBackend:
    """Compute FD measures through SQL text against one relation."""

    relation: Relation
    queries_executed: int = 0

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def count_distinct(self, attrs: list[str]) -> int:
        """``SELECT COUNT(DISTINCT attrs…) FROM relation``."""
        columns = ", ".join(attrs)
        sql = f"SELECT COUNT(DISTINCT {columns}) FROM {self.relation.name}"
        self.queries_executed += 1
        return int(execute_on_relation(self.relation, sql).scalar)

    def count_query(self, attrs: list[str]) -> str:
        """The SQL text this backend would run (for display/examples)."""
        columns = ", ".join(attrs)
        return f"SELECT COUNT(DISTINCT {columns}) FROM {self.relation.name}"

    # ------------------------------------------------------------------
    # FD measures via SQL
    # ------------------------------------------------------------------
    def assess(self, fd: FunctionalDependency) -> FDAssessment:
        """Confidence and goodness of ``fd``, computed via SQL queries."""
        x = list(fd.antecedent)
        y = list(fd.consequent)
        return FDAssessment(
            fd=fd,
            distinct_x=self.count_distinct(x),
            distinct_xy=self.count_distinct(x + y),
            distinct_y=self.count_distinct(y),
        )

    def confidence(self, fd: FunctionalDependency) -> float:
        """``c_{F,r}`` via Q1/Q2-style SQL."""
        return self.assess(fd).confidence

    def goodness(self, fd: FunctionalDependency) -> int:
        """``g_{F,r}`` via SQL."""
        return self.assess(fd).goodness
