"""Rule-plus-cost optimizer over the frozen logical plans (PR 10).

:func:`optimize_plan` rewrites a canonical :func:`~repro.sql.plan.plan_query`
plan into an equivalent, cheaper one:

* **constant folding** — ``Arith(Literal, Literal)`` subtrees that
  evaluate without error collapse to their value (erroring ones are
  left in place: ``5/0`` over an empty frame must stay silent, over a
  non-empty one must raise the executor's exact message);
* **predicate pushdown** — WHERE conjuncts that (a) provably cannot
  raise and (b) resolve uniquely to scan-table columns move below the
  joins as a ``Filter`` directly above the ``Scan``;
* **projection pruning** — ``Scan.columns`` / ``Join.columns`` restrict
  every frame to the statement-referenced attributes, so unreferenced
  columns are never decoded or gathered;
* **equi-join reordering** — consecutive INNER joins whose right keys
  are *provably unique* (exact dictionary cardinality == row count, so
  each join is an order-preserving filter) are re-ranked by estimated
  selectivity ``|T| / max(ndv(left key), |T|)`` from
  :mod:`repro.sql.stats` — HLL-estimated in ``approx="sketch"`` mode.

Everything is guarded so the rewrite is *observably identical* to the
original plan — results, row order, and error messages — which the
hypothesis equivalence suite pins against the unoptimized oracle
(``EngineConfig(optimize="off")`` / ``$REPRO_OPTIMIZE``):

* only conjuncts **before the first may-raise conjunct** are pushed
  (pushing past one could filter away the row it would have raised on);
* safety is decided statically from declared attribute types — order
  comparisons only between same-family operands, arithmetic only over
  numerics, division never;
* conjuncts whose references don't resolve uniquely in the full frame
  stay residual, so unknown/ambiguous-column errors fire at the same
  bind point with the same message;
* join reordering additionally requires pairwise-distinct bindings and
  permutation-invariant left-key resolution, and never applies under
  ``SELECT *`` (frame column order is user-visible there).

Plans that don't have the canonical shape are returned unchanged.

The process-wide **optimize mode** mirrors the kernel-backend switch:
``"on"`` (default) or ``"off"``, installed by
``EngineConfig(optimize=...)`` / ``$REPRO_OPTIMIZE`` and scoped in
tests with :func:`use_optimize`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from repro.relational.types import AttributeType

from .ast import (
    And,
    Arith,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from .plan import (
    Aggregate,
    AggregateSpec,
    Filter,
    Join,
    Limit,
    Plan,
    Project,
    Scan,
    Sort,
    SortKey,
    _expr_sql,
    _spec_sql,
)
from .stats import StatisticsProvider, TableStats

__all__ = [
    "OPTIMIZE_ENV_VAR",
    "active_optimize",
    "optimize_plan",
    "render_plan",
    "resolve_optimize",
    "set_optimize",
    "use_optimize",
]

OPTIMIZE_ENV_VAR = "REPRO_OPTIMIZE"

_MODES = ("on", "off")

_active: str | None = None


def _normalize(mode: str | None, source: str) -> str:
    if mode is None:
        return "on"
    lowered = str(mode).strip().lower()
    if lowered not in _MODES:
        raise ValueError(
            f"optimize mode must be one of {_MODES}, got {mode!r} (from {source})"
        )
    return lowered


def set_optimize(mode: str | None) -> None:
    """Install the process-wide optimize mode (``None`` → ``"on"``)."""
    global _active
    _active = _normalize(mode, "set_optimize()")


def active_optimize() -> str:
    """The optimize mode in effect: explicit setting, else
    ``$REPRO_OPTIMIZE``, else ``"on"``."""
    if _active is not None:
        return _active
    env = os.environ.get(OPTIMIZE_ENV_VAR)
    if env:
        return _normalize(env, f"${OPTIMIZE_ENV_VAR}")
    return "on"


def resolve_optimize(explicit: str | None = None) -> str:
    """An explicit per-call mode, else the active process-wide one."""
    if explicit is None:
        return active_optimize()
    return _normalize(explicit, "optimize=")


@contextmanager
def use_optimize(mode: str | None):
    """Scoped optimize-mode override (tests, benchmarks)."""
    global _active
    previous = _active
    _active = _normalize(mode, "use_optimize()")
    try:
        yield
    finally:
        _active = previous


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------
def _fold(expression: Expression) -> Expression:
    """Collapse literal-only arithmetic, preserving error behavior.

    Mirrors the executors' ``_arith_value`` exactly (NULL propagates;
    TypeError / ZeroDivisionError abort the fold so the runtime raise —
    or the empty-frame non-raise — is unchanged).
    """
    if isinstance(expression, Arith):
        left = _fold(expression.left)
        right = _fold(expression.right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            if left.value is None or right.value is None:
                return Literal(None)
            op = expression.op
            try:
                if op == "+":
                    return Literal(left.value + right.value)
                if op == "-":
                    return Literal(left.value - right.value)
                if op == "*":
                    return Literal(left.value * right.value)
                if op == "/":
                    return Literal(left.value / right.value)
            except (TypeError, ZeroDivisionError):
                pass
        return Arith(expression.op, left, right)
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op, _fold(expression.left), _fold(expression.right)
        )
    if isinstance(expression, InList):
        return InList(_fold(expression.operand), expression.values, expression.negated)
    if isinstance(expression, IsNull):
        return IsNull(_fold(expression.operand), expression.negated)
    if isinstance(expression, Not):
        return Not(_fold(expression.operand))
    if isinstance(expression, And):
        return And(_fold(expression.left), _fold(expression.right))
    if isinstance(expression, Or):
        return Or(_fold(expression.left), _fold(expression.right))
    return expression


# ----------------------------------------------------------------------
# Static safety analysis
# ----------------------------------------------------------------------
_NUM = "num"
_STR = "str"
_NULL = "null"

TypeOf = Callable[[ColumnRef], AttributeType | None]


def _operand_info(expression: Expression, type_of: TypeOf) -> tuple[bool, str | None]:
    """``(never_raises, static type family)`` for a value expression.

    Families: ``"num"`` (ints, floats, bools — mutually comparable in
    Python), ``"str"``, ``"null"`` (the NULL literal: comparisons with
    it short-circuit to false before any type check).  ``(False, None)``
    means "can't prove anything" — callers must treat it as may-raise.
    """
    if isinstance(expression, Literal):
        value = expression.value
        if value is None:
            return True, _NULL
        if isinstance(value, bool) or isinstance(value, (int, float)):
            return True, _NUM
        if isinstance(value, str):
            return True, _STR
        return False, None
    if isinstance(expression, ColumnRef):
        attr_type = type_of(expression)
        if attr_type in (
            AttributeType.INTEGER,
            AttributeType.FLOAT,
            AttributeType.BOOLEAN,
        ):
            return True, _NUM
        if attr_type is AttributeType.STRING:
            return True, _STR
        return False, None
    if isinstance(expression, Arith):
        left_safe, left_type = _operand_info(expression.left, type_of)
        right_safe, right_type = _operand_info(expression.right, type_of)
        if not (left_safe and right_safe):
            return False, None
        # '/' can ZeroDivision; mixed families TypeError.  NULL operands
        # propagate before the operator ever runs, so they are fine.
        if expression.op in ("+", "-", "*") and {left_type, right_type} <= {
            _NUM,
            _NULL,
        }:
            return True, _NUM if _NUM in (left_type, right_type) else _NULL
        return False, None
    return False, None


def _conjunct_safe(expression: Expression, type_of: TypeOf) -> bool:
    """Whether evaluating this predicate can *never* raise."""
    if isinstance(expression, Comparison):
        left_safe, left_type = _operand_info(expression.left, type_of)
        right_safe, right_type = _operand_info(expression.right, type_of)
        if not (left_safe and right_safe):
            return False
        if expression.op in ("=", "<>"):
            return True  # Python ==/!= never raise across these families
        return _NULL in (left_type, right_type) or left_type == right_type
    if isinstance(expression, (InList, IsNull)):
        safe, _ = _operand_info(expression.operand, type_of)
        return safe
    if isinstance(expression, Not):
        return _conjunct_safe(expression.operand, type_of)
    if isinstance(expression, (And, Or)):
        return _conjunct_safe(expression.left, type_of) and _conjunct_safe(
            expression.right, type_of
        )
    return False


# ----------------------------------------------------------------------
# Canonical-shape peeling
# ----------------------------------------------------------------------
@dataclass
class _Shape:
    limit: Limit | None
    project: Project
    sort: Sort | None
    having: Filter | None
    aggregate: Aggregate | None
    conjuncts: list[Expression]  # WHERE, in evaluation order
    n_pushed: int  # how many leading conjuncts came from spine filters
    joins: list[Join]
    scan: Scan


def _conjuncts(expression: Expression) -> list[Expression]:
    if isinstance(expression, And):
        return _conjuncts(expression.left) + _conjuncts(expression.right)
    return [expression]


def _peel(plan: Plan) -> _Shape | None:
    node = plan
    limit = node if isinstance(node, Limit) else None
    if limit is not None:
        node = node.source
    if not isinstance(node, Project):
        return None
    project = node
    node = node.source
    sort = None
    if isinstance(node, Sort):
        sort = node
        node = node.source
    having = None
    if isinstance(node, Filter) and isinstance(node.source, Aggregate):
        having = node
        node = node.source
    aggregate = None
    if isinstance(node, Aggregate):
        aggregate = node
        node = node.source
    residual: list[Expression] = []
    if isinstance(node, Filter):
        residual = _conjuncts(node.predicate)
        node = node.source
    joins: list[Join] = []
    while isinstance(node, Join):
        joins.append(node)
        node = node.source
    joins.reverse()
    # A previous optimize pass leaves pushed filters directly above the
    # scan; re-lift them (innermost evaluates first) so re-optimizing is
    # idempotent.  Any other interleaving is non-canonical: bail.
    pushed: list[Expression] = []
    while isinstance(node, Filter):
        pushed = _conjuncts(node.predicate) + pushed
        node = node.source
    if not isinstance(node, Scan):
        return None
    if pushed and not joins:
        # Filter directly over Scan with no joins is just the WHERE.
        residual = pushed + residual
        pushed = []
    return _Shape(
        limit=limit,
        project=project,
        sort=sort,
        having=having,
        aggregate=aggregate,
        conjuncts=pushed + residual,
        n_pushed=len(pushed),
        joins=joins,
        scan=node,
    )


# ----------------------------------------------------------------------
# Frame simulation (the executors' static name resolution, non-raising)
# ----------------------------------------------------------------------
@dataclass
class _FrameSim:
    names: list[str] = field(default_factory=list)
    quals: list[str | None] = field(default_factory=list)
    owners: list[int] = field(default_factory=list)  # 0 = scan, i = joins[i-1]
    types: list[AttributeType] = field(default_factory=list)

    def add_table(self, owner: int, binding: str, stats: TableStats) -> None:
        for attr in stats.schema.attributes:
            self.names.append(attr.name)
            self.quals.append(binding)
            self.owners.append(owner)
            self.types.append(attr.type)

    def resolve(self, ref: ColumnRef) -> int | None:
        """The frame position, or ``None`` on unknown/ambiguous."""
        matches = [
            i
            for i, (name, qual) in enumerate(zip(self.names, self.quals))
            if name == ref.name and (ref.table is None or qual == ref.table)
        ]
        return matches[0] if len(matches) == 1 else None

    def type_of(self, ref: ColumnRef) -> AttributeType | None:
        position = self.resolve(ref)
        return None if position is None else self.types[position]


def _refs(expression: Expression, out: list[ColumnRef]) -> None:
    if isinstance(expression, ColumnRef):
        out.append(expression)
    elif isinstance(expression, (Arith, Comparison, And, Or)):
        _refs(expression.left, out)
        _refs(expression.right, out)
    elif isinstance(expression, (InList, IsNull, Not)):
        _refs(expression.operand, out)


def _collect_names(expression: Expression | None, out: set[str]) -> bool:
    """Referenced column names; ``False`` when ``*`` demands everything."""
    if expression is None:
        return True
    refs: list[ColumnRef] = []
    _refs(expression, refs)
    for ref in refs:
        if ref.name == "*":
            return False
        out.add(ref.name)
    return True


# ----------------------------------------------------------------------
# The optimizer
# ----------------------------------------------------------------------
def optimize_plan(
    plan: Plan, stats: StatisticsProvider | None = None
) -> Plan:
    """An equivalent plan, rewritten for speed.

    ``stats`` supplies schemas and cardinalities; without it (or for
    tables it doesn't know) the statistics-dependent rules degrade to
    no-ops and only constant folding applies.  Non-canonical plan
    shapes are returned unchanged.
    """
    shape = _peel(plan)
    if shape is None:
        return plan

    # -- constant folding everywhere ----------------------------------
    conjuncts = [_fold(c) for c in shape.conjuncts]
    having_pred = (
        _fold(shape.having.predicate) if shape.having is not None else None
    )
    expressions = tuple(_fold(e) for e in shape.project.expressions)
    sort_keys = (
        tuple(
            SortKey(_fold(key.expression), key.descending)
            for key in shape.sort.keys
        )
        if shape.sort is not None
        else None
    )
    specs = (
        tuple(
            AggregateSpec(
                spec.func,
                tuple(_fold(a) for a in spec.arguments),
                spec.distinct,
            )
            for spec in shape.aggregate.specs
        )
        if shape.aggregate is not None
        else None
    )

    # -- gather table stats -------------------------------------------
    provider = stats if stats is not None else StatisticsProvider()
    scan_stats = provider.table_stats(shape.scan.table)
    join_stats = [provider.table_stats(join.table) for join in shape.joins]
    frame: _FrameSim | None = None
    if scan_stats is not None and all(s is not None for s in join_stats):
        frame = _FrameSim()
        frame.add_table(0, shape.scan.binding, scan_stats)
        for index, (join, table_stats) in enumerate(
            zip(shape.joins, join_stats)
        ):
            frame.add_table(index + 1, join.binding, table_stats)

    # -- predicate pushdown -------------------------------------------
    pushed: list[Expression] = []
    residual: list[Expression] = []
    pushed_indices: set[int] = set()
    if frame is not None and shape.joins:
        blocked = False
        for index, conjunct in enumerate(conjuncts):
            if blocked or not _pushable(conjunct, frame):
                residual.append(conjunct)
                # Only the prefix before the first may-raise conjunct
                # may move: pushing past one would filter away the very
                # row it would have raised on.
                if not _conjunct_safe(conjunct, frame.type_of):
                    blocked = True
            else:
                pushed.append(conjunct)
                pushed_indices.add(index)
    else:
        residual = list(conjuncts)
    if not pushed_indices.issuperset(range(shape.n_pushed)):
        # Re-peeled spine filters that no longer qualify (different
        # stats, hand-built plan): lifting them would move their
        # evaluation point.  Leave the plan exactly as it was.
        return plan

    # -- projection pruning -------------------------------------------
    bindings = [shape.scan.binding] + [join.binding for join in shape.joins]
    prune: dict[str, tuple[str, ...]] = {}
    if frame is not None and len(set(bindings)) == len(bindings):
        prune = _pruned_columns(
            shape,
            expressions,
            sort_keys,
            having_pred,
            conjuncts,
            specs,
            scan_stats,
            join_stats,
        )

    # -- join reordering ----------------------------------------------
    joins = list(shape.joins)
    if frame is not None and scan_stats is not None:
        joins = _reorder_joins(shape, joins, join_stats, scan_stats)

    # -- rebuild -------------------------------------------------------
    node: Plan = Scan(
        shape.scan.table, shape.scan.alias, prune.get(shape.scan.binding)
    )
    if pushed:
        node = Filter(node, _and_all(pushed))
    for join in joins:
        node = Join(
            node,
            join.kind,
            join.table,
            join.alias,
            join.left_keys,
            join.right_keys,
            prune.get(join.binding),
        )
    if residual:
        node = Filter(node, _and_all(residual))
    if shape.aggregate is not None:
        assert specs is not None
        node = Aggregate(node, shape.aggregate.group_by, specs)
    if having_pred is not None:
        node = Filter(node, having_pred)
    if sort_keys is not None:
        node = Sort(node, sort_keys)
    node = Project(
        node, expressions, shape.project.names, shape.project.distinct
    )
    if shape.limit is not None:
        node = Limit(node, shape.limit.limit, shape.limit.offset)
    return node


def _and_all(conjuncts: list[Expression]) -> Expression:
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = And(combined, conjunct)
    return combined


def _pushable(conjunct: Expression, frame: _FrameSim) -> bool:
    """Can this conjunct move below the joins?

    Every reference must resolve uniquely in the *full* frame (so no
    unknown/ambiguous error is suppressed or introduced) and land on a
    scan-table column, and evaluation must be provably raise-free.
    """
    refs: list[ColumnRef] = []
    _refs(conjunct, refs)
    for ref in refs:
        position = frame.resolve(ref)
        if position is None or frame.owners[position] != 0:
            return False
    return _conjunct_safe(conjunct, frame.type_of)


def _pruned_columns(
    shape: _Shape,
    expressions: tuple[Expression, ...],
    sort_keys: tuple[SortKey, ...] | None,
    having_pred: Expression | None,
    conjuncts: list[Expression],
    specs: tuple[AggregateSpec, ...] | None,
    scan_stats: TableStats | None,
    join_stats: list[TableStats | None],
) -> dict[str, tuple[str, ...]]:
    """Per-binding kept-column tuples, or ``{}`` when pruning is off.

    Collects every referenced *name* (qualifiers ignored — over-keeping
    can never change resolution, under-keeping could) across the whole
    statement, then intersects with each table's schema in schema
    order.  ``SELECT *`` disables pruning entirely.
    """
    if shape.project.names == ("*",):
        return {}
    referenced: set[str] = set()
    for expression in expressions:
        if not _collect_names(expression, referenced):
            return {}
    for conjunct in conjuncts:
        if not _collect_names(conjunct, referenced):
            return {}
    if not _collect_names(having_pred, referenced):
        return {}
    if sort_keys is not None:
        for key in sort_keys:
            if not _collect_names(key.expression, referenced):
                return {}
    if shape.aggregate is not None:
        for key in shape.aggregate.group_by:
            referenced.add(key.name)
    if specs is not None:
        for spec in specs:
            for argument in spec.arguments:
                if not _collect_names(argument, referenced):
                    return {}
    for join in shape.joins:
        for ref in join.left_keys + join.right_keys:
            referenced.add(ref.name)
    tables = [(shape.scan.binding, scan_stats)] + [
        (join.binding, table_stats)
        for join, table_stats in zip(shape.joins, join_stats)
    ]
    out: dict[str, tuple[str, ...]] = {}
    for binding, table_stats in tables:
        if table_stats is None:
            continue
        schema_names = table_stats.schema.attribute_names
        kept = tuple(name for name in schema_names if name in referenced)
        if not kept:
            # A frame still needs a row count (SELECT COUNT(*) ...).
            kept = schema_names[:1]
        if len(kept) < len(schema_names):
            out[binding] = kept
    return out


def _reorder_joins(
    shape: _Shape,
    joins: list[Join],
    join_stats: list[TableStats | None],
    scan_stats: TableStats,
) -> list[Join]:
    """Selectivity-ranked inner-join order, when provably safe.

    Requirements (each preserves byte-identical results *and* errors):

    * every join INNER with a single, provably-unique right key — each
      is then an order-preserving filter of the left spine, so inner
      joins commute;
    * ``SELECT *`` absent (output column order would change);
    * pairwise-distinct bindings and permutation-invariant left-key
      resolution (qualified with the scan binding, or a name that only
      the scan table has), so static resolution can't flip between
      unique/ambiguous/unknown under any order.
    """
    if len(joins) < 2 or shape.project.names == ("*",):
        return joins
    bindings = [shape.scan.binding] + [join.binding for join in joins]
    if len(set(bindings)) != len(bindings):
        return joins
    scan_names = set(scan_stats.schema.attribute_names)
    join_name_sets = []
    for table_stats in join_stats:
        assert table_stats is not None
        join_name_sets.append(set(table_stats.schema.attribute_names))
    ranked: list[tuple[float, int, Join]] = []
    for index, (join, table_stats) in enumerate(zip(joins, join_stats)):
        assert table_stats is not None
        if join.kind != "inner" or len(join.left_keys) != 1:
            return joins
        left_key = join.left_keys[0]
        right_key = join.right_keys[0]
        if not table_stats.is_unique_key(right_key.name):
            return joins
        if left_key.table is not None:
            if left_key.table != shape.scan.binding:
                return joins
        elif any(left_key.name in names for names in join_name_sets):
            return joins
        if left_key.name not in scan_names:
            return joins
        key_stats = scan_stats.column(left_key.name)
        if key_stats is None:
            return joins
        distinct = max(key_stats.distinct, 1.0)
        selectivity = table_stats.num_rows / max(distinct, table_stats.num_rows, 1.0)
        ranked.append((selectivity, index, join))
    ranked.sort(key=lambda entry: (entry[0], entry[1]))  # stable: ties keep order
    return [join for _, _, join in ranked]


# ----------------------------------------------------------------------
# EXPLAIN rendering
# ----------------------------------------------------------------------
def _expr_text(expression: Expression) -> str:
    try:
        return _expr_sql(expression, ())
    except Exception:  # unrepresentable literal — EXPLAIN must not die
        return repr(expression)


def render_plan(plan: Plan, indent: int = 0) -> str:
    """A human-readable operator tree (the CLI's ``--explain`` body)."""
    pad = "  " * indent
    if isinstance(plan, Limit):
        line = f"{pad}Limit(limit={plan.limit}, offset={plan.offset})"
        return line + "\n" + render_plan(plan.source, indent + 1)
    if isinstance(plan, Project):
        if plan.names == ("*",):
            detail = "*"
        else:
            detail = ", ".join(
                f"{_expr_text(e)} AS {n}"
                for e, n in zip(plan.expressions, plan.names)
            )
        distinct = "DISTINCT " if plan.distinct else ""
        line = f"{pad}Project({distinct}{detail})"
        return line + "\n" + render_plan(plan.source, indent + 1)
    if isinstance(plan, Sort):
        keys = ", ".join(
            _expr_text(k.expression) + (" DESC" if k.descending else "")
            for k in plan.keys
        )
        return f"{pad}Sort({keys})\n" + render_plan(plan.source, indent + 1)
    if isinstance(plan, Filter):
        line = f"{pad}Filter({_expr_text(plan.predicate)})"
        return line + "\n" + render_plan(plan.source, indent + 1)
    if isinstance(plan, Aggregate):
        group = ", ".join(key.qualified for key in plan.group_by)
        rendered_specs = []
        for spec in plan.specs:
            try:
                rendered_specs.append(_spec_sql(spec))
            except Exception:
                rendered_specs.append(repr(spec))
        line = f"{pad}Aggregate(group_by=[{group}], specs=[{', '.join(rendered_specs)}])"
        return line + "\n" + render_plan(plan.source, indent + 1)
    if isinstance(plan, Join):
        alias = f" AS {plan.alias}" if plan.alias else ""
        on = ", ".join(
            f"{l.qualified} = {r.qualified}"
            for l, r in zip(plan.left_keys, plan.right_keys)
        )
        columns = (
            f", columns=[{', '.join(plan.columns)}]"
            if plan.columns is not None
            else ""
        )
        line = f"{pad}Join({plan.kind}, {plan.table}{alias}, on=[{on}]{columns})"
        return line + "\n" + render_plan(plan.source, indent + 1)
    if isinstance(plan, Scan):
        alias = f" AS {plan.alias}" if plan.alias else ""
        columns = (
            f", columns=[{', '.join(plan.columns)}]"
            if plan.columns is not None
            else ""
        )
        return f"{pad}Scan({plan.table}{alias}{columns})"
    return f"{pad}{type(plan).__name__}(...)"
