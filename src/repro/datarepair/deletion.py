"""Minimum tuple-deletion repair (the Chomicki-style extensional fix).

A *subset repair* keeps a maximal set of tuples that satisfies every
FD; the *minimum deletion repair* deletes as few tuples as possible —
i.e. a minimum vertex cover of the conflict graph.  Vertex cover is
NP-hard in general, but conflict graphs decompose into connected
components that are small in practice, so the solver works per
component with three strategies:

* ``EXACT`` — branch-and-bound on each component (optimal; exponential
  only in the component size, capped by ``exact_component_limit``);
* ``GREEDY`` — repeatedly delete the highest-degree tuple (fast, no
  guarantee);
* ``MATCHING`` — the classic 2-approximation via a maximal matching
  (both endpoints of each matched conflict edge are deleted).

``minimum_deletion_repair`` defaults to EXACT with a greedy fallback
for oversized components, and reports which guarantee actually holds.

The point of the module in this reproduction: the intensional repair
(the paper's method) *keeps all tuples* and generalizes the constraint,
while the extensional repair *keeps the constraint* and pays in tuples.
``benchmarks/bench_ablation_datarepair.py`` puts a number on that price
for the same workloads.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass

import networkx as nx

from repro.dc.engine import dc_violating_pairs
from repro.dc.model import DenialConstraint
from repro.fd.fd import FunctionalDependency
from repro.fd.measures import is_exact
from repro.relational.relation import Relation

from .conflicts import ConflictGraph, build_conflict_graph

__all__ = ["DeletionStrategy", "DeletionRepair", "minimum_deletion_repair"]


class DeletionStrategy(enum.Enum):
    """How the per-component vertex cover is computed."""

    EXACT = "exact"
    GREEDY = "greedy"
    MATCHING = "matching"


@dataclass(frozen=True)
class DeletionRepair:
    """The outcome of one deletion-repair computation."""

    original: Relation
    repaired: Relation
    deleted_rows: tuple[int, ...]
    strategy: DeletionStrategy
    optimal: bool
    elapsed_seconds: float

    @property
    def num_deleted(self) -> int:
        """Tuples removed to restore consistency."""
        return len(self.deleted_rows)

    @property
    def deletion_fraction(self) -> float:
        """Deleted tuples as a fraction of the instance."""
        if not self.original.num_rows:
            return 0.0
        return self.num_deleted / self.original.num_rows

    def __str__(self) -> str:
        guarantee = "optimal" if self.optimal else f"{self.strategy.value} heuristic"
        return (
            f"deleted {self.num_deleted}/{self.original.num_rows} tuples "
            f"({guarantee})"
        )


def minimum_deletion_repair(
    relation: Relation,
    fds: list[FunctionalDependency],
    strategy: DeletionStrategy = DeletionStrategy.EXACT,
    exact_component_limit: int = 24,
    conflict_graph: ConflictGraph | None = None,
) -> DeletionRepair:
    """Delete a (near-)minimum set of tuples so every FD holds.

    ``exact_component_limit`` bounds the component size the exact
    branch-and-bound accepts; larger components fall back to greedy and
    the result's ``optimal`` flag turns off.
    """
    start = time.perf_counter()
    graph = conflict_graph or build_conflict_graph(relation, fds)
    cover: set[int] = set()
    optimal = strategy is DeletionStrategy.EXACT
    for component_nodes in graph.components():
        component = graph.graph.subgraph(component_nodes)
        if strategy is DeletionStrategy.EXACT:
            if len(component_nodes) <= exact_component_limit:
                cover |= _exact_cover(component)
            else:
                cover |= _greedy_cover(component)
                optimal = False
        elif strategy is DeletionStrategy.GREEDY:
            cover |= _greedy_cover(component)
        else:
            cover |= _matching_cover(component)
    keep = [row for row in range(relation.num_rows) if row not in cover]
    repaired = relation.take(keep)
    for constraint in graph.fds:
        # The graph may carry denial constraints (build_dc_conflict_graph):
        # those are re-checked through the tiled engine's block scan.
        if isinstance(constraint, DenialConstraint):
            assert not dc_violating_pairs(
                repaired, constraint, limit=1
            ), f"repair left {constraint} violated"
        else:
            assert is_exact(repaired, constraint), f"repair left {constraint} violated"
    return DeletionRepair(
        original=relation,
        repaired=repaired,
        deleted_rows=tuple(sorted(cover)),
        strategy=strategy,
        optimal=optimal and strategy is DeletionStrategy.EXACT,
        elapsed_seconds=time.perf_counter() - start,
    )


def _greedy_cover(graph: nx.Graph) -> set[int]:
    """Max-degree greedy vertex cover."""
    work = nx.Graph(graph)
    cover: set[int] = set()
    while work.number_of_edges():
        node = max(work.nodes, key=lambda n: (work.degree(n), -n))
        cover.add(node)
        work.remove_node(node)
    return cover


def _matching_cover(graph: nx.Graph) -> set[int]:
    """2-approximation: both endpoints of a maximal matching."""
    cover: set[int] = set()
    for left, right in graph.edges:
        if left not in cover and right not in cover:
            cover.add(left)
            cover.add(right)
    return cover


def _exact_cover(graph: nx.Graph) -> set[int]:
    """Optimal vertex cover by branch and bound on one component.

    Classic branching: pick an edge (u, v); every cover contains u or
    v.  The greedy cover provides the initial upper bound, and a
    maximal-matching lower bound prunes hopeless branches.
    """
    best = _greedy_cover(graph)

    def lower_bound(g: nx.Graph) -> int:
        seen: set[int] = set()
        count = 0
        for left, right in g.edges:
            if left not in seen and right not in seen:
                seen.add(left)
                seen.add(right)
                count += 1
        return count

    def branch(g: nx.Graph, chosen: set[int]) -> None:
        nonlocal best
        # Force degree-1 chains: covering the neighbour of a pendant
        # vertex is always at least as good.
        g = nx.Graph(g)
        chosen = set(chosen)
        changed = True
        while changed:
            changed = False
            for node in list(g.nodes):
                if node not in g:
                    continue
                degree = g.degree(node)
                if degree == 0:
                    g.remove_node(node)
                elif degree == 1:
                    neighbour = next(iter(g[node]))
                    chosen.add(neighbour)
                    g.remove_node(neighbour)
                    g.remove_node(node)
                    changed = True
        if len(chosen) >= len(best):
            return
        if not g.number_of_edges():
            best = chosen
            return
        if len(chosen) + lower_bound(g) >= len(best):
            return
        node = max(g.nodes, key=lambda n: (g.degree(n), -n))
        # Branch 1: node in the cover.
        with_node = nx.Graph(g)
        with_node.remove_node(node)
        branch(with_node, chosen | {node})
        # Branch 2: node not in the cover => all neighbours are.
        neighbours = set(g[node])
        without_node = nx.Graph(g)
        without_node.remove_nodes_from(neighbours | {node})
        branch(without_node, chosen | neighbours)

    branch(graph, set())
    return best
