"""Consistent query answering over all subset repairs (the [9–14] view).

Instead of materializing one repair, CQA answers queries with the
tuples that survive in *every* repair.  For FD violations and subset
repairs (maximal independent sets of the conflict graph) the certain /
possible split is structural:

* a tuple is **certain** iff it is isolated in the conflict graph —
  any conflicting tuple ``t`` has a neighbour ``u``, and a maximal
  independent set grown from ``u`` excludes ``t``;
* every tuple is **possible**: each node belongs to some maximal
  independent set (grow one from the node itself).

:func:`certain_answers` / :func:`possible_answers` apply a selection
predicate on top, and :func:`answer_tiers` labels each matching tuple —
the inconsistency-aware SELECT the consistent-query-answering
literature proposes.  The contrast with the paper's approach is the
point: CQA *discards* information the violating tuples carry, while FD
evolution treats exactly those tuples as the signal that the rule, not
the data, changed (paper §1).
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.fd.fd import FunctionalDependency
from repro.relational import expr
from repro.relational.relation import Relation

from .conflicts import ConflictGraph, build_conflict_graph

__all__ = [
    "AnswerTier",
    "TieredRow",
    "answer_tiers",
    "certain_answers",
    "possible_answers",
]

#: Selection predicates: an IR predicate (preferred; runs columnar) or
#: the legacy row-dict callable.
RowPredicate = Callable[[dict[str, Any]], bool] | expr.Predicate


class AnswerTier(enum.Enum):
    """Certainty of one tuple under the repair semantics."""

    CERTAIN = "certain"      # in every subset repair
    POSSIBLE = "possible"    # in some repair, not all


@dataclass(frozen=True)
class TieredRow:
    """One selected row with its certainty tier."""

    index: int
    values: dict[str, Any]
    tier: AnswerTier

    def __str__(self) -> str:
        return f"[{self.tier.value}] row {self.index}: {self.values}"


def _graph(
    relation: Relation,
    fds: list[FunctionalDependency],
    conflict_graph: ConflictGraph | None,
) -> ConflictGraph:
    return conflict_graph or build_conflict_graph(relation, fds)


def certain_answers(
    relation: Relation,
    fds: list[FunctionalDependency],
    predicate: RowPredicate | None = None,
    conflict_graph: ConflictGraph | None = None,
) -> Relation:
    """σ_predicate over the tuples present in **every** subset repair."""
    graph = _graph(relation, fds, conflict_graph)
    keep = sorted(graph.clean_rows())
    result = relation.take(keep)
    if predicate is not None:
        result = result.select(predicate)
    return result


def possible_answers(
    relation: Relation,
    fds: list[FunctionalDependency],
    predicate: RowPredicate | None = None,
    conflict_graph: ConflictGraph | None = None,
) -> Relation:
    """σ_predicate over the tuples present in **some** subset repair.

    Under subset repairs every tuple survives in some maximal
    independent set, so this is just the plain selection — provided for
    symmetry and for the tier report.
    """
    _graph(relation, fds, conflict_graph)  # validate FDs against the schema
    if predicate is None:
        return relation
    return relation.select(predicate)


def answer_tiers(
    relation: Relation,
    fds: list[FunctionalDependency],
    predicate: RowPredicate | None = None,
    conflict_graph: ConflictGraph | None = None,
) -> list[TieredRow]:
    """Every selected tuple, labelled certain or merely possible."""
    graph = _graph(relation, fds, conflict_graph)
    certain = graph.clean_rows()
    names = relation.attribute_names
    if predicate is not None and expr.is_predicate(predicate):
        predicate = expr.as_row_callable(predicate)
    tiers: list[TieredRow] = []
    for index, row in enumerate(relation.rows()):
        values = dict(zip(names, row))
        if predicate is not None and not predicate(values):
            continue
        tier = AnswerTier.CERTAIN if index in certain else AnswerTier.POSSIBLE
        tiers.append(TieredRow(index, values, tier))
    return tiers
