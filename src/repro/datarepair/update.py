"""Value-update repair: fix violations by editing cells, not deleting rows.

The second extensional strategy: inside each violating X-class, rewrite
the consequent of the minority tuples to the class's most frequent
consequent value.  For a single FD this minimizes the number of changed
cells (each class needs ``|class| − |largest Y-group|`` changes, and no
fewer can make the class agree).

With several FDs an update that fixes one dependency can break another
(the repaired consequent participates in other FDs' antecedents), so
:func:`value_update_repair` iterates to a fixpoint and reports
non-convergence honestly instead of looping forever — this interaction
is precisely why the data-cleaning literature (Chiang & Miller's
unified model, the paper's [17]) treats combined data/constraint repair
as a search problem rather than a single pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import is_exact
from repro.relational.relation import Relation

from .conflicts import violating_groups

__all__ = ["CellChange", "UpdateRepair", "value_update_repair"]


@dataclass(frozen=True)
class CellChange:
    """One repaired cell: ``row[attribute]: old_value → new_value``."""

    row: int
    attribute: str
    old_value: Any
    new_value: Any

    def __str__(self) -> str:
        return (
            f"row {self.row}.{self.attribute}: "
            f"{self.old_value!r} -> {self.new_value!r}"
        )


@dataclass(frozen=True)
class UpdateRepair:
    """The outcome of one value-update repair."""

    original: Relation
    repaired: Relation
    changes: tuple[CellChange, ...]
    passes: int
    converged: bool
    elapsed_seconds: float

    @property
    def num_changes(self) -> int:
        """Cells rewritten across all passes."""
        return len(self.changes)

    @property
    def change_fraction(self) -> float:
        """Changed cells as a fraction of all cells."""
        total = self.original.num_rows * self.original.arity
        return self.num_changes / total if total else 0.0

    def __str__(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return f"{self.num_changes} cell changes in {self.passes} passes ({status})"


def value_update_repair(
    relation: Relation,
    fds: list[FunctionalDependency],
    max_passes: int = 10,
) -> UpdateRepair:
    """Rewrite minority consequent values until every FD holds.

    Each pass sweeps the (decomposed) FDs in order; ties between
    equally frequent consequent values break toward the value of the
    earliest row, keeping the repair deterministic.
    """
    start = time.perf_counter()
    decomposed = [fd for declared in fds for fd in declared.decompose()]
    columns: dict[str, list[Any]] = {
        name: relation.column_values(name) for name in relation.attribute_names
    }
    changes: list[CellChange] = []
    passes = 0
    converged = False
    current = relation
    for _ in range(max_passes):
        passes += 1
        pass_changes = _one_pass(current, decomposed, columns)
        changes.extend(pass_changes)
        current = Relation.from_columns(relation.schema, columns)
        if not pass_changes:
            converged = True
            break
    if converged:
        for fd in decomposed:
            assert is_exact(current, fd), f"update repair left {fd} violated"
    return UpdateRepair(
        original=relation,
        repaired=current,
        changes=tuple(changes),
        passes=passes,
        converged=converged,
        elapsed_seconds=time.perf_counter() - start,
    )


def _one_pass(
    relation: Relation,
    fds: list[FunctionalDependency],
    columns: dict[str, list[Any]],
) -> list[CellChange]:
    changes: list[CellChange] = []
    for fd in fds:
        for groups in violating_groups(relation, fd):
            majority = max(groups, key=lambda g: (len(g), -g[0]))
            target = {attr: columns[attr][majority[0]] for attr in fd.consequent}
            for group in groups:
                if group is majority:
                    continue
                for row in group:
                    for attr in fd.consequent:
                        old = columns[attr][row]
                        new = target[attr]
                        if old != new:
                            columns[attr][row] = new
                            changes.append(CellChange(row, attr, old, new))
        if changes:
            # Rebuild so later FDs see this FD's edits.
            relation = Relation.from_columns(relation.schema, columns)
    return changes
