"""Conflict graphs: which tuples jointly violate the declared FDs.

The mainstream response to constraint violation — the one the paper's
introduction contrasts itself against — "re-establish[es] consistency
by changing the data that violate the constraints" ([9–14]).  This
package implements that extensional alternative so the two repair
philosophies can be compared on the same workloads.

The substrate is the *conflict graph* (Arenas, Bertossi & Chomicki):
one node per tuple, one edge per pair of tuples that together violate
some FD (they agree on an antecedent, disagree on the consequent).
Its structure drives everything downstream:

* subset repairs by tuple deletion = maximal independent sets;
* a minimum-size deletion repair = complement of a maximum independent
  set = a minimum vertex cover (:mod:`~repro.datarepair.deletion`);
* consistent query answers over all repairs are readable off vertex
  degrees (:mod:`~repro.datarepair.cqa`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.dc.model import DenialConstraint
from repro.fd.fd import FunctionalDependency
from repro.fd.measures import check_fd_attributes
from repro.relational import kernels
from repro.relational.relation import Relation

__all__ = [
    "Conflict",
    "ConflictGraph",
    "DCConflict",
    "all_violating_pairs",
    "build_conflict_graph",
    "build_dc_conflict_graph",
    "violating_groups",
]


def violating_groups(
    relation: Relation, fd: FunctionalDependency
) -> list[list[list[int]]]:
    """For each violating X-class, its Y-groups (lists of row indices).

    Inside one X-class the conflict edges form a *complete multipartite*
    graph between the Y-groups; this grouped view is the compact form
    both the exact deletion solver and the value-update repair consume.
    Only classes with ≥ 2 Y-groups (i.e. actual violations) appear.
    Grouping runs through the active kernel backend's ``group_rows``
    (a Y-code mask per class on numpy), preserving the first-seen group
    order the dict loop produced.
    """
    x_partition = relation.stripped_partition(list(fd.antecedent))
    y_columns = [relation.column(a).kernel_codes() for a in fd.consequent]
    backend = kernels.get_backend()
    grouped: list[list[list[int]]] = []
    for cls_rows in x_partition:
        by_y = backend.group_rows(y_columns, cls_rows)
        if len(by_y) > 1:
            grouped.append(by_y)
    return grouped


def all_violating_pairs(
    relation: Relation, fd: FunctionalDependency, limit: int | None = None
) -> list[tuple[int, int]]:
    """*Every* unordered violating pair of ``fd`` (unlike the witness
    sampler :func:`repro.fd.measures.violating_pairs`).

    Complete enumeration is what gives the conflict graph its repair
    semantics (maximal independent sets = subset repairs); it is
    quadratic within each violating X-class, so ``limit`` exists for
    previews only.
    """
    pairs: list[tuple[int, int]] = []
    for groups in violating_groups(relation, fd):
        for i, group in enumerate(groups):
            for other in groups[i + 1 :]:
                for left in group:
                    for right in other:
                        pairs.append((left, right) if left < right else (right, left))
                        if limit is not None and len(pairs) >= limit:
                            return pairs
    return pairs


@dataclass(frozen=True)
class Conflict:
    """One violating pair: rows ``(left, right)`` break ``fd``."""

    left: int
    right: int
    fd: FunctionalDependency

    def __str__(self) -> str:
        return f"rows ({self.left}, {self.right}) violate {self.fd}"


@dataclass(frozen=True)
class DCConflict:
    """One violating pair: rows ``(left, right)`` break ``dc``.

    Exposes the constraint under the ``fd`` name too, so the whole
    :class:`ConflictGraph` machinery (components, deletion repairs,
    CQA degree reads) applies to denial constraints unchanged.
    """

    left: int
    right: int
    dc: DenialConstraint

    @property
    def fd(self) -> DenialConstraint:
        """Duck-typing alias: the violated constraint."""
        return self.dc

    def __str__(self) -> str:
        return f"rows ({self.left}, {self.right}) violate {self.dc}"


@dataclass
class ConflictGraph:
    """The conflict graph of a relation instance under a set of FDs."""

    relation: Relation
    fds: tuple[FunctionalDependency, ...]
    conflicts: list[Conflict] = field(default_factory=list)

    def __post_init__(self) -> None:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.relation.num_rows))
        for conflict in self.conflicts:
            graph.add_edge(conflict.left, conflict.right)
        self._graph = graph

    @property
    def graph(self) -> nx.Graph:
        """The underlying :mod:`networkx` graph (nodes = row indices)."""
        return self._graph

    @property
    def num_conflicts(self) -> int:
        """Number of violating pairs (multi-FD duplicates included)."""
        return len(self.conflicts)

    @property
    def num_edges(self) -> int:
        """Distinct conflicting row pairs."""
        return self._graph.number_of_edges()

    @property
    def is_consistent(self) -> bool:
        """Whether the instance satisfies every declared FD."""
        return not self.conflicts

    def conflicting_rows(self) -> set[int]:
        """Rows involved in at least one conflict."""
        return {row for conflict in self.conflicts for row in (conflict.left, conflict.right)}

    def clean_rows(self) -> set[int]:
        """Rows involved in no conflict (present in *every* subset repair)."""
        return set(range(self.relation.num_rows)) - self.conflicting_rows()

    def conflicts_of(self, row: int) -> list[Conflict]:
        """All conflicts touching one row."""
        return [c for c in self.conflicts if row in (c.left, c.right)]

    def fds_violated(self) -> list[FunctionalDependency]:
        """The declared FDs with at least one conflict, in declaration order."""
        violated = {c.fd for c in self.conflicts}
        return [fd for fd in self.fds if fd in violated]

    def components(self) -> list[set[int]]:
        """Connected components with ≥ 2 nodes (the conflict clusters).

        Deletion repairs decompose over components, which is what makes
        exact minimum repairs feasible: components are usually small
        even when the instance is large.
        """
        return [
            set(component)
            for component in nx.connected_components(self._graph)
            if len(component) > 1
        ]


def build_conflict_graph(
    relation: Relation,
    fds: list[FunctionalDependency],
    max_conflicts_per_fd: int | None = None,
) -> ConflictGraph:
    """Collect the violating pairs of every FD into one graph.

    Multi-consequent FDs are decomposed first, matching the repair
    layer's normalization.  ``max_conflicts_per_fd`` truncates pair
    enumeration per FD (designer-facing previews); exact repairs need
    the full graph.
    """
    conflicts: list[Conflict] = []
    decomposed: list[FunctionalDependency] = []
    for declared in fds:
        for fd in declared.decompose():
            check_fd_attributes(relation, fd)
            decomposed.append(fd)
            for left, right in all_violating_pairs(
                relation, fd, limit=max_conflicts_per_fd
            ):
                conflicts.append(Conflict(left, right, fd))
    return ConflictGraph(relation, tuple(decomposed), conflicts)


def build_dc_conflict_graph(
    relation: Relation,
    dcs: list[DenialConstraint],
    max_conflicts_per_dc: int | None = None,
) -> ConflictGraph:
    """The conflict graph of a relation under a set of denial
    constraints.

    Violating pairs are enumerated by the tiled evidence engine
    (:func:`repro.dc.engine.dc_violating_pairs`): each DC's own
    predicates are evaluated block-vectorized over the pair space, so
    the graph costs O(pairs · |DC attrs| / SIMD) instead of the row-dict
    interpreter of :meth:`DenialConstraint.violations`.  Edges are
    undirected, so each ordered violation lands once (``left < right``),
    mirroring the FD builder's convention.  The result plugs into the
    deletion-repair and CQA machinery unchanged — subset repairs of DC
    violations are maximal independent sets exactly as for FDs.

    ``max_conflicts_per_dc`` caps the *unordered* edges kept per DC
    (previews): the cap is applied after collapsing ordered hits, so
    both kernel backends deliver the full cap.  Which edges survive a
    truncation follows the block-scan order and may differ between
    backends; the untruncated graph is backend-identical.
    """
    from repro.dc.engine import dc_violating_pairs

    conflicts: list[Conflict | DCConflict] = []
    for dc in dcs:
        for attribute in sorted(dc.attributes):
            relation.schema.validate_names([attribute])
        seen: set[tuple[int, int]] = set()
        # Each unordered edge yields at most two ordered hits, so 2×
        # the cap guarantees enough hits to fill it.
        limit = None if max_conflicts_per_dc is None else 2 * max_conflicts_per_dc
        for left, right in dc_violating_pairs(relation, dc, limit=limit):
            pair = (left, right) if left < right else (right, left)
            if pair in seen:
                continue
            seen.add(pair)
            conflicts.append(DCConflict(pair[0], pair[1], dc))
            if max_conflicts_per_dc is not None and len(seen) >= max_conflicts_per_dc:
                break
    return ConflictGraph(relation, tuple(dcs), conflicts)
