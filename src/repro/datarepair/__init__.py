"""Extensional repair: the "change the data" alternative (paper §1–§2).

The paper's introduction contrasts its intensional method (evolve the
constraint, keep every tuple) with the mainstream extensional response
(restore consistency by changing the violating data, [9–14]).  This
package implements the extensional side so both philosophies run on
the same substrate:

* :mod:`~repro.datarepair.conflicts` — the conflict graph of an
  instance under a set of FDs;
* :mod:`~repro.datarepair.deletion` — minimum tuple-deletion repair
  (exact branch-and-bound, greedy, matching 2-approximation);
* :mod:`~repro.datarepair.update` — minimal cell-update repair with
  multi-FD fixpoint iteration;
* :mod:`~repro.datarepair.cqa` — consistent query answering over all
  subset repairs (certain vs possible answers).
"""

from .conflicts import (
    Conflict,
    ConflictGraph,
    all_violating_pairs,
    build_conflict_graph,
    violating_groups,
)
from .cqa import AnswerTier, TieredRow, answer_tiers, certain_answers, possible_answers
from .deletion import DeletionRepair, DeletionStrategy, minimum_deletion_repair
from .update import CellChange, UpdateRepair, value_update_repair

__all__ = [
    "AnswerTier",
    "CellChange",
    "Conflict",
    "ConflictGraph",
    "DeletionRepair",
    "DeletionStrategy",
    "TieredRow",
    "UpdateRepair",
    "all_violating_pairs",
    "answer_tiers",
    "build_conflict_graph",
    "certain_answers",
    "minimum_deletion_repair",
    "possible_answers",
    "value_update_repair",
    "violating_groups",
]
