"""Streaming writer for the chunked columnar store.

:class:`StoreWriter` accepts rows one at a time (or in bulk), encodes
one *chunk-local* dictionary per column per chunk, and never holds more
than one chunk of raw values in memory.  The global dictionary is built
by an **external-sort merge**: each flushed chunk also spills its local
dictionary as a sorted run of ``(serialized value, local code)``
records, and :meth:`finalize` k-way-merges the runs per column —
assigning global codes in sorted-serialization order, writing the
global dictionary + offset index, and emitting the per-chunk
local→global remap tables.  Peak memory is therefore bounded by one
chunk of values plus one ``int64`` remap slot per *distinct* value per
column — the distinct **values** themselves stream through the merge
and are never resident together.

The encoding of each chunk runs through the active kernel backend
(:func:`repro.relational.encoding.EncodedColumn.from_values`), so the
writer is exactly as fast as the engine's normal ingest path.
"""

from __future__ import annotations

import heapq
import os
import struct
from array import array
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path
from typing import IO, Any

from repro.relational.encoding import NULL_CODE, EncodedColumn
from repro.relational.errors import ArityError
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

from .format import (
    CODES_HEADER,
    CODES_MAGIC,
    ChunkZone,
    ColumnMeta,
    StoreManifest,
    codes_path,
    dict_path,
    dictidx_path,
    dumps_value,
    localdict_path,
    remap_path,
    require_little_endian,
)

__all__ = ["DEFAULT_CHUNK_ROWS", "ZONE_MEMBER_LIMIT", "StoreWriter", "write_store"]

DEFAULT_CHUNK_ROWS = 65_536

#: A chunk dictionary at most this large is stored verbatim in the zone
#: map (``ChunkZone.members``) for exact membership refutation.
ZONE_MEMBER_LIMIT = 16

_RUN_RECORD = struct.Struct("<IQ")  # key length, local code


def write_store(
    relation: Relation,
    directory: str | Path,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
):
    """Persist an in-memory relation as a chunked store; returns the
    opened :class:`~repro.storage.reader.StoredRelation`."""
    writer = StoreWriter(directory, relation.schema, chunk_rows=chunk_rows)
    writer.append_rows(relation.rows())
    return writer.finalize()


class _ColumnState:
    """Per-column open files and accumulated accounting."""

    __slots__ = (
        "position",
        "codes_file",
        "localdict_file",
        "spill_file",
        "spill_runs",
        "chunk_cardinalities",
        "chunk_dict_spans",
        "chunk_zones",
        "null_count",
        "localdict_offset",
    )

    def __init__(self, position: int, directory: Path) -> None:
        self.position = position
        self.codes_file: IO[bytes] = open(codes_path(directory, position), "wb")
        self.codes_file.write(b"\x00" * CODES_HEADER.size)  # patched at finalize
        self.localdict_file: IO[bytes] = open(
            localdict_path(directory, position), "wb"
        )
        self.spill_file: IO[bytes] = open(
            directory / f"col_{position:05d}.spill", "w+b"
        )
        self.spill_runs: list[tuple[int, int]] = []  # (offset, record count)
        self.chunk_cardinalities: list[int] = []
        self.chunk_dict_spans: list[tuple[int, int]] = []
        self.chunk_zones: list[ChunkZone] = []
        self.null_count = 0
        self.localdict_offset = 0


class StoreWriter:
    """Stream rows into a chunked column store directory."""

    def __init__(
        self,
        directory: str | Path,
        schema: RelationSchema,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        validate: bool = False,
    ) -> None:
        require_little_endian()
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.schema = schema
        self.chunk_rows = chunk_rows
        self.validate = validate
        self._arity = schema.arity
        self._buffer: list[list[Any]] = [[] for _ in range(self._arity)]
        self._buffered = 0
        self._chunk_sizes: list[int] = []
        self._columns = [
            _ColumnState(position, self.directory) for position in range(self._arity)
        ]
        self._finalized = False

    @property
    def num_rows(self) -> int:
        """Rows accepted so far (flushed + buffered)."""
        return sum(self._chunk_sizes) + self._buffered

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append_row(self, row: Sequence[Any]) -> None:
        if self._finalized:
            raise RuntimeError("writer already finalized")
        if len(row) != self._arity:
            raise ArityError(self._arity, len(row))
        if self.validate:
            row = [
                self._validate_value(attr, value)
                for attr, value in zip(self.schema.attributes, row)
            ]
        for values, value in zip(self._buffer, row):
            values.append(value)
        self._buffered += 1
        if self._buffered >= self.chunk_rows:
            self._flush_chunk()

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.append_row(row)

    @staticmethod
    def _chunk_zone(column: EncodedColumn) -> ChunkZone:
        """Zone-map facts visible at flush time (code span filled at
        finalize once global codes exist).

        ``kind`` is set only when every non-null value is one comparable
        family — numbers excluding booleans (NaN excluded from the
        range) or strings — because refutation by range is only sound
        within a family.
        """
        dictionary = column.dictionary
        members = (
            tuple(dictionary) if len(dictionary) <= ZONE_MEMBER_LIMIT else None
        )
        kind: str | None = None
        lo = hi = None
        if dictionary:
            if all(
                isinstance(value, (int, float)) and not isinstance(value, bool)
                for value in dictionary
            ):
                ordered = [
                    value
                    for value in dictionary
                    if not (isinstance(value, float) and value != value)
                ]
                if ordered:
                    kind = "num"
                    lo, hi = min(ordered), max(ordered)
            elif all(isinstance(value, str) for value in dictionary):
                kind = "str"
                lo, hi = min(dictionary), max(dictionary)
        return ChunkZone(
            kind=kind,
            min_value=lo,
            max_value=hi,
            null_count=column.null_count,
            members=members,
        )

    @staticmethod
    def _validate_value(attr, value):
        if value is None:
            if not attr.nullable:
                raise ValueError(f"NULL in non-nullable column {attr.name!r}")
            return None
        if attr.type.validate(value):
            return value
        return attr.type.coerce(value)

    # ------------------------------------------------------------------
    # Chunk flush: local encode + sorted spill run
    # ------------------------------------------------------------------
    def _flush_chunk(self) -> None:
        if not self._buffered:
            return
        self._chunk_sizes.append(self._buffered)
        for state, values in zip(self._columns, self._buffer):
            column = EncodedColumn.from_values(values)
            codes = array("q", column.codes)
            state.codes_file.write(codes.tobytes())
            state.null_count += column.null_count
            state.chunk_cardinalities.append(column.cardinality)
            state.chunk_zones.append(self._chunk_zone(column))
            # Local dictionary, one JSON value per line.
            lines = b"".join(
                dumps_value(value) + b"\n" for value in column.dictionary
            )
            state.localdict_file.write(lines)
            state.chunk_dict_spans.append((state.localdict_offset, len(lines)))
            state.localdict_offset += len(lines)
            # Sorted spill run for the global-dictionary merge.
            run = sorted(
                (dumps_value(value), code)
                for code, value in enumerate(column.dictionary)
            )
            offset = state.spill_file.tell()
            for key, code in run:
                state.spill_file.write(_RUN_RECORD.pack(len(key), code))
                state.spill_file.write(key)
            state.spill_runs.append((offset, len(run)))
            values.clear()
        self._buffered = 0

    # ------------------------------------------------------------------
    # Finalize: external merge of the per-chunk dictionaries
    # ------------------------------------------------------------------
    def finalize(self):
        """Flush, merge dictionaries, write the manifest; returns the
        opened :class:`~repro.storage.reader.StoredRelation`."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        self._flush_chunk()
        self._finalized = True
        num_rows = sum(self._chunk_sizes)
        columns: dict[str, ColumnMeta] = {}
        for attr, state in zip(self.schema.attributes, self._columns):
            header = CODES_HEADER.pack(
                CODES_MAGIC,
                1,
                0,
                self.chunk_rows,
                len(self._chunk_sizes),
                num_rows,
            )
            state.codes_file.seek(0)
            state.codes_file.write(header)
            state.codes_file.close()
            state.localdict_file.close()
            state.spill_file.flush()
            cardinality, dict_bytes, code_spans = self._merge_dictionaries(state)
            state.spill_file.close()
            os.unlink(state.spill_file.name)
            for zone, (min_code, max_code) in zip(state.chunk_zones, code_spans):
                zone.min_code = min_code
                zone.max_code = max_code
            columns[attr.name] = ColumnMeta(
                cardinality=cardinality,
                null_count=state.null_count,
                chunk_cardinalities=state.chunk_cardinalities,
                chunk_dict_spans=state.chunk_dict_spans,
                dict_bytes=dict_bytes,
                chunk_zones=state.chunk_zones,
            )
        manifest = StoreManifest(
            name=self.schema.name,
            schema=self.schema,
            num_rows=num_rows,
            chunk_rows=self.chunk_rows,
            chunk_sizes=self._chunk_sizes,
            columns=columns,
            extra={},
        )
        manifest.save(self.directory)
        from .reader import StoredRelation

        return StoredRelation(self.directory, manifest)

    def _merge_dictionaries(
        self, state: _ColumnState
    ) -> tuple[int, int, list[tuple[int, int]]]:
        """K-way merge of the sorted spill runs → global dict + remaps.

        Returns ``(global cardinality, dictionary bytes, per-chunk
        (min, max) global-code spans)``.  Only the remap tables (one
        ``int64`` per distinct value per chunk) are RAM-resident;
        values stream run → merged dictionary file.
        """
        remaps = [
            array("q", bytes(8 * (cardinality + 1)))
            for cardinality in state.chunk_cardinalities
        ]
        for remap in remaps:
            remap[-1] = NULL_CODE  # total lookup: codes[-1] hits the sentinel
        streams = [
            _run_records(state.spill_file.name, offset, count, chunk)
            for chunk, (offset, count) in enumerate(state.spill_runs)
        ]
        global_code = -1
        previous_key: bytes | None = None
        dict_file = open(dict_path(self.directory, state.position), "wb")
        idx_file = open(dictidx_path(self.directory, state.position), "wb")
        offset = 0
        try:
            for key, chunk, local_code in heapq.merge(*streams):
                if key != previous_key:
                    global_code += 1
                    previous_key = key
                    idx_file.write(struct.pack("<Q", offset))
                    dict_file.write(key)
                    dict_file.write(b"\n")
                    offset += len(key) + 1
                remaps[chunk][local_code] = global_code
            idx_file.write(struct.pack("<Q", offset))
        finally:
            dict_file.close()
            idx_file.close()
        with open(remap_path(self.directory, state.position), "wb") as remap_file:
            for remap in remaps:
                remap_file.write(remap.tobytes())
        code_spans = [
            (min(remap[:-1]), max(remap[:-1])) if len(remap) > 1 else (-1, -1)
            for remap in remaps
        ]
        return global_code + 1, offset, code_spans


def _run_records(
    path: str, offset: int, count: int, chunk: int
) -> Iterator[tuple[bytes, int, int]]:
    """Stream one sorted spill run as ``(key, chunk, local code)``."""
    with open(path, "rb") as handle:
        handle.seek(offset)
        for _ in range(count):
            header = handle.read(_RUN_RECORD.size)
            length, code = _RUN_RECORD.unpack(header)
            key = handle.read(length)
            yield key, chunk, code
