"""Reading side of the chunked columnar store.

:class:`StoredRelation` opens a store directory and exposes the
relation chunk by chunk:

* :meth:`chunk_relation` materializes one chunk as a plain in-memory
  :class:`~repro.relational.relation.Relation` (local codes + local
  dictionary — no global state is touched), which is how every
  chunk-at-a-time consumer (SQL scans, evidence sampling, service
  ingest, chunk adoption) gets its working set;
* :meth:`iter_global_codes` lifts chunk code pages into the *global*
  code space through the per-chunk remap tables — the representation
  the streaming statistics kernels (:mod:`repro.storage.profile`)
  consume.  On the numpy backend the code pages are ``np.memmap``
  views (the OS pages them in and out); the stdlib-pure backend reads
  through ``mmap`` into per-chunk ``array('q')`` working sets.
* :meth:`adopt_into` folds chunks into a ``Relation.extend`` chain, so
  the delta engine and the temporal ``TupleLog`` ride the same files.

Everything here is bounded by one chunk (plus one remap table per open
column) — never by the relation.
"""

from __future__ import annotations

import mmap
import struct
from array import array
from collections.abc import Iterator, Sequence
from pathlib import Path
from typing import Any

from repro.relational import kernels
from repro.relational.encoding import EncodedColumn
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

from .format import (
    CODES_HEADER,
    CODES_MAGIC,
    ChunkZone,
    StoreFormatError,
    StoreManifest,
    codes_path,
    dict_path,
    dictidx_path,
    loads_value,
    localdict_path,
    remap_path,
    require_little_endian,
)

__all__ = ["StoredRelation", "open_store"]


def open_store(directory: str | Path) -> "StoredRelation":
    """Open a store directory written by :class:`~repro.storage.writer.StoreWriter`."""
    directory = Path(directory)
    return StoredRelation(directory, StoreManifest.load(directory))


class _ColumnFiles:
    """Lazily opened readers for one column's files."""

    __slots__ = ("directory", "position", "_codes_mmap", "_codes_np", "_remaps")

    def __init__(self, directory: Path, position: int) -> None:
        self.directory = directory
        self.position = position
        self._codes_mmap: mmap.mmap | None = None
        self._codes_np: Any = None
        self._remaps: dict[int, Any] = {}

    def codes_buffer(self) -> mmap.mmap:
        if self._codes_mmap is None:
            path = codes_path(self.directory, self.position)
            with open(path, "rb") as handle:
                header = handle.read(CODES_HEADER.size)
                magic = CODES_HEADER.unpack(header)[0]
                if magic != CODES_MAGIC:
                    raise StoreFormatError(f"bad magic in {path}")
                self._codes_mmap = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        return self._codes_mmap

    def codes_memmap(self):
        if self._codes_np is None:
            import numpy as np

            self._codes_np = np.memmap(
                codes_path(self.directory, self.position),
                dtype="<i8",
                mode="r",
                offset=CODES_HEADER.size,
            )
        return self._codes_np

    def close(self) -> None:
        if self._codes_mmap is not None:
            self._codes_mmap.close()
            self._codes_mmap = None
        self._codes_np = None
        self._remaps.clear()


class StoredRelation:
    """A relation backed by chunked on-disk column files."""

    def __init__(self, directory: Path, manifest: StoreManifest) -> None:
        require_little_endian()
        self.directory = Path(directory)
        self.manifest = manifest
        self._files = [
            _ColumnFiles(self.directory, position)
            for position in range(manifest.schema.arity)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RelationSchema:
        return self.manifest.schema

    @property
    def name(self) -> str:
        return self.manifest.name

    @property
    def num_rows(self) -> int:
        return self.manifest.num_rows

    @property
    def num_chunks(self) -> int:
        return self.manifest.num_chunks

    @property
    def chunk_sizes(self) -> list[int]:
        return list(self.manifest.chunk_sizes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self.schema.attribute_names

    def cardinality(self, attr: str) -> int:
        """Global distinct non-NULL values of one column (from the manifest)."""
        return self.manifest.columns[attr].cardinality

    def null_count(self, attr: str) -> int:
        return self.manifest.columns[attr].null_count

    def chunk_zone(self, attr: str, chunk: int) -> ChunkZone | None:
        """The zone map for one chunk of one column, or ``None`` when
        the store predates format v2 (scans then never skip)."""
        self._chunk_span(chunk)
        zones = self.manifest.columns[attr].chunk_zones
        return None if zones is None else zones[chunk]

    def materialized_bytes(self) -> int:
        """See :meth:`repro.storage.format.StoreManifest.materialized_bytes`."""
        return self.manifest.materialized_bytes()

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return (
            f"StoredRelation({self.name!r}: {self.schema.arity} attributes, "
            f"{self.num_rows} rows, {self.num_chunks} chunks @ {self.directory})"
        )

    def close(self) -> None:
        """Release mmaps and cached remap tables."""
        for files in self._files:
            files.close()

    def __enter__(self) -> "StoredRelation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Chunk access (local code space)
    # ------------------------------------------------------------------
    def _position(self, attr: str) -> int:
        return self.schema.position(attr)

    def _chunk_span(self, chunk: int) -> tuple[int, int]:
        if not 0 <= chunk < self.num_chunks:
            raise IndexError(
                f"chunk {chunk} out of range 0..{self.num_chunks - 1}"
            )
        start = self.manifest.chunk_start(chunk)
        return start, start + self.manifest.chunk_sizes[chunk]

    def chunk_local_codes(self, attr: str, chunk: int) -> array:
        """One chunk's local codes as an ``array('q')`` working set."""
        start, end = self._chunk_span(chunk)
        buffer = self._files[self._position(attr)].codes_buffer()
        base = CODES_HEADER.size
        codes = array("q")
        codes.frombytes(buffer[base + 8 * start : base + 8 * end])
        return codes

    def chunk_dictionary(self, attr: str, chunk: int) -> list[Any]:
        """One chunk's local dictionary (decoded values, code order)."""
        self._chunk_span(chunk)
        position = self._position(attr)
        offset, length = self.manifest.columns[attr].chunk_dict_spans[chunk]
        if length == 0:
            return []
        with open(localdict_path(self.directory, position), "rb") as handle:
            handle.seek(offset)
            blob = handle.read(length)
        return [loads_value(line) for line in blob.split(b"\n") if line]

    def chunk_relation(
        self, chunk: int, attrs: Sequence[str] | None = None
    ) -> Relation:
        """Materialize one chunk as an in-memory :class:`Relation`.

        The chunk is fully self-contained (local codes + local
        dictionary), so this touches exactly one code page and one
        dictionary span per column.
        """
        names = (
            self.schema.attribute_names
            if attrs is None
            else self.schema.validate_names(attrs)
        )
        start, end = self._chunk_span(chunk)
        schema = (
            self.schema if attrs is None else self.schema.project(names)
        )
        use_numpy = kernels.active_backend_name() == "numpy"
        columns: dict[str, EncodedColumn] = {}
        for name in names:
            codes = self.chunk_local_codes(name, chunk)
            column = EncodedColumn(list(codes), self.chunk_dictionary(name, chunk))
            if use_numpy:
                import numpy as np

                arr = np.asarray(codes, dtype=np.int64)
                arr.flags.writeable = False
                column._codes_array = arr
            columns[name] = column
        return Relation(schema, columns, end - start)

    def iter_chunk_relations(
        self, attrs: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        """Yield every chunk as an in-memory relation, in row order."""
        for chunk in range(self.num_chunks):
            yield self.chunk_relation(chunk, attrs)

    # ------------------------------------------------------------------
    # Global code space
    # ------------------------------------------------------------------
    def _remap(self, attr: str, chunk: int):
        """The chunk's local→global remap (trailing ``-1`` sentinel)."""
        position = self._position(attr)
        files = self._files[position]
        backend = kernels.active_backend_name()
        cached = files._remaps.get((chunk, backend))
        if cached is not None:
            return cached
        meta = self.manifest.columns[attr]
        offset = 8 * (sum(meta.chunk_cardinalities[:chunk]) + chunk)
        entries = meta.chunk_cardinalities[chunk] + 1
        with open(remap_path(self.directory, position), "rb") as handle:
            handle.seek(offset)
            blob = handle.read(8 * entries)
        if backend == "numpy":
            import numpy as np

            remap = np.frombuffer(blob, dtype="<i8")
        else:
            remap = array("q")
            remap.frombytes(blob)
        files._remaps[(chunk, backend)] = remap
        return remap

    def chunk_global_codes(self, attr: str, chunk: int):
        """One chunk's codes lifted to the global code space.

        numpy backend: an ``int64`` ndarray gathered straight off the
        column ``memmap``; python backend: a ``list[int]``.  NULL stays
        ``-1`` (the remap's trailing sentinel makes ``[-1]`` total).
        """
        start, end = self._chunk_span(chunk)
        remap = self._remap(attr, chunk)
        if kernels.active_backend_name() == "numpy":
            page = self._files[self._position(attr)].codes_memmap()[start:end]
            return remap[page]
        codes = self.chunk_local_codes(attr, chunk)
        return [remap[code] for code in codes]

    def iter_global_codes(
        self, attrs: Sequence[str]
    ) -> Iterator[tuple[int, list]]:
        """Yield ``(chunk_index, [codes per attr])`` chunk by chunk."""
        names = self.schema.validate_names(attrs)
        for chunk in range(self.num_chunks):
            yield chunk, [self.chunk_global_codes(name, chunk) for name in names]

    def global_value(self, attr: str, global_code: int) -> Any:
        """Decode one global code via the on-disk dictionary index."""
        if global_code == -1:
            return None
        meta = self.manifest.columns[attr]
        if not 0 <= global_code < meta.cardinality:
            raise IndexError(
                f"global code {global_code} out of range for {attr!r}"
            )
        position = self._position(attr)
        with open(dictidx_path(self.directory, position), "rb") as idx:
            idx.seek(8 * global_code)
            start, end = struct.unpack("<QQ", idx.read(16))
        with open(dict_path(self.directory, position), "rb") as handle:
            handle.seek(start)
            line = handle.read(end - start)
        return loads_value(line.rstrip(b"\n"))

    # ------------------------------------------------------------------
    # Materialization and adoption
    # ------------------------------------------------------------------
    def to_relation(self, attrs: Sequence[str] | None = None) -> Relation:
        """Materialize the whole store in memory (small stores only)."""
        names = (
            self.schema.attribute_names
            if attrs is None
            else self.schema.validate_names(attrs)
        )
        schema = self.schema if attrs is None else self.schema.project(names)
        if self.num_chunks == 0:
            return Relation.from_columns(schema, {name: [] for name in names})
        relation = self.chunk_relation(0, attrs)
        if self.num_chunks > 1:
            relation = self.adopt_into(relation, start_chunk=1, attrs=attrs)
        return relation

    def adopt_into(
        self,
        base: Relation,
        start_chunk: int = 0,
        end_chunk: int | None = None,
        attrs: Sequence[str] | None = None,
    ) -> Relation:
        """Fold chunks ``[start_chunk, end_chunk)`` into ``base`` via
        ``Relation.extend`` — chunk adoption.

        Each adopted chunk decodes once and rides the extend path, so
        the delta engine folds it forward in O(chunk) and any tracked
        attribute sets stay warm; the returned head is byte-identical
        to a cold build over the concatenation (the extend contract).
        """
        end = self.num_chunks if end_chunk is None else end_chunk
        head = base
        for chunk in range(start_chunk, end):
            chunk_relation = self.chunk_relation(chunk, attrs)
            head = head.extend(chunk_relation.rows(), validate=False)
        return head
