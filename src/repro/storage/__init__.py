"""Out-of-core chunked columnar storage (PR 9).

The store puts the engine's dictionary-encoded columns on disk as
chunked ``int64`` code pages behind :class:`StoredRelation`, so
profiling, discovery, and monitoring run bounded-memory on relations
larger than RAM:

* :mod:`repro.storage.format` — the on-disk layout (struct-packed
  headers, raw code pages, spill-merged global dictionaries);
* :mod:`repro.storage.writer` — the streaming :class:`StoreWriter`
  with external-sort dictionary merges;
* :mod:`repro.storage.reader` — :class:`StoredRelation`: memory-mapped
  chunk access (``np.memmap`` on the fast backend, ``mmap`` +
  ``array`` stdlib-pure), global-code iteration, chunk adoption into
  ``Relation.extend`` chains;
* :mod:`repro.storage.profile` — the chunk-at-a-time consumers:
  streamed partition statistics, exact spill-merge group stats, TANE
  level-1 discovery, tiled-evidence sample passes, with optional
  sketch fast paths (:mod:`repro.sketch`);
* :mod:`repro.storage.sqlbridge` — SQL scans over attached stores
  (chunked predicate-pushdown materialization).
"""

from .format import ChunkZone, StoreFormatError, StoreManifest
from .reader import StoredRelation, open_store
from .writer import DEFAULT_CHUNK_ROWS, StoreWriter, write_store

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "ChunkZone",
    "StoreFormatError",
    "StoreManifest",
    "StoreWriter",
    "StoredRelation",
    "open_store",
    "write_store",
]
