"""On-disk layout of the chunked columnar store (format v2).

A *store* is one directory per relation holding:

``manifest.json``
    Schema (names, types, nullability), total row count, per-chunk row
    counts, and per-column accounting (global cardinality, NULL count,
    per-chunk local-dictionary sizes and byte spans).  Format v2 adds
    per-chunk **zone maps** (:class:`ChunkZone`: raw-value min/max,
    global-code span, NULL count, optional small-dictionary
    membership) that scans use to skip chunks a pushed-down predicate
    refutes; v1 manifests still load, with ``chunk_zones=None``.

``col_<i>.codes``
    A 32-byte struct-packed header (:data:`CODES_HEADER`) followed by
    the column's dictionary codes as raw little-endian ``int64`` pages,
    one contiguous page per chunk in row order.  Codes are
    **chunk-local**: each chunk is a self-contained dictionary-encoded
    column, so materializing one chunk never touches global state.
    NULL is ``-1``, exactly as in
    :mod:`repro.relational.encoding`.

``col_<i>.localdict``
    The per-chunk local dictionaries, one JSON value per line in local
    code order, chunks concatenated (byte spans in the manifest).

``col_<i>.remap``
    Per chunk, ``cardinality + 1`` little-endian ``int64`` entries
    mapping local code → global code.  The extra trailing entry is the
    ``-1`` NULL sentinel, so ``remap[code]`` is total (Python's and
    NumPy's ``[-1]`` both hit the last slot) and a chunk's codes lift
    to global codes with one indexed gather.

``col_<i>.dict``
    The merged *global* dictionary: one JSON value per line in global
    code order.  Global codes are assigned in sorted-serialization
    order during the external merge (:mod:`repro.storage.writer`), so
    the file doubles as the sorted run of all distinct values.

``col_<i>.dictidx``
    ``cardinality + 1`` little-endian ``uint64`` byte offsets into
    ``col_<i>.dict`` — random access to any global value without
    loading the dictionary.

Values are serialized with :func:`dumps_value` (compact JSON,
``NaN``/``Infinity`` allowed); the serialized bytes are also the total
order the dictionary merge sorts by, which keeps the merge type-blind.
Code pages use native little-endian layout — the binary format is
explicitly little-endian, and :func:`require_little_endian` guards the
(purely theoretical, for this codebase) big-endian host case.
"""

from __future__ import annotations

import json
import struct
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType

__all__ = [
    "CODES_HEADER",
    "CODES_MAGIC",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "ChunkZone",
    "ColumnMeta",
    "StoreFormatError",
    "StoreManifest",
    "codes_path",
    "dict_path",
    "dictidx_path",
    "dumps_value",
    "loads_value",
    "localdict_path",
    "remap_path",
    "require_little_endian",
]

FORMAT_NAME = "repro-columnar"
#: v2 added per-chunk zone maps (``ColumnMeta.chunk_zones``); v1 stores
#: load fine with ``chunk_zones=None`` — readers then never skip chunks.
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

#: ``col_<i>.codes`` header: magic, version, reserved, chunk_rows,
#: num_chunks, num_rows.
CODES_HEADER = struct.Struct("<4sHHQQQ")
CODES_MAGIC = b"RPRC"


class StoreFormatError(Exception):
    """A store directory is missing, corrupt, or from an unknown version."""


def require_little_endian() -> None:
    """The raw code pages are little-endian; refuse to run elsewhere."""
    if sys.byteorder != "little":
        raise StoreFormatError(
            "the chunked store's raw int64 pages require a little-endian host"
        )


def codes_path(directory: Path, position: int) -> Path:
    return directory / f"col_{position:05d}.codes"


def localdict_path(directory: Path, position: int) -> Path:
    return directory / f"col_{position:05d}.localdict"


def remap_path(directory: Path, position: int) -> Path:
    return directory / f"col_{position:05d}.remap"


def dict_path(directory: Path, position: int) -> Path:
    return directory / f"col_{position:05d}.dict"


def dictidx_path(directory: Path, position: int) -> Path:
    return directory / f"col_{position:05d}.dictidx"


def dumps_value(value: Any) -> bytes:
    """Serialize one dictionary value; also the merge's sort key."""
    return json.dumps(value, separators=(",", ":"), allow_nan=True).encode("utf-8")


def loads_value(data: bytes) -> Any:
    """Inverse of :func:`dumps_value`."""
    return json.loads(data.decode("utf-8"))


@dataclass
class ChunkZone:
    """Zone map for one chunk of one column (format v2).

    ``kind`` is the comparable family of the chunk's non-null values:
    ``"num"`` (ints/floats, NaN excluded from the range), ``"str"``, or
    ``None`` when the chunk has no range (empty, all-NULL, all-NaN,
    booleans, or a mixed family).  ``min_value``/``max_value`` are raw
    values (only set when ``kind`` is); ``min_code``/``max_code`` are
    the chunk's global-code span (``-1`` when no non-null values);
    ``members`` is the full local dictionary when it is small enough
    for exact membership refutation, else ``None``.
    """

    kind: str | None
    min_value: Any
    max_value: Any
    null_count: int
    min_code: int = -1
    max_code: int = -1
    members: tuple[Any, ...] | None = None

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind,
            "min": self.min_value,
            "max": self.max_value,
            "nulls": self.null_count,
            "min_code": self.min_code,
            "max_code": self.max_code,
        }
        if self.members is not None:
            payload["members"] = list(self.members)
        return payload

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "ChunkZone":
        members = payload.get("members")
        return cls(
            kind=payload["kind"],
            min_value=payload["min"],
            max_value=payload["max"],
            null_count=payload["nulls"],
            min_code=payload.get("min_code", -1),
            max_code=payload.get("max_code", -1),
            members=None if members is None else tuple(members),
        )


@dataclass
class ColumnMeta:
    """Manifest entry for one column."""

    cardinality: int
    null_count: int
    chunk_cardinalities: list[int]
    chunk_dict_spans: list[tuple[int, int]]
    dict_bytes: int
    chunk_zones: list[ChunkZone] | None = None

    def to_json(self) -> dict[str, Any]:
        payload = {
            "cardinality": self.cardinality,
            "null_count": self.null_count,
            "chunk_cardinalities": list(self.chunk_cardinalities),
            "chunk_dict_spans": [list(span) for span in self.chunk_dict_spans],
            "dict_bytes": self.dict_bytes,
        }
        if self.chunk_zones is not None:
            payload["chunk_zones"] = [zone.to_json() for zone in self.chunk_zones]
        return payload

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "ColumnMeta":
        zones = payload.get("chunk_zones")
        return cls(
            cardinality=payload["cardinality"],
            null_count=payload["null_count"],
            chunk_cardinalities=list(payload["chunk_cardinalities"]),
            chunk_dict_spans=[tuple(span) for span in payload["chunk_dict_spans"]],
            dict_bytes=payload["dict_bytes"],
            chunk_zones=(
                None
                if zones is None
                else [ChunkZone.from_json(zone) for zone in zones]
            ),
        )


@dataclass
class StoreManifest:
    """The parsed ``manifest.json`` of one store directory."""

    name: str
    schema: RelationSchema
    num_rows: int
    chunk_rows: int
    chunk_sizes: list[int]
    columns: dict[str, ColumnMeta]
    extra: dict[str, Any]

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_sizes)

    def chunk_start(self, index: int) -> int:
        """First row index of chunk ``index`` (chunks are row-contiguous)."""
        return sum(self.chunk_sizes[:index])

    def codes_bytes(self) -> int:
        """Raw bytes of all code pages (8 per row per column)."""
        return self.num_rows * 8 * self.schema.arity

    def materialized_bytes(self) -> int:
        """Bytes a full in-RAM materialization of the codes + global
        dictionaries would occupy — the denominator of the out-of-core
        memory ceiling asserts (peak RSS must stay well under this)."""
        return self.codes_bytes() + sum(
            column.dict_bytes for column in self.columns.values()
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": self.name,
            "attributes": [
                {
                    "name": attr.name,
                    "type": attr.type.value,
                    "nullable": attr.nullable,
                }
                for attr in self.schema.attributes
            ],
            "num_rows": self.num_rows,
            "chunk_rows": self.chunk_rows,
            "chunk_sizes": list(self.chunk_sizes),
            "columns": {
                name: meta.to_json() for name, meta in self.columns.items()
            },
            **self.extra,
        }

    def save(self, directory: Path) -> None:
        payload = json.dumps(self.to_json(), indent=2) + "\n"
        scratch = directory / ".manifest.json.tmp"
        scratch.write_text(payload, encoding="utf-8")
        scratch.replace(directory / "manifest.json")

    @classmethod
    def load(cls, directory: Path) -> "StoreManifest":
        path = Path(directory) / "manifest.json"
        if not path.exists():
            raise StoreFormatError(f"no manifest at {path}")
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("format") != FORMAT_NAME:
            raise StoreFormatError(
                f"{path} is not a {FORMAT_NAME} store "
                f"(format={payload.get('format')!r})"
            )
        if payload.get("version") not in SUPPORTED_VERSIONS:
            raise StoreFormatError(
                f"unsupported store version {payload.get('version')!r} "
                f"(this build reads versions {SUPPORTED_VERSIONS})"
            )
        attrs = [
            Attribute(
                item["name"],
                AttributeType.from_name(item["type"]),
                nullable=item["nullable"],
            )
            for item in payload["attributes"]
        ]
        schema = RelationSchema(payload["name"], attrs)
        known = {
            "format",
            "version",
            "name",
            "attributes",
            "num_rows",
            "chunk_rows",
            "chunk_sizes",
            "columns",
        }
        return cls(
            name=payload["name"],
            schema=schema,
            num_rows=payload["num_rows"],
            chunk_rows=payload["chunk_rows"],
            chunk_sizes=list(payload["chunk_sizes"]),
            columns={
                name: ColumnMeta.from_json(meta)
                for name, meta in payload["columns"].items()
            },
            extra={k: v for k, v in payload.items() if k not in known},
        )
