"""Chunk-at-a-time profiling over :class:`~repro.storage.reader.StoredRelation`.

Every routine here walks the store one chunk at a time and keeps a
working set bounded by ``O(chunk + distinct-per-chunk + sample)`` — the
relation itself is never materialized.  Two estimator families, chosen
by the process-wide approx mode (:func:`repro.sketch.active_approx`,
installed by ``EngineConfig(approx=...)``):

* **exact** — an external-sort group merge: each chunk contributes a
  *sorted* run of ``(group key, count)`` records spilled to disk
  (keys are fixed-width big-endian ``global code + 1`` words, so byte
  order ≡ tuple order and NULL folds in as 0), and a ``heapq.merge``
  pass folds equal keys across runs while streaming the aggregates
  (distinct, Σ C(g,2) agreeing pairs, entropy, size histogram).  This
  mirrors the writer's dictionary merge: only one chunk's groups are
  ever resident.
* **sketch** — :mod:`repro.sketch`: HyperLogLog over combined
  per-row column hashes for distinct counts, seeded
  index-sample gathers for entropy and violating pairs.  Every sketch
  result carries its stated error bound.

On top sit the hot consumers the rest of the engine threads through:
FD assessment (:func:`assess_fd`), TANE level-1 discovery
(:func:`tane_level1`), and the tiled-evidence sample pass
(:func:`evidence_sample`).
"""

from __future__ import annotations

import heapq
import math
import os
import random
import struct
import tempfile
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.relational import kernels
from repro.relational.relation import Relation
from repro.sketch import (
    DEFAULT_PRECISION,
    HyperLogLog,
    active_approx,
    entropy_estimate,
    violating_pairs_estimate,
)
from repro.sketch.hll import splitmix64

from .reader import StoredRelation

__all__ = [
    "DistinctCount",
    "GroupStats",
    "StoreFDAssessment",
    "assess_fd",
    "distinct_count",
    "evidence_sample",
    "group_size_histogram",
    "group_stats",
    "sample_row_keys",
    "sample_rows",
    "tane_level1",
    "violating_pairs_count",
]

_COUNT = struct.Struct("<Q")


# ======================================================================
# Result types
# ======================================================================
@dataclass(frozen=True)
class DistinctCount:
    """A distinct count with provenance: exact, or an estimate + bound."""

    value: float
    #: Absolute stated bound (0.0 when exact).
    bound: float
    exact: bool

    def as_int(self) -> int:
        return int(round(self.value))

    def within(self, reference: float) -> bool:
        return abs(self.value - reference) <= self.bound


@dataclass(frozen=True)
class GroupStats:
    """Aggregates of the group-by clustering of one attribute set.

    ``agreeing_pairs`` is ``Σ C(g,2)`` — the quantity the delta engine
    tracks and violating-pair counts subtract; ``entropy`` is in nats
    (the :mod:`repro.eb` convention, NULL as a regular value).
    """

    distinct: DistinctCount
    agreeing_pairs: DistinctCount
    entropy: DistinctCount
    num_rows: int

    @property
    def exact(self) -> bool:
        return self.distinct.exact


@dataclass(frozen=True)
class StoreFDAssessment:
    """Confidence/goodness of one FD measured on a store.

    The same measures as :class:`repro.fd.measures.FDAssessment`
    (confidence ``|π_X|/|π_XY|``, goodness ``|π_X| − |π_Y|``), except
    each distinct count carries its provenance, and
    :attr:`confidence_bound` propagates the stated relative errors
    (first order: ``rel(X) + rel(XY)`` plus the cross term).
    """

    x_attrs: tuple[str, ...]
    y_attrs: tuple[str, ...]
    distinct_x: DistinctCount
    distinct_xy: DistinctCount
    distinct_y: DistinctCount

    @property
    def confidence(self) -> float:
        if self.distinct_xy.value == 0:
            return 1.0
        return self.distinct_x.value / self.distinct_xy.value

    @property
    def goodness(self) -> float:
        return self.distinct_x.value - self.distinct_y.value

    @property
    def exact(self) -> bool:
        return all(
            d.exact for d in (self.distinct_x, self.distinct_xy, self.distinct_y)
        )

    @property
    def confidence_bound(self) -> float:
        if self.exact:
            return 0.0
        rx = self.distinct_x.bound / max(self.distinct_x.value, 1.0)
        rxy = self.distinct_xy.bound / max(self.distinct_xy.value, 1.0)
        return self.confidence * (rx + rxy + rx * rxy)

    @property
    def is_exact_fd(self) -> bool:
        """Whether the FD holds (within the bound in sketch mode)."""
        if self.exact:
            return self.distinct_x.value == self.distinct_xy.value
        return self.confidence + self.confidence_bound >= 1.0


# ======================================================================
# Exact path: external-sort group merge
# ======================================================================
def _chunk_group_runs(columns) -> tuple[list[bytes], list[int]]:
    """One chunk's groups as sorted byte keys + counts.

    Keys are the per-attribute ``global code + 1`` packed as 8-byte
    big-endian words — non-negative, so lexicographic byte order equals
    tuple order and ``heapq.merge`` across chunks is a straight bytes
    comparison.
    """
    width = len(columns)
    if kernels.active_backend_name() == "numpy":
        import numpy as np

        rows = np.stack(
            [np.asarray(col, dtype=np.int64) + 1 for col in columns], axis=1
        )
        uniq, counts = np.unique(rows, axis=0, return_counts=True)
        blob = uniq.astype(">i8").tobytes()
        size = 8 * width
        keys = [blob[i * size : (i + 1) * size] for i in range(len(uniq))]
        return keys, counts.tolist()
    counter: dict[tuple[int, ...], int] = {}
    for row in zip(*columns):
        key = tuple(code + 1 for code in row)
        counter[key] = counter.get(key, 0) + 1
    packer = struct.Struct(f">{width}q")
    items = sorted(counter.items())
    return [packer.pack(*key) for key, _ in items], [c for _, c in items]


def _read_run(
    path: str, offset: int, count: int, width: int
) -> Iterator[tuple[bytes, int]]:
    record = 8 * width + _COUNT.size
    with open(path, "rb") as handle:
        handle.seek(offset)
        for _ in range(count):
            blob = handle.read(record)
            yield blob[: 8 * width], _COUNT.unpack_from(blob, 8 * width)[0]


def _merged_groups(
    store: StoredRelation,
    attrs: Sequence[str],
    spill_dir: str | Path | None = None,
) -> Iterator[tuple[bytes, int]]:
    """Stream ``(key, total count)`` per distinct group, key-sorted.

    One sorted spill run per chunk, ``heapq.merge``d with equal keys
    folded — the multi-attribute analogue of the writer's dictionary
    merge.  The spill file lives next to the store (or ``spill_dir``)
    and is unlinked when the stream is exhausted or closed.
    """
    names = store.schema.validate_names(attrs)
    width = len(names)
    directory = Path(spill_dir) if spill_dir is not None else store.directory
    fd, spill_path = tempfile.mkstemp(suffix=".groupspill", dir=directory)
    runs: list[tuple[int, int]] = []
    try:
        with os.fdopen(fd, "wb") as spill:
            offset = 0
            for _, columns in store.iter_global_codes(names):
                keys, counts = _chunk_group_runs(columns)
                for key, count in zip(keys, counts):
                    spill.write(key)
                    spill.write(_COUNT.pack(count))
                runs.append((offset, len(keys)))
                offset += len(keys) * (8 * width + _COUNT.size)
        streams = [_read_run(spill_path, off, cnt, width) for off, cnt in runs]
        previous: bytes | None = None
        total = 0
        for key, count in heapq.merge(*streams):
            if key != previous:
                if previous is not None:
                    yield previous, total
                previous = key
                total = 0
            total += count
        if previous is not None:
            yield previous, total
    finally:
        os.unlink(spill_path)


def group_size_histogram(
    store: StoredRelation,
    attrs: Sequence[str],
    spill_dir: str | Path | None = None,
) -> dict[int, int]:
    """``group size → number of groups`` for one attribute set (exact).

    The out-of-core stand-in for a partition build: the histogram is
    exactly the information the delta engine's size histogram and the
    entropy kernels consume, at ``O(distinct-per-chunk)`` memory.
    """
    histogram: dict[int, int] = {}
    for _, size in _merged_groups(store, attrs, spill_dir):
        histogram[size] = histogram.get(size, 0) + 1
    return histogram


# ======================================================================
# Sketch path: combined row hashes + seeded index samples
# ======================================================================
def _row_hashes(columns, seed: int):
    """Order-sensitive combined hash of each row's global codes.

    ``acc ← splitmix64(acc ⊕ splitmix64(code + 1))`` per column —
    identical arithmetic on both backends, so sketches agree
    byte-for-byte.
    """
    if kernels.active_backend_name() == "numpy":
        import numpy as np

        from repro.sketch.hll import splitmix64_lanes

        acc = None
        for position, col in enumerate(columns):
            lanes = (np.asarray(col, dtype=np.int64) + 1).astype(np.uint64)
            h = splitmix64_lanes(lanes, seed + position)
            acc = h if acc is None else splitmix64_lanes(acc ^ h, seed)
        return acc
    mask = (1 << 64) - 1
    out = []
    for row in zip(*columns):
        acc = None
        for position, code in enumerate(row):
            h = splitmix64(
                ((code + 1) ^ ((seed + position) * 0x9E3779B97F4A7C15)) & mask
            )
            acc = h if acc is None else splitmix64(
                ((acc ^ h) ^ (seed * 0x9E3779B97F4A7C15)) & mask
            )
        out.append(acc)
    return out


def _hll_distinct(
    store: StoredRelation,
    attrs: Sequence[str],
    precision: int,
    seed: int,
) -> DistinctCount:
    sketch = HyperLogLog(precision=precision, seed=seed)
    for _, columns in store.iter_global_codes(attrs):
        sketch.add_hashes(_row_hashes(columns, seed))
    value = sketch.count()
    return DistinctCount(value, value * sketch.error_bound, exact=False)


def _sample_indices(num_rows: int, sample: int, seed: int) -> list[int]:
    """A sorted uniform without-replacement index sample (seeded)."""
    size = min(sample, num_rows)
    if size <= 0:
        return []
    return sorted(random.Random(seed).sample(range(num_rows), size))


def sample_row_keys(
    store: StoredRelation,
    attrs: Sequence[str],
    sample: int,
    seed: int = 0,
) -> list[tuple[int, ...]]:
    """Global-code key tuples of a seeded uniform row sample.

    Only chunks containing sampled indices are read; peak memory is one
    chunk's codes plus the sample itself.
    """
    names = store.schema.validate_names(attrs)
    indices = _sample_indices(store.num_rows, sample, seed)
    keys: list[tuple[int, ...]] = []
    cursor = 0
    for chunk in range(store.num_chunks):
        start = store.manifest.chunk_start(chunk)
        end = start + store.manifest.chunk_sizes[chunk]
        if cursor >= len(indices) or indices[cursor] >= end:
            continue
        columns = [store.chunk_global_codes(name, chunk) for name in names]
        while cursor < len(indices) and indices[cursor] < end:
            local = indices[cursor] - start
            keys.append(tuple(int(col[local]) for col in columns))
            cursor += 1
    return keys


def sample_rows(
    store: StoredRelation,
    sample: int,
    seed: int = 0,
    attrs: Sequence[str] | None = None,
) -> list[tuple[Any, ...]]:
    """Decoded value rows of a seeded uniform row sample."""
    names = (
        store.attribute_names
        if attrs is None
        else store.schema.validate_names(attrs)
    )
    indices = _sample_indices(store.num_rows, sample, seed)
    rows: list[tuple[Any, ...]] = []
    cursor = 0
    for chunk in range(store.num_chunks):
        start = store.manifest.chunk_start(chunk)
        end = start + store.manifest.chunk_sizes[chunk]
        if cursor >= len(indices) or indices[cursor] >= end:
            continue
        codes = [store.chunk_local_codes(name, chunk) for name in names]
        dicts = [store.chunk_dictionary(name, chunk) for name in names]
        while cursor < len(indices) and indices[cursor] < end:
            local = indices[cursor] - start
            rows.append(
                tuple(
                    None if col[local] == -1 else values[col[local]]
                    for col, values in zip(codes, dicts)
                )
            )
            cursor += 1
    return rows


# ======================================================================
# Public profiling API (mode-dispatched)
# ======================================================================
def _mode(mode: str | None) -> str:
    return active_approx() if mode is None else mode


def distinct_count(
    store: StoredRelation,
    attrs: Sequence[str],
    mode: str | None = None,
    precision: int = DEFAULT_PRECISION,
    seed: int = 0,
    spill_dir: str | Path | None = None,
) -> DistinctCount:
    """``|π_attrs|`` over the store (NULL as a regular value).

    Single attributes read straight off the manifest (always exact —
    the writer's dictionary merge already counted them); multi-attribute
    sets run the spill merge (exact) or a HyperLogLog pass (sketch).
    """
    names = store.schema.validate_names(attrs)
    if not names:
        return DistinctCount(1.0 if store.num_rows else 0.0, 0.0, exact=True)
    if len(names) == 1:
        meta = store.manifest.columns[names[0]]
        value = meta.cardinality + (1 if meta.null_count else 0)
        return DistinctCount(float(value), 0.0, exact=True)
    if _mode(mode) == "sketch":
        return _hll_distinct(store, names, precision, seed)
    distinct = sum(1 for _ in _merged_groups(store, names, spill_dir))
    return DistinctCount(float(distinct), 0.0, exact=True)


def group_stats(
    store: StoredRelation,
    attrs: Sequence[str],
    mode: str | None = None,
    precision: int = DEFAULT_PRECISION,
    sample: int = 10_000,
    seed: int = 0,
    spill_dir: str | Path | None = None,
) -> GroupStats:
    """Distinct count, agreeing pairs, and entropy of one clustering.

    Exact mode streams all three off a single spill merge; sketch mode
    uses HLL (distinct) plus one seeded row sample (entropy via
    Miller–Madow, agreeing pairs via the U-statistic estimator).
    """
    names = store.schema.validate_names(attrs)
    n = store.num_rows
    if _mode(mode) == "sketch" and len(names) > 1:
        distinct = _hll_distinct(store, names, precision, seed)
        keys = sample_row_keys(store, names, sample, seed)
        ent = entropy_estimate(keys, n, distinct_hint=distinct.value)
        # Agreeing pairs: the within-sample agree fraction scaled to
        # C(n,2); same U-statistic envelope as the violating-pair bound.
        counts: dict[tuple[int, ...], int] = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        s = len(keys)
        sample_pairs = s * (s - 1) // 2
        total_pairs = n * (n - 1) // 2
        if sample_pairs:
            p = sum(c * (c - 1) // 2 for c in counts.values()) / sample_pairs
            bound = 3.0 * math.sqrt(max(p * (1 - p), 1.0 / s) / (s / 2))
            agree_est = DistinctCount(
                p * total_pairs, bound * total_pairs, exact=False
            )
        else:
            agree_est = DistinctCount(0.0, float(total_pairs), exact=False)
        return GroupStats(
            distinct=distinct,
            agreeing_pairs=agree_est,
            entropy=DistinctCount(ent.value, ent.bound, exact=False),
            num_rows=n,
        )
    distinct = 0
    agreeing = 0
    entropy = 0.0
    for _, size in _merged_groups(store, names, spill_dir):
        distinct += 1
        agreeing += size * (size - 1) // 2
        if n:
            p = size / n
            entropy -= p * math.log(p)
    return GroupStats(
        distinct=DistinctCount(float(distinct), 0.0, exact=True),
        agreeing_pairs=DistinctCount(float(agreeing), 0.0, exact=True),
        entropy=DistinctCount(entropy, 0.0, exact=True),
        num_rows=n,
    )


def assess_fd(
    store: StoredRelation,
    x_attrs: Sequence[str],
    y_attrs: Sequence[str],
    mode: str | None = None,
    precision: int = DEFAULT_PRECISION,
    seed: int = 0,
    spill_dir: str | Path | None = None,
) -> StoreFDAssessment:
    """Confidence and goodness of ``X → Y`` measured chunk-at-a-time.

    NULL is treated as a regular value (GROUP BY semantics) — the
    in-memory FD layer's NULL prohibition is a schema-level concern the
    caller applies before profiling.
    """
    x = tuple(store.schema.validate_names(x_attrs))
    y = tuple(store.schema.validate_names(y_attrs))

    def count(attrs: list[str]) -> DistinctCount:
        return distinct_count(
            store, attrs, mode=mode, precision=precision, seed=seed,
            spill_dir=spill_dir,
        )

    return StoreFDAssessment(
        x_attrs=x,
        y_attrs=y,
        distinct_x=count(list(x)),
        distinct_xy=count(list(x + tuple(a for a in y if a not in x))),
        distinct_y=count(list(y)),
    )


def violating_pairs_count(
    store: StoredRelation,
    x_attrs: Sequence[str],
    y_attrs: Sequence[str],
    mode: str | None = None,
    sample: int = 10_000,
    seed: int = 0,
    spill_dir: str | Path | None = None,
) -> DistinctCount:
    """Row pairs agreeing on X but differing on Y (Definition 2).

    Exact mode: ``Σ C(x_g,2) − Σ C(xy_g,2)`` off two spill merges —
    the same identity the in-memory kernel uses.  Sketch mode: one
    seeded row sample through the U-statistic estimator.
    """
    x = list(store.schema.validate_names(x_attrs))
    y = [a for a in store.schema.validate_names(y_attrs) if a not in x]
    if _mode(mode) == "sketch":
        keys = sample_row_keys(store, x + y, sample, seed)
        split = len(x)
        est = violating_pairs_estimate(
            ((key[:split], key[split:]) for key in keys), store.num_rows
        )
        return DistinctCount(est.value, est.bound, exact=False)
    x_stats = group_stats(store, x, mode="exact", spill_dir=spill_dir)
    xy_stats = group_stats(store, x + y, mode="exact", spill_dir=spill_dir)
    value = x_stats.agreeing_pairs.value - xy_stats.agreeing_pairs.value
    return DistinctCount(value, 0.0, exact=True)


def tane_level1(
    store: StoredRelation,
    attrs: Sequence[str] | None = None,
    mode: str | None = None,
    precision: int = DEFAULT_PRECISION,
    seed: int = 0,
    spill_dir: str | Path | None = None,
) -> list[tuple[str, str]]:
    """Level-1 TANE: all exact unary FDs ``A → B`` over the store.

    ``A → B`` holds iff ``|π_A| = |π_AB|`` — one pair-distinct count
    per unordered attribute pair, each a bounded-memory chunk sweep.
    In sketch mode the test is ``estimate(AB) ≤ |π_A| + bound``, so the
    result is a *candidate* set (no false negatives within the stated
    bound); exact mode is authoritative.  Returns ``(lhs, rhs)`` pairs
    sorted by schema position.
    """
    names = (
        list(store.attribute_names)
        if attrs is None
        else list(store.schema.validate_names(attrs))
    )
    singles = {
        name: distinct_count(store, [name]).value for name in names
    }
    found: list[tuple[str, str]] = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            pair = distinct_count(
                store, [a, b], mode=mode, precision=precision, seed=seed,
                spill_dir=spill_dir,
            )
            for lhs, rhs in ((a, b), (b, a)):
                if pair.exact:
                    holds = pair.value == singles[lhs]
                else:
                    holds = pair.value <= singles[lhs] + pair.bound
                if holds:
                    found.append((lhs, rhs))
    order = {name: position for position, name in enumerate(names)}
    found.sort(key=lambda fd: (order[fd[0]], order[fd[1]]))
    return found


def evidence_sample(
    store: StoredRelation,
    sample: int = 2_000,
    seed: int = 0,
    attributes: Sequence[str] | None = None,
    max_pairs: int | None = None,
    tile: int = 512,
):
    """A tiled-evidence pass over a seeded row sample of the store.

    Gathers ``sample`` rows (uniform, seeded), materializes them as an
    in-memory relation, and runs the PR-7 tiled evidence engine over
    its predicate space — the out-of-core entry point for DC discovery
    on stores.  Peak memory is ``O(sample + tile²)`` regardless of the
    store's size (``tile`` defaults to 512 here precisely so the sweep
    never falls back to the engine's one-big-tile path).  The returned
    :class:`~repro.dc.evidence.EvidenceSet` is flagged ``sampled`` by
    the engine whenever the pair budget truncates; the row sampling
    itself is the caller's stated choice.
    """
    from repro.dc.engine import build_evidence_tiled
    from repro.dc.predicates import build_predicate_space

    rows = sample_rows(store, sample, seed, attributes)
    names = (
        store.attribute_names
        if attributes is None
        else store.schema.validate_names(attributes)
    )
    schema = (
        store.schema
        if attributes is None
        else store.schema.project(names)
    )
    relation = Relation.from_rows(schema, rows, validate=False)
    space = build_predicate_space(relation, include_nullable=True)
    return build_evidence_tiled(relation, space, max_pairs=max_pairs, tile=tile)
