"""SQL over chunked stores: filter-pushdown scans with zone-map skips.

The SQL engines execute against in-memory relations; this module is the
bridge that gets a :class:`~repro.storage.reader.StoredRelation` under
them without materializing it.  :func:`scan_store` walks the store one
chunk at a time, evaluates the (compiled) WHERE predicate columnar on
each chunk — the PR-8 mask kernels, identical error semantics — and
materializes **only the surviving rows** (plus, optionally, only the
requested columns).  Peak memory is one chunk plus the result, so a
selective query over an SF-1 table runs in a fraction of the table's
footprint.

Two physical optimizations ride the walk:

* **Zone-map chunk skipping** (format-v2 stores, gated on the PR-10
  ``optimize`` knob): a chunk is skipped entirely when one WHERE
  conjunct is *refuted* by its :class:`~repro.storage.format.ChunkZone`
  — the literal falls outside the chunk's min/max range, misses a
  small-dictionary membership set, or asserts NULLs a NULL-free chunk
  cannot have.  Skipping is error-exact: conjuncts are considered in
  order and the walk stops consulting zones at the first conjunct that
  could *raise* on the chunk (incomparable order comparison,
  arithmetic), because the columnar evaluator's short-circuit
  reachability would surface that error even on an all-false chunk
  prefix — so a skip happens only where the serial scan provably
  returns nothing and raises nothing.
* **Morsel fan-out**: when a worker pool is active (PR 6), the
  surviving chunks are mapped across it and the per-chunk survivor rows
  concatenated in chunk order — byte-identical to the serial walk.  The
  fan-out engages only when every conjunct is provably raise-free on
  every surviving chunk (pool error ordering is nondeterministic) and
  no LIMIT is in play (the serial walk stops early).

:func:`query_store` is the one-call form: parse the statement, push its
WHERE *and* its projection down through the chunked scan — only the
columns the statement references are ever decoded — then run the full
query on the survivors (the engines re-check the residual predicate —
free on matches, and it keeps their property-tested semantics
authoritative).
:meth:`Database.attach_store <repro.sql.database.Database>` uses these
to register chunked scans in a catalog.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.relational import expr as ir
from repro.relational import kernels, parallel
from repro.relational.relation import Relation
from repro.sql import ast
from repro.sql.errors import SqlExecutionError
from repro.sql.executor import ResultSet, compile_expression, execute_on_relation
from repro.sql.optimize import active_optimize
from repro.sql.parser import parse

from .format import ChunkZone
from .reader import StoredRelation, open_store

__all__ = [
    "ScanStats",
    "compile_where",
    "count_skippable_chunks",
    "query_store",
    "scan_store",
]


@dataclass
class ScanStats:
    """Chunk-skipping counters one :func:`scan_store` call fills in.

    Pass an instance via ``scan_store(..., stats=...)`` (or
    ``query_store(..., scan_stats=...)``) to observe how many chunks the
    zone maps refuted; ``EXPLAIN`` and the benchmarks read these.
    """

    chunks_total: int = 0
    chunks_skipped: int = 0

    @property
    def chunks_scanned(self) -> int:
        return self.chunks_total - self.chunks_skipped


def _collect_columns(node: Any, out: set[str]) -> bool:
    """Gather column names referenced by an AST node into ``out``.

    Returns ``False`` when the node demands every column (``*``), which
    makes projection pushdown impossible for the whole statement.
    """
    if isinstance(node, ast.ColumnRef):
        if node.name == "*":
            return False
        out.add(node.name)
        return True
    if isinstance(node, (ast.Literal, ast.CountStar)) or node is None:
        return True
    if isinstance(node, ast.CountDistinct):
        out.update(node.columns)
        return True
    if isinstance(node, ast.AggregateCall):
        return _collect_columns(node.argument, out)
    if isinstance(node, (ast.Arith, ast.Comparison, ast.And, ast.Or)):
        left = _collect_columns(node.left, out)
        return _collect_columns(node.right, out) and left
    if isinstance(node, (ast.InList, ast.IsNull, ast.Not)):
        return _collect_columns(node.operand, out)
    return False  # unknown node shape: scan everything, stay correct


def _referenced_columns(query: ast.SelectQuery) -> set[str] | None:
    """Column names a statement touches, or ``None`` for "all of them"."""
    names: set[str] = set()
    for item in query.items:
        if not _collect_columns(item.expression, names):
            return None
    if not _collect_columns(query.where, names):
        return None
    if not _collect_columns(query.having, names):
        return None
    for key in query.group_by:
        names.add(key.rsplit(".", 1)[-1])
    for order in query.order_by:
        if not _collect_columns(order.expression, names):
            return None
    return names


def compile_where(condition: str) -> ir.Predicate:
    """Compile a bare SQL condition string into the predicate IR.

    ``compile_where("price > 100 AND status = 'O'")`` — the condition
    is parsed with the real SQL grammar (column references resolve by
    name, qualifiers dropped).
    """
    query = parse(f"SELECT * FROM _scan WHERE {condition}")
    assert query.where is not None
    return compile_expression(query.where)


def _as_predicate(where: "str | ir.Predicate | None") -> ir.Predicate | None:
    if where is None:
        return None
    if isinstance(where, str):
        return compile_where(where)
    if not ir.is_predicate(where):
        raise SqlExecutionError(f"not a predicate: {where!r}")
    return where


# ----------------------------------------------------------------------
# Zone-map refutation
# ----------------------------------------------------------------------
_ZoneLookup = Callable[[str], "ChunkZone | None"]

_FLIPPED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _split_conjuncts(predicate: ir.Predicate) -> list[ir.Predicate]:
    """Flatten an AND tree left-to-right (mirrors the evaluator's order)."""
    out: list[ir.Predicate] = []

    def walk(node: ir.Predicate) -> None:
        if isinstance(node, ir.And):
            walk(node.left)
            walk(node.right)
        else:
            out.append(node)

    walk(predicate)
    return out


def _literal_family(value: Any) -> str | None:
    """The comparable family of a literal; bools count as ``"num"``
    (Python orders them with numbers, unlike chunk *kind* classification
    where a bool-valued column gets no range)."""
    if isinstance(value, bool):
        return "num"
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    return None


def _col_op_lit(conjunct: ir.Predicate) -> tuple[str, str, Any] | None:
    """Normalize a ``Col <op> Lit`` / ``Lit <op> Col`` comparison to
    ``(column, op, literal)`` with the column on the left."""
    if not isinstance(conjunct, ir.Cmp):
        return None
    if isinstance(conjunct.left, ir.Col) and isinstance(conjunct.right, ir.Lit):
        return conjunct.left.name, conjunct.op, conjunct.right.value
    if isinstance(conjunct.left, ir.Lit) and isinstance(conjunct.right, ir.Col):
        return conjunct.right.name, _FLIPPED_OP[conjunct.op], conjunct.left.value
    return None


def _may_raise_on_chunk(
    conjunct: ir.Predicate, zone_of: _ZoneLookup, chunk_rows: int
) -> bool:
    """Whether evaluating ``conjunct`` could raise on this chunk.

    Conservative: ``True`` unless the zone map *proves* otherwise.
    Equality and membership never raise over scalar store values;
    order comparisons are safe when the literal's family matches the
    chunk's zone kind (or the comparison short-circuits on NULL/NaN).
    """
    if isinstance(conjunct, (ir.And, ir.Or)):
        return _may_raise_on_chunk(
            conjunct.left, zone_of, chunk_rows
        ) or _may_raise_on_chunk(conjunct.right, zone_of, chunk_rows)
    if isinstance(conjunct, ir.Not):
        return _may_raise_on_chunk(conjunct.operand, zone_of, chunk_rows)
    if isinstance(conjunct, (ir.IsNull, ir.InList)):
        # Membership/null tests over a plain column or literal cannot
        # raise; an Arith operand can (type error, division by zero).
        return not isinstance(conjunct.operand, (ir.Col, ir.Lit))
    if isinstance(conjunct, ir.Cmp):
        if not isinstance(conjunct.left, (ir.Col, ir.Lit)) or not isinstance(
            conjunct.right, (ir.Col, ir.Lit)
        ):
            return True
        if conjunct.op in ("=", "<>"):
            return False
        shape = _col_op_lit(conjunct)
        if shape is None:
            return True  # col-vs-col (or lit-vs-lit) order comparison
        name, _, literal = shape
        if literal is None:
            return False  # NULL comparisons short-circuit to false
        zone = zone_of(name)
        if zone is None:
            return True
        if zone.null_count == chunk_rows:
            return False  # every row short-circuits on NULL
        family = _literal_family(literal)
        return family is None or zone.kind != family
    return True


def _refutes_eq(zone: ChunkZone, literal: Any) -> bool:
    """No non-null value of the chunk can ``=``-match ``literal``."""
    if literal is None or literal != literal:
        return True  # NULL / NaN equal nothing under the oracle
    if zone.members is not None:
        return not any(member == literal for member in zone.members)
    family = _literal_family(literal)
    if zone.kind is not None and zone.kind == family:
        return literal < zone.min_value or literal > zone.max_value
    return False


def _zone_refutes(
    conjunct: ir.Predicate, zone_of: _ZoneLookup, chunk_rows: int
) -> bool:
    """Whether the zone map proves ``conjunct`` matches no chunk row.

    Callers must already have established (via
    :func:`_may_raise_on_chunk`) that the conjunct cannot raise here.
    """
    if isinstance(conjunct, ir.Cmp):
        shape = _col_op_lit(conjunct)
        if shape is None:
            return False
        name, op, literal = shape
        zone = zone_of(name)
        if zone is None:
            return False
        if literal is None:
            return True  # a NULL operand makes every comparison false
        if zone.null_count == chunk_rows:
            return True  # all-NULL chunk: every comparison is false
        if op == "=":
            return _refutes_eq(zone, literal)
        if op == "<>":
            return zone.members is not None and all(
                member == literal for member in zone.members
            )
        if literal != literal:
            return True  # order comparisons against NaN are false
        family = _literal_family(literal)
        if zone.kind is None or zone.kind != family:
            return False
        if op == "<":
            return zone.min_value >= literal
        if op == "<=":
            return zone.min_value > literal
        if op == ">":
            return zone.max_value <= literal
        return zone.max_value < literal  # ">="
    if isinstance(conjunct, ir.InList):
        if not isinstance(conjunct.operand, ir.Col):
            return False
        zone = zone_of(conjunct.operand.name)
        if zone is None:
            return False
        if zone.null_count == chunk_rows:
            return True
        return all(
            item is None or _refutes_eq(zone, item) for item in conjunct.values
        )
    if isinstance(conjunct, ir.IsNull):
        if not isinstance(conjunct.operand, ir.Col):
            return False
        zone = zone_of(conjunct.operand.name)
        if zone is None:
            return False
        if conjunct.negated:
            return zone.null_count == chunk_rows
        return zone.null_count == 0
    if isinstance(conjunct, ir.Not):
        inner = conjunct.operand
        if isinstance(inner, ir.IsNull):
            return _zone_refutes(
                ir.IsNull(inner.operand, not inner.negated), zone_of, chunk_rows
            )
        if isinstance(inner, ir.InList) and isinstance(inner.operand, ir.Col):
            # NOT IN under two-valued NOT: NULL (and NaN) rows satisfy
            # it, so refutation needs a NULL-free chunk whose every
            # dictionary value provably matches the list.
            zone = zone_of(inner.operand.name)
            if zone is None or zone.null_count or zone.members is None:
                return False
            return all(
                any(item is not None and member == item for item in inner.values)
                for member in zone.members
            )
    return False


def _chunk_refuted(
    conjuncts: list[ir.Predicate], zone_of: _ZoneLookup, chunk_rows: int
) -> bool:
    """Left-to-right conjunct walk, stopping at the first that might
    raise on this chunk — exactly the prefix whose all-false outcome
    makes every later conjunct's error unreachable under the columnar
    evaluator's short-circuit reachability."""
    for conjunct in conjuncts:
        if _may_raise_on_chunk(conjunct, zone_of, chunk_rows):
            return False
        if _zone_refutes(conjunct, zone_of, chunk_rows):
            return True
    return False


# ----------------------------------------------------------------------
# Parallel chunk scan
# ----------------------------------------------------------------------
#: Stores opened inside pool workers, keyed by directory.  Seeded with
#: the caller's open store before dispatch, so thread-pool workers (and
#: fork-started process workers) reuse its mmaps and remap caches;
#: spawn-started workers open their own copy once and keep it.
_WORKER_STORES: dict[str, StoredRelation] = {}


def _scan_chunk_rows(arrays, payload, chunk: int) -> list[tuple[Any, ...]]:
    """Morsel worker: filter one chunk, return its surviving row tuples.

    Dispatched only for chunks where every conjunct is provably
    raise-free, so error ordering is moot.  The mask runs through the
    serial columnar walk directly — workers must not re-enter the pool.
    """
    directory, scan_names, predicate, keep = payload
    store = _WORKER_STORES.get(directory)
    if store is None:
        store = open_store(directory)
        _WORKER_STORES[directory] = store
    relation = store.chunk_relation(chunk, scan_names)
    if predicate is None:
        return [tuple(row[i] for i in keep) for row in relation.rows()]
    backend = kernels.get_backend()
    truth, error = ir._mask(relation, predicate, backend)
    if error is not None and backend.mask_any(error):  # pragma: no cover
        row = backend.filter_mask(error)[0]
        ir._raise_for_row(relation, predicate, int(row))
    names = relation.schema.attribute_names
    columns = [relation.column(names[i]) for i in keep]
    return [
        tuple(column.value(int(index)) for column in columns)
        for index in backend.filter_mask(truth)
    ]


def scan_store(
    store: StoredRelation,
    where: "str | ir.Predicate | None" = None,
    columns: Sequence[str] | None = None,
    limit: int | None = None,
    stats: ScanStats | None = None,
) -> Relation:
    """A chunked, filter-pushdown scan materializing only survivors.

    ``where`` (SQL condition string or IR predicate) is evaluated
    columnar per chunk; ``columns`` prunes the output width (predicate
    columns are read regardless but not kept); ``limit`` stops the walk
    as soon as enough rows survive; ``stats`` receives the zone-map
    skip counters.  Chunks whose zone map refutes a WHERE conjunct are
    skipped without being read (``optimize`` knob on, format-v2 store);
    the surviving chunks fan across the morsel pool when one is active.
    The result is an ordinary in-memory :class:`Relation` carrying the
    store's schema (projected), ready for any engine.
    """
    predicate = _as_predicate(where)
    out_names = (
        store.schema.attribute_names
        if columns is None
        else tuple(store.schema.validate_names(columns))
    )
    if predicate is None:
        scan_names: tuple[str, ...] = out_names
    else:
        pred_names = tuple(
            dict.fromkeys(
                name
                for name in ir.columns_of(predicate)
                if name not in out_names
            )
        )
        unknown = [
            name
            for name in pred_names
            if name not in store.schema.attribute_names
        ]
        if unknown:
            raise SqlExecutionError(f"unknown column {unknown[0]!r}")
        scan_names = out_names + pred_names
    out_schema = (
        store.schema if columns is None else store.schema.project(out_names)
    )
    keep = tuple(range(len(out_names)))
    conjuncts = [] if predicate is None else _split_conjuncts(predicate)
    skipping = predicate is not None and active_optimize() == "on"
    surviving: list[int] = []
    raise_free = True  # every conjunct provably error-free on survivors
    for chunk in range(store.num_chunks):
        zone_of = _zone_lookup(store, chunk)
        chunk_rows = store.manifest.chunk_sizes[chunk]
        if skipping and _chunk_refuted(conjuncts, zone_of, chunk_rows):
            continue
        surviving.append(chunk)
        if raise_free:
            raise_free = not any(
                _may_raise_on_chunk(conjunct, zone_of, chunk_rows)
                for conjunct in conjuncts
            )
    if stats is not None:
        stats.chunks_total = store.num_chunks
        stats.chunks_skipped = store.num_chunks - len(surviving)
    pool = parallel.pool_kind()
    fan_out = (
        limit is None
        and len(surviving) > 1
        and raise_free
        and pool != "serial"
        and (pool != "process" or parallel.picklable(predicate))
    )
    if fan_out:
        directory = str(store.directory)
        _WORKER_STORES[directory] = store
        parts = parallel.morsel_map(
            _scan_chunk_rows,
            surviving,
            payload=(directory, scan_names, predicate, keep),
        )
        rows = [row for part in parts for row in part]
        return Relation.from_rows(out_schema, rows, validate=False)
    rows: list[tuple[Any, ...]] = []
    for chunk in surviving:
        if limit is not None and len(rows) >= limit:
            break
        relation = store.chunk_relation(chunk, scan_names)
        if predicate is not None:
            relation = relation.select(predicate)
        for row in relation.rows():
            rows.append(tuple(row[i] for i in keep))
            if limit is not None and len(rows) >= limit:
                break
    return Relation.from_rows(out_schema, rows, validate=False)


def count_skippable_chunks(
    store: StoredRelation, where: "str | ir.Predicate | None"
) -> ScanStats:
    """Dry-run the zone-map walk: how many chunks ``where`` refutes.

    No chunk is read — this is the number :func:`scan_store` would skip
    with the ``optimize`` knob on, which is what ``EXPLAIN`` reports.
    """
    predicate = _as_predicate(where)
    stats = ScanStats(chunks_total=store.num_chunks)
    if predicate is None:
        return stats
    conjuncts = _split_conjuncts(predicate)
    for chunk in range(store.num_chunks):
        if _chunk_refuted(
            conjuncts, _zone_lookup(store, chunk), store.manifest.chunk_sizes[chunk]
        ):
            stats.chunks_skipped += 1
    return stats


def _zone_lookup(store: StoredRelation, chunk: int) -> _ZoneLookup:
    def zone_of(name: str) -> ChunkZone | None:
        try:
            return store.chunk_zone(name, chunk)
        except KeyError:  # defensive: predicate names are pre-validated
            return None

    return zone_of


def query_store(
    store: StoredRelation,
    sql: str,
    engine: str = "columnar",
    workers: int | None = None,
    scan_stats: ScanStats | None = None,
) -> ResultSet:
    """Run one SQL statement against a store, WHERE pushed down.

    The FROM clause must name the store's relation.  The WHERE clause
    filters chunk by chunk during the scan, so only matching rows are
    ever resident; the full statement then runs on the survivors
    through the ordinary engines (joins against other tables are not
    supported on this path — attach the store into a catalog for that).
    """
    query = parse(sql)
    if query.table != store.name:
        raise SqlExecutionError(
            f"query targets {query.table!r} but got store {store.name!r}"
        )
    if query.joins:
        raise SqlExecutionError(
            "query_store scans a single store; attach it to a Database "
            "for joins"
        )
    predicate = (
        compile_expression(query.where) if query.where is not None else None
    )
    referenced = _referenced_columns(query)
    if referenced is None:
        columns: tuple[str, ...] | None = None
    else:
        # Keep only real store attributes, in schema order — the rest
        # are select-item aliases the executor resolves post-scan.  A
        # column-free statement (SELECT COUNT(*) …) still needs one
        # column to carry the row count.
        columns = tuple(
            name
            for name in store.schema.attribute_names
            if name in referenced
        ) or store.schema.attribute_names[:1]
    if workers is None:
        scan = scan_store(store, where=predicate, columns=columns, stats=scan_stats)
        return execute_on_relation(scan, sql, engine)
    with parallel.use_workers(workers):
        scan = scan_store(store, where=predicate, columns=columns, stats=scan_stats)
        return execute_on_relation(scan, sql, engine)
