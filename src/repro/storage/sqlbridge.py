"""SQL over chunked stores: filter-pushdown scans.

The SQL engines execute against in-memory relations; this module is the
bridge that gets a :class:`~repro.storage.reader.StoredRelation` under
them without materializing it.  :func:`scan_store` walks the store one
chunk at a time, evaluates the (compiled) WHERE predicate columnar on
each chunk — the PR-8 mask kernels, identical error semantics — and
materializes **only the surviving rows** (plus, optionally, only the
requested columns).  Peak memory is one chunk plus the result, so a
selective query over an SF-1 table runs in a fraction of the table's
footprint.

:func:`query_store` is the one-call form: parse the statement, push its
WHERE *and* its projection down through the chunked scan — only the
columns the statement references are ever decoded — then run the full
query on the survivors (the engines re-check the residual predicate —
free on matches, and it keeps their property-tested semantics
authoritative).
:meth:`Database.attach_store <repro.sql.database.Database>` uses these
to register chunked scans in a catalog.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.relational import expr as ir
from repro.relational import parallel
from repro.relational.relation import Relation
from repro.sql import ast
from repro.sql.errors import SqlExecutionError
from repro.sql.executor import ResultSet, compile_expression, execute_on_relation
from repro.sql.parser import parse

from .reader import StoredRelation

__all__ = ["compile_where", "query_store", "scan_store"]


def _collect_columns(node: Any, out: set[str]) -> bool:
    """Gather column names referenced by an AST node into ``out``.

    Returns ``False`` when the node demands every column (``*``), which
    makes projection pushdown impossible for the whole statement.
    """
    if isinstance(node, ast.ColumnRef):
        if node.name == "*":
            return False
        out.add(node.name)
        return True
    if isinstance(node, (ast.Literal, ast.CountStar)) or node is None:
        return True
    if isinstance(node, ast.CountDistinct):
        out.update(node.columns)
        return True
    if isinstance(node, ast.AggregateCall):
        return _collect_columns(node.argument, out)
    if isinstance(node, (ast.Arith, ast.Comparison, ast.And, ast.Or)):
        left = _collect_columns(node.left, out)
        return _collect_columns(node.right, out) and left
    if isinstance(node, (ast.InList, ast.IsNull, ast.Not)):
        return _collect_columns(node.operand, out)
    return False  # unknown node shape: scan everything, stay correct


def _referenced_columns(query: ast.SelectQuery) -> set[str] | None:
    """Column names a statement touches, or ``None`` for "all of them"."""
    names: set[str] = set()
    for item in query.items:
        if not _collect_columns(item.expression, names):
            return None
    if not _collect_columns(query.where, names):
        return None
    if not _collect_columns(query.having, names):
        return None
    for key in query.group_by:
        names.add(key.rsplit(".", 1)[-1])
    for order in query.order_by:
        if not _collect_columns(order.expression, names):
            return None
    return names


def compile_where(condition: str) -> ir.Predicate:
    """Compile a bare SQL condition string into the predicate IR.

    ``compile_where("price > 100 AND status = 'O'")`` — the condition
    is parsed with the real SQL grammar (column references resolve by
    name, qualifiers dropped).
    """
    query = parse(f"SELECT * FROM _scan WHERE {condition}")
    assert query.where is not None
    return compile_expression(query.where)


def _as_predicate(where: "str | ir.Predicate | None") -> ir.Predicate | None:
    if where is None:
        return None
    if isinstance(where, str):
        return compile_where(where)
    if not ir.is_predicate(where):
        raise SqlExecutionError(f"not a predicate: {where!r}")
    return where


def scan_store(
    store: StoredRelation,
    where: "str | ir.Predicate | None" = None,
    columns: Sequence[str] | None = None,
    limit: int | None = None,
) -> Relation:
    """A chunked, filter-pushdown scan materializing only survivors.

    ``where`` (SQL condition string or IR predicate) is evaluated
    columnar per chunk; ``columns`` prunes the output width (predicate
    columns are read regardless but not kept); ``limit`` stops the walk
    as soon as enough rows survive.  The result is an ordinary
    in-memory :class:`Relation` carrying the store's schema (projected),
    ready for any engine.
    """
    predicate = _as_predicate(where)
    out_names = (
        store.schema.attribute_names
        if columns is None
        else tuple(store.schema.validate_names(columns))
    )
    if predicate is None:
        scan_names: tuple[str, ...] = out_names
    else:
        pred_names = tuple(
            dict.fromkeys(
                name
                for name in ir.columns_of(predicate)
                if name not in out_names
            )
        )
        unknown = [
            name
            for name in pred_names
            if name not in store.schema.attribute_names
        ]
        if unknown:
            raise SqlExecutionError(f"unknown column {unknown[0]!r}")
        scan_names = out_names + pred_names
    out_schema = (
        store.schema if columns is None else store.schema.project(out_names)
    )
    keep = list(range(len(out_names)))
    rows: list[tuple[Any, ...]] = []
    for chunk in range(store.num_chunks):
        if limit is not None and len(rows) >= limit:
            break
        relation = store.chunk_relation(chunk, scan_names)
        if predicate is not None:
            relation = relation.select(predicate)
        for row in relation.rows():
            rows.append(tuple(row[i] for i in keep))
            if limit is not None and len(rows) >= limit:
                break
    return Relation.from_rows(out_schema, rows, validate=False)


def query_store(
    store: StoredRelation,
    sql: str,
    engine: str = "columnar",
    workers: int | None = None,
) -> ResultSet:
    """Run one SQL statement against a store, WHERE pushed down.

    The FROM clause must name the store's relation.  The WHERE clause
    filters chunk by chunk during the scan, so only matching rows are
    ever resident; the full statement then runs on the survivors
    through the ordinary engines (joins against other tables are not
    supported on this path — attach the store into a catalog for that).
    """
    query = parse(sql)
    if query.table != store.name:
        raise SqlExecutionError(
            f"query targets {query.table!r} but got store {store.name!r}"
        )
    if query.joins:
        raise SqlExecutionError(
            "query_store scans a single store; attach it to a Database "
            "for joins"
        )
    predicate = (
        compile_expression(query.where) if query.where is not None else None
    )
    referenced = _referenced_columns(query)
    if referenced is None:
        columns: tuple[str, ...] | None = None
    else:
        # Keep only real store attributes, in schema order — the rest
        # are select-item aliases the executor resolves post-scan.  A
        # column-free statement (SELECT COUNT(*) …) still needs one
        # column to carry the row count.
        columns = tuple(
            name
            for name in store.schema.attribute_names
            if name in referenced
        ) or store.schema.attribute_names[:1]
    scan = scan_store(store, where=predicate, columns=columns)
    if workers is None:
        return execute_on_relation(scan, sql, engine)
    with parallel.use_workers(workers):
        return execute_on_relation(scan, sql, engine)
