"""The §4.4 "future work" extension: a combined repair objective.

The paper closes Section 4.4 noting that a minimal repair is not always
the best one (a UNIQUE attribute repairs anything but trivializes the
FD) and that the authors are "currently considering combining such a
threshold with our confidence and goodness measures in order to provide
an objective function that guides our repair strategy".  This module
supplies that objective:

    score(F^U) = w_len · |U|  +  w_good · |g| / (|g| + 1)  +  penalty

* ``w_len`` prices each added attribute (the minimality pressure of the
  queue ordering);
* ``w_good`` prices distance from bijectivity, squashed to [0, 1) so a
  single huge-goodness repair cannot dominate the length term;
* ``penalty`` adds ``unique_penalty`` when the repair contains an
  attribute that is UNIQUE on the instance (the paper's §3 worst case)
  and ``threshold_penalty`` when |g| exceeds ``goodness_threshold``.

Lower scores are better.  :func:`rank_by_objective` re-ranks the exact
repairs a search produced; :func:`accept_by_objective` packages the
same policy as a designer callback for
:class:`~repro.core.session.RepairSession`.  The objective deliberately
*post-ranks* rather than steering the queue: the Alg. 3 ordering keeps
its first-found-is-minimal guarantee, and the designer-facing list is
re-scored afterwards.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.relational.relation import Relation

from .candidates import Candidate
from .repair import RepairSearchResult

__all__ = ["RepairObjective", "rank_by_objective", "accept_by_objective"]


@dataclass(frozen=True)
class RepairObjective:
    """Weights of the combined repair objective (lower score = better)."""

    length_weight: float = 1.0
    goodness_weight: float = 1.0
    goodness_threshold: int | None = None
    threshold_penalty: float = 10.0
    unique_penalty: float = 10.0

    def __post_init__(self) -> None:
        if self.length_weight < 0 or self.goodness_weight < 0:
            raise ValueError("objective weights must be non-negative")
        if self.threshold_penalty < 0 or self.unique_penalty < 0:
            raise ValueError("objective penalties must be non-negative")

    def score(self, relation: Relation, candidate: Candidate) -> float:
        """The objective value of one (exact) repair candidate."""
        goodness = abs(candidate.goodness)
        value = (
            self.length_weight * candidate.num_added
            + self.goodness_weight * goodness / (goodness + 1)
        )
        if self.goodness_threshold is not None and goodness > self.goodness_threshold:
            value += self.threshold_penalty
        if self.unique_penalty and any(
            relation.stats.is_unique(attr) for attr in candidate.added
        ):
            value += self.unique_penalty
        return value


def rank_by_objective(
    relation: Relation,
    candidates: Sequence[Candidate],
    objective: RepairObjective | None = None,
) -> list[Candidate]:
    """Sort repairs by objective score (stable; ties keep search order)."""
    objective = objective or RepairObjective()
    return sorted(
        candidates, key=lambda c: (objective.score(relation, c), c.rank_key)
    )


def accept_by_objective(
    relation: Relation, objective: RepairObjective | None = None
) -> Callable[[RepairSearchResult], Candidate | None]:
    """A designer policy choosing the objective-best proposed repair.

    Use with :meth:`RepairSession.run`::

        session.run("Places", accept_by_objective(relation,
                    RepairObjective(goodness_threshold=1)))
    """
    objective = objective or RepairObjective()

    def _choose(result: RepairSearchResult) -> Candidate | None:
        ranked = rank_by_objective(relation, result.all_repairs, objective)
        return ranked[0] if ranked else None

    return _choose
