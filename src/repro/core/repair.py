"""The CB repair search (paper Algorithms 1 and 3).

Two entry points:

* :func:`find_repairs` — Algorithm 3's best-first queue search for one
  FD.  The queue is ordered by (antecedent cardinality ascending, rank
  descending), so the first exact candidate popped is a **minimal**
  repair; ``stop_at_first`` returns it immediately, otherwise the whole
  space is walked and every exact repair is collected.
* :func:`find_fd_repairs` — Algorithm 1: order all declared FDs by the
  Section 4.1 rank, then repair each violated one.

Search-space notes (Section 4.4):

* Extending an *exact* node is never useful: supersets of an exact
  antecedent stay exact and their goodness only grows, so exact nodes
  are leaves.  (The paper's Algorithm 3 behaves the same way.)
* Candidates are attribute *sets*, not sequences; a visited-set keyed on
  ``frozenset(added)`` prevents the factorial blow-up of exploring the
  same set along different insertion orders.  The paper's exponential
  bound (2^|R\\XY| nodes) is thereby met exactly.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from dataclasses import dataclass, field

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import FDAssessment, assess
from repro.fd.ordering import RankedFD, order_fds
from repro.relational.relation import Relation

from .candidates import Candidate, extend_by_one, order_key
from .config import GoodnessMode, RepairConfig

__all__ = [
    "RepairSearchResult",
    "RelationRepairReport",
    "find_repairs",
    "find_first_repair",
    "find_fd_repairs",
]


@dataclass
class RepairSearchResult:
    """Outcome of one FD's repair search, with search statistics."""

    base: FunctionalDependency
    assessment: FDAssessment
    repairs: list[Candidate] = field(default_factory=list)
    #: Exact repairs that failed the goodness threshold in PREFER mode;
    #: they are still reported, after every within-threshold repair.
    over_threshold: list[Candidate] = field(default_factory=list)
    explored: int = 0
    enqueued: int = 0
    elapsed_seconds: float = 0.0
    exhausted: bool = True

    @property
    def was_violated(self) -> bool:
        """Whether the base FD needed repairing at all."""
        return not self.assessment.is_exact

    @property
    def found(self) -> bool:
        """Whether at least one exact repair was found."""
        return bool(self.repairs) or bool(self.over_threshold)

    @property
    def all_repairs(self) -> list[Candidate]:
        """Within-threshold repairs first, then over-threshold ones."""
        return self.repairs + self.over_threshold

    @property
    def best(self) -> Candidate | None:
        """The top-ranked repair (minimal, then best (c, |g|)), if any."""
        ordered = self.all_repairs
        return ordered[0] if ordered else None

    @property
    def minimal_size(self) -> int | None:
        """``|U|`` of the minimal repairs, if any repair exists."""
        ordered = self.all_repairs
        return min(c.num_added for c in ordered) if ordered else None

    def __str__(self) -> str:
        if not self.was_violated:
            return f"{self.base}: already exact"
        if not self.found:
            return f"{self.base}: violated, no repair found"
        return f"{self.base}: violated, {len(self.all_repairs)} repair(s), best {self.best}"


def find_repairs(
    relation: Relation,
    fd: FunctionalDependency,
    config: RepairConfig | None = None,
) -> RepairSearchResult:
    """Algorithm 3: best-first search for antecedent extensions of ``fd``.

    Returns a :class:`RepairSearchResult` whose ``repairs`` list is in
    discovery order — i.e. sorted by (|U|, rank), so minimal repairs
    come first and ``repairs[0]`` (when present) is the paper's
    "first repair".
    """
    config = config or RepairConfig()
    start = time.perf_counter()
    assessment = assess(relation, fd)
    result = RepairSearchResult(base=fd, assessment=assessment)
    if assessment.is_exact:
        result.elapsed_seconds = time.perf_counter() - start
        return result

    def queue_key(candidate: Candidate) -> tuple:
        # Alg. 3 queue order: antecedent cardinality first, then the
        # configured candidate ranking (paper = confidence/|goodness|).
        return (candidate.num_added, *order_key(candidate, config.candidate_order))

    # Seed the queue with all one-attribute extensions (Alg. 3 line 1-2).
    counter = 0  # heap tiebreaker; keeps Candidate comparison out of the heap
    heap: list[tuple[tuple, int, Candidate]] = []
    visited: set[frozenset[str]] = set()
    for candidate in extend_by_one(relation, fd, config):
        key = frozenset(candidate.added)
        visited.add(key)
        heapq.heappush(heap, (queue_key(candidate), counter, candidate))
        counter += 1
        result.enqueued += 1

    while heap:
        if config.max_expansions is not None and result.explored >= config.max_expansions:
            result.exhausted = False
            break
        _, _, candidate = heapq.heappop(heap)
        result.explored += 1
        if candidate.is_exact:
            accepted = _record_repair(result, candidate, config)
            if accepted and config.stop_at_first:
                result.exhausted = False
                break
            continue  # exact nodes are leaves (see module docstring)
        if (
            config.max_added_attributes is not None
            and candidate.num_added >= config.max_added_attributes
        ):
            continue
        for child in extend_by_one(relation, candidate.fd, config, base=fd):
            key = frozenset(child.added)
            if key in visited:
                continue
            visited.add(key)
            heapq.heappush(heap, (queue_key(child), counter, child))
            counter += 1
            result.enqueued += 1

    result.elapsed_seconds = time.perf_counter() - start
    return result


def _record_repair(
    result: RepairSearchResult, candidate: Candidate, config: RepairConfig
) -> bool:
    """File an exact candidate under the goodness-threshold policy.

    Returns ``True`` when the candidate counts as an accepted repair for
    the purpose of ``stop_at_first``.
    """
    if config.within_threshold(candidate.goodness):
        result.repairs.append(candidate)
        return True
    if config.goodness_mode is GoodnessMode.PREFER:
        result.over_threshold.append(candidate)
    return False


def find_first_repair(
    relation: Relation,
    fd: FunctionalDependency,
    config: RepairConfig | None = None,
) -> Candidate | None:
    """The paper's first-repair mode: the minimal repair, or ``None``.

    Equivalent to :func:`find_repairs` with ``stop_at_first=True``.
    """
    base = config or RepairConfig()
    first_config = dataclasses.replace(base, stop_at_first=True)
    return find_repairs(relation, fd, first_config).best


@dataclass
class RelationRepairReport:
    """Outcome of Algorithm 1 over a whole declared-FD set."""

    relation_name: str
    order: list[RankedFD]
    results: list[RepairSearchResult]
    elapsed_seconds: float = 0.0

    @property
    def violated(self) -> list[RepairSearchResult]:
        """Results for the FDs that needed repairing."""
        return [r for r in self.results if r.was_violated]

    @property
    def exact_new_fds(self) -> list[Candidate]:
        """The paper's ``Exact`` output: every exact new FD found."""
        repairs: list[Candidate] = []
        for result in self.results:
            repairs.extend(result.all_repairs)
        return repairs

    def __str__(self) -> str:
        lines = [f"Repair report for {self.relation_name!r}:"]
        lines.extend(f"  {result}" for result in self.results)
        return "\n".join(lines)


def find_fd_repairs(
    relation: Relation,
    fds: list[FunctionalDependency],
    config: RepairConfig | None = None,
    one_step_only: bool = False,
) -> RelationRepairReport:
    """Algorithm 1 (``FindFDRepairs``): order 𝔽, repair each violated FD.

    ``one_step_only=True`` reproduces the printed Algorithm 1 exactly
    (a single ``ExtendByOne`` pass per FD, collecting the exact
    one-attribute extensions); the default uses the full Algorithm 3
    queue search per FD, as Section 4.3 prescribes when one attribute is
    not enough.
    """
    config = config or RepairConfig()
    start = time.perf_counter()
    ranked = order_fds(relation, fds, include_self=config.include_self_in_conflict)
    results: list[RepairSearchResult] = []
    for item in ranked:
        if one_step_only:
            results.append(_one_step_search(relation, item.fd, config))
        else:
            results.append(find_repairs(relation, item.fd, config))
    return RelationRepairReport(
        relation_name=relation.name,
        order=ranked,
        results=results,
        elapsed_seconds=time.perf_counter() - start,
    )


def _one_step_search(
    relation: Relation, fd: FunctionalDependency, config: RepairConfig
) -> RepairSearchResult:
    """Printed Algorithm 1 body: one ExtendByOne pass, keep exact FDs."""
    start = time.perf_counter()
    assessment = assess(relation, fd)
    result = RepairSearchResult(base=fd, assessment=assessment)
    if assessment.is_exact:
        result.elapsed_seconds = time.perf_counter() - start
        return result
    candidates = extend_by_one(relation, fd, config)
    result.explored = len(candidates)
    for candidate in candidates:
        if candidate.is_exact:
            _record_repair(result, candidate, config)
    result.elapsed_seconds = time.perf_counter() - start
    return result
