"""The semi-automatic designer loop.

The paper's workflow (Sections 1 and 6) is: the system detects violated
FDs, computes candidate repairs, and *presents them to the designer to
be evaluated* — the human decides whether a violation is noise (fix the
data) or genuine semantic drift (evolve the constraint).  A
:class:`RepairSession` scripts that loop:

1. ``violations()`` lists violated FDs in the Section 4.1 repair order;
2. ``propose(fd)`` runs the CB search and returns ranked repairs;
3. ``accept(fd, candidate)`` swaps the declared FD for the repaired one
   in the catalog; ``reject(fd)`` records that the designer kept the FD
   (e.g. will clean the data instead).

``run(chooser)`` automates the whole loop with a designer-policy
callback, which is how the examples and the violation-drift benchmarks
simulate a human.  Every step is appended to ``history`` for audit.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass

from repro.fd.fd import FunctionalDependency
from repro.fd.ordering import RankedFD, order_fds
from repro.relational.catalog import Catalog

from .candidates import Candidate
from .config import RepairConfig
from .repair import RepairSearchResult, find_repairs

__all__ = ["Decision", "SessionEvent", "RepairSession", "accept_best", "accept_none"]

#: A designer policy: given the search result, return the accepted
#: candidate or ``None`` to keep the FD unchanged.
Chooser = Callable[[RepairSearchResult], Candidate | None]


class Decision(enum.Enum):
    """What the designer did with a violated FD."""

    ACCEPTED = "accepted"
    REJECTED = "rejected"
    NO_REPAIR_FOUND = "no-repair-found"


@dataclass(frozen=True)
class SessionEvent:
    """One audit-trail entry of the semi-automatic loop."""

    relation_name: str
    original: FunctionalDependency
    decision: Decision
    accepted: Candidate | None
    num_proposed: int
    elapsed_seconds: float

    def __str__(self) -> str:
        if self.decision is Decision.ACCEPTED and self.accepted is not None:
            return (
                f"{self.relation_name}: {self.original}  evolved to  "
                f"{self.accepted.fd}"
            )
        return f"{self.relation_name}: {self.original}  {self.decision.value}"


def accept_best(result: RepairSearchResult) -> Candidate | None:
    """Designer policy: always take the top-ranked (minimal) repair."""
    return result.best


def accept_none(result: RepairSearchResult) -> Candidate | None:
    """Designer policy: never evolve (audit-only run)."""
    return None


class RepairSession:
    """Stateful semi-automatic repair loop over one catalog."""

    def __init__(self, catalog: Catalog, config: RepairConfig | None = None) -> None:
        self.catalog = catalog
        self.config = config or RepairConfig()
        self.history: list[SessionEvent] = []

    # ------------------------------------------------------------------
    # Step-by-step API
    # ------------------------------------------------------------------
    def ingest(self, relation_name: str, rows, validate: bool = True):
        """Append freshly arrived tuples to a cataloged relation.

        The stored relation is replaced by its ``Relation.extend``
        snapshot, so the warm state of previous loop iterations —
        distinct counts, cached partitions, delta trackers — is folded
        forward in O(Δ) instead of being recomputed when the next
        ``violations``/``propose`` pass runs.  This is the designer
        loop's continuous-monitoring entry point: validate, repair,
        ingest the next batch, repeat.
        """
        extended = self.catalog.relation(relation_name).extend(
            rows, validate=validate
        )
        self.catalog.replace_relation(extended)
        return extended

    def violations(self, relation_name: str) -> list[RankedFD]:
        """Violated FDs of one relation, in repair order (Section 4.1)."""
        relation = self.catalog.relation(relation_name)
        fds = self.catalog.fds(relation_name)
        ranked = order_fds(
            relation, fds, include_self=self.config.include_self_in_conflict
        )
        return [item for item in ranked if item.inconsistency > 0.0]

    def propose(
        self, relation_name: str, fd: FunctionalDependency
    ) -> RepairSearchResult:
        """Run the CB search for one FD and return the ranked repairs."""
        relation = self.catalog.relation(relation_name)
        return find_repairs(relation, fd, self.config)

    def accept(
        self,
        relation_name: str,
        result: RepairSearchResult,
        candidate: Candidate,
    ) -> None:
        """Record the designer accepting ``candidate`` and evolve the catalog."""
        if candidate not in result.all_repairs:
            raise ValueError(f"candidate {candidate} was not proposed for {result.base}")
        self.catalog.replace_fd(relation_name, result.base, candidate.fd)
        self.history.append(
            SessionEvent(
                relation_name=relation_name,
                original=result.base,
                decision=Decision.ACCEPTED,
                accepted=candidate,
                num_proposed=len(result.all_repairs),
                elapsed_seconds=result.elapsed_seconds,
            )
        )

    def reject(self, relation_name: str, result: RepairSearchResult) -> None:
        """Record the designer keeping the FD unchanged."""
        decision = (
            Decision.REJECTED if result.found else Decision.NO_REPAIR_FOUND
        )
        self.history.append(
            SessionEvent(
                relation_name=relation_name,
                original=result.base,
                decision=decision,
                accepted=None,
                num_proposed=len(result.all_repairs),
                elapsed_seconds=result.elapsed_seconds,
            )
        )

    # ------------------------------------------------------------------
    # Automated loop
    # ------------------------------------------------------------------
    def run(
        self,
        relation_name: str,
        chooser: Chooser = accept_best,
    ) -> list[SessionEvent]:
        """Validate, propose, and apply the chooser to every violation.

        Returns the events of this run (also appended to ``history``).
        The violation list is computed once up front, as the paper's
        periodic check does; repairs accepted earlier do not re-rank the
        remaining ones mid-run.
        """
        start_index = len(self.history)
        for ranked in self.violations(relation_name):
            result = self.propose(relation_name, ranked.fd)
            choice = chooser(result) if result.found else None
            if choice is not None:
                self.accept(relation_name, result, choice)
            else:
                self.reject(relation_name, result)
        return self.history[start_index:]

    def run_all(self, chooser: Chooser = accept_best) -> list[SessionEvent]:
        """Run the loop over every relation in the catalog."""
        start_index = len(self.history)
        for name in self.catalog.relation_names():
            if self.catalog.fds(name):
                self.run(name, chooser)
        return self.history[start_index:]
