"""The CB (confidence-based) FD evolution method — the paper's contribution.

System S4 in DESIGN.md.  Public API:

* :func:`extend_by_one` — Algorithm 2 (candidate generation + ranking);
* :func:`find_repairs` / :func:`find_first_repair` — Algorithm 3 (queue
  search; find-all and first-minimal-repair modes);
* :func:`find_fd_repairs` — Algorithm 1 (order 𝔽, repair each FD);
* :func:`validate_relation` / :func:`validate_catalog` — violation
  detection;
* :class:`RepairSession` — the semi-automatic designer loop;
* :class:`RepairConfig` — all the knobs of Section 4.4, including the
  goodness-threshold extension;
* :class:`EngineConfig` — kernel-backend selection for the relational
  hot paths (python reference loops vs vectorized numpy).
"""

from .candidates import Candidate, candidate_rank_key, extend_by_one, order_key
from .config import CandidateOrder, EngineConfig, GoodnessMode, RepairConfig
from .monitor import FDAlert, FDMonitor, MonitoredFD
from .objective import RepairObjective, accept_by_objective, rank_by_objective
from .repair import (
    RelationRepairReport,
    RepairSearchResult,
    find_fd_repairs,
    find_first_repair,
    find_repairs,
)
from .session import (
    Decision,
    RepairSession,
    SessionEvent,
    accept_best,
    accept_none,
)
from .validate import (
    ValidationEntry,
    ValidationReport,
    validate_catalog,
    validate_relation,
)

__all__ = [
    "Candidate",
    "CandidateOrder",
    "EngineConfig",
    "FDAlert",
    "FDMonitor",
    "MonitoredFD",
    "RepairObjective",
    "accept_by_objective",
    "order_key",
    "rank_by_objective",
    "Decision",
    "GoodnessMode",
    "RelationRepairReport",
    "RepairConfig",
    "RepairSearchResult",
    "RepairSession",
    "SessionEvent",
    "ValidationEntry",
    "ValidationReport",
    "accept_best",
    "accept_none",
    "candidate_rank_key",
    "extend_by_one",
    "find_fd_repairs",
    "find_first_repair",
    "find_repairs",
    "validate_catalog",
    "validate_relation",
]
