"""Continuous FD validity checking over a growing instance.

The paper assumes "the DBMS is able to detect that (e.g. by means of
periodic or continuous checks of FDs validity)" (§1).  Re-running
``COUNT(DISTINCT …)`` from scratch on every insert makes continuous
checking O(n) per tuple; this monitor makes it O(#FDs) per tuple by
maintaining the three distinct-counts of Definition 3 incrementally.

Two engines implement that maintenance:

* ``"delta"`` (default) — one shared
  :class:`~repro.relational.delta.DeltaStream` serves *all* watched
  FDs: each attribute is dictionary-encoded exactly once per tuple
  (values interned to dense integer codes), and each distinct
  attribute set — ``X``, ``X ∪ Y``, ``Y`` — is maintained by a single
  counts-only group tracker however many FDs need it.  Memory per
  tracker is one ``int → int`` (or ``int-tuple → int``) map instead of
  a set of raw value tuples per FD.
* ``"legacy"`` — the original per-FD hash-set counters (three sets of
  value tuples per FD), kept as the reference implementation; both
  engines produce identical confidences on every stream, NULLs
  included (property: codes are assigned injectively).

The monitor raises *alerts* through a callback whenever an FD's
confidence crosses below a configured threshold — the trigger for the
semi-automatic evolution loop.  Alerts re-arm when confidence recovers
to the threshold, so a second genuine drop fires again.  A short
confidence history per FD lets drift (systematic, sustained decay) be
told from a blip (the noise-vs-drift distinction the paper's premise
rests on).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import FDAssessment
from repro.relational import expr
from repro.relational.delta import DeltaStream, GroupTracker
from repro.relational.errors import ArityError, validate_engine
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

__all__ = ["FDAlert", "MonitoredFD", "FDMonitor"]

_ENGINES = ("delta", "legacy")


@dataclass(frozen=True)
class FDAlert:
    """Raised (via callback) when an FD's confidence crosses a threshold."""

    fd: FunctionalDependency
    confidence: float
    threshold: float
    num_rows: int

    def __str__(self) -> str:
        return (
            f"ALERT {self.fd}: confidence {self.confidence:.4f} fell below "
            f"{self.threshold} at {self.num_rows} rows"
        )


@dataclass
class MonitoredFD:
    """Incremental state for one watched FD.

    On the delta engine the three counts live in shared stream
    trackers (``_trackers``); the legacy engine fills the three value-
    tuple sets instead.  Either way :attr:`confidence`,
    :attr:`goodness` and :meth:`assessment` read the same numbers.
    """

    fd: FunctionalDependency
    threshold: float
    x_positions: tuple[int, ...]
    y_positions: tuple[int, ...]
    distinct_x: set = field(default_factory=set)
    distinct_xy: set = field(default_factory=set)
    distinct_y: set = field(default_factory=set)
    alerted: bool = False
    history: list[float] = field(default_factory=list)
    _trackers: tuple[GroupTracker, GroupTracker, GroupTracker] | None = field(
        default=None, repr=False
    )

    def observe(self, row: Sequence[Any]) -> None:
        """Fold one tuple into the counters (legacy engine only; the
        delta engine folds rows at the shared stream instead)."""
        if self._trackers is not None:
            return
        x_key = tuple(row[i] for i in self.x_positions)
        y_key = tuple(row[i] for i in self.y_positions)
        self.distinct_x.add(x_key)
        self.distinct_y.add(y_key)
        self.distinct_xy.add(x_key + y_key)

    def _counts(self) -> tuple[int, int, int]:
        """Current ``(|π_X|, |π_XY|, |π_Y|)`` from whichever engine."""
        if self._trackers is not None:
            x, xy, y = self._trackers
            return x.num_distinct, xy.num_distinct, y.num_distinct
        return len(self.distinct_x), len(self.distinct_xy), len(self.distinct_y)

    @property
    def confidence(self) -> float:
        """Current ``|π_X| / |π_XY|`` (1.0 on an empty stream)."""
        x, xy, _ = self._counts()
        if not xy:
            return 1.0
        return x / xy

    @property
    def goodness(self) -> int:
        """Current ``|π_X| − |π_Y|``."""
        x, _, y = self._counts()
        return x - y

    def assessment(self) -> FDAssessment:
        """A snapshot compatible with the batch measure API."""
        x, xy, y = self._counts()
        return FDAssessment(fd=self.fd, distinct_x=x, distinct_xy=xy, distinct_y=y)


class FDMonitor:
    """Watches FDs over an append-only stream of tuples.

    Seed it with a schema (or an existing relation, whose rows are
    replayed), then feed tuples with :meth:`append`.  Alerts fire once
    per FD, when its confidence first drops below the threshold; a
    subsequent recovery above the threshold re-arms the alert.

    ``engine`` selects the counter implementation (module docstring):
    ``"delta"`` rides the shared incremental statistics of
    :mod:`repro.relational.delta`, ``"legacy"`` keeps per-FD hash sets.
    """

    def __init__(
        self,
        schema: RelationSchema | Relation,
        on_alert: Callable[[FDAlert], None] | None = None,
        default_threshold: float = 1.0,
        history_every: int = 100,
        engine: str = "delta",
        scope: expr.Predicate | None = None,
    ) -> None:
        if isinstance(schema, Relation):
            relation: Relation | None = schema
            self._schema = schema.schema
        else:
            relation = None
            self._schema = schema
        validate_engine(engine, _ENGINES)
        self._arity = self._schema.arity
        self._watched: list[MonitoredFD] = []
        self._on_alert = on_alert
        self._default_threshold = default_threshold
        self._history_every = max(1, history_every)
        self._num_rows = 0
        self._pending_replay = relation
        self._stream = DeltaStream(self._schema) if engine == "delta" else None
        self._scope = scope
        # Resolve (and thereby validate) the scope's attributes once.
        self._scope_positions = (
            tuple(
                (name, self._schema.position(name))
                for name in expr.columns_of(scope)
            )
            if scope is not None
            else ()
        )

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """Which counter engine this monitor runs on."""
        return "delta" if self._stream is not None else "legacy"

    @property
    def on_alert(self) -> Callable[[FDAlert], None] | None:
        """The alert callback (settable; dropped by snapshots)."""
        return self._on_alert

    @on_alert.setter
    def on_alert(self, callback: Callable[[FDAlert], None] | None) -> None:
        self._on_alert = callback

    # ------------------------------------------------------------------
    # Snapshot support (the monitoring service's checkpoint path)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle every counter but never the alert callback.

        The delta stream, its shared trackers, and the per-FD states are
        plain dict/tuple structures, so a pickled monitor restores to
        *exactly* the same confidences, alert arming, and histories —
        the property the service's checkpoint/replay recovery is pinned
        on.  Callbacks are process-local (often closures over live
        queues); the restorer re-attaches one via :attr:`on_alert`.
        """
        state = dict(self.__dict__)
        state["_on_alert"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def watch(
        self, fd: FunctionalDependency, threshold: float | None = None
    ) -> MonitoredFD:
        """Start watching an FD; replays already-seen seed rows.

        Re-watching an already-watched FD is idempotent: the existing
        state (counters, alert arming, history) is returned rather than
        a duplicate being registered — so alerts keep firing exactly
        once per crossing however many times a caller re-declares its
        watch list.  An explicit ``threshold`` on a re-watch updates
        the trigger level in place.
        """
        explicit = threshold is not None
        threshold = self._default_threshold if threshold is None else threshold
        if not 0.0 < threshold <= 1.0:
            raise ValueError("alert threshold must be in (0, 1]")
        for state in self._watched:
            if state.fd == fd:
                if explicit:
                    state.threshold = threshold
                return state
        # Validate the FD's attributes *before* touching the shared
        # stream, so a failed watch leaves no orphan trackers behind.
        x_positions = self._schema.positions(fd.antecedent)
        y_positions = self._schema.positions(fd.consequent)
        trackers = None
        if self._stream is not None:
            x = list(fd.antecedent)
            y = list(fd.consequent)
            trackers = (
                self._stream.tracker(x),
                self._stream.tracker(x + y),
                self._stream.tracker(y),
            )
        state = MonitoredFD(
            fd=fd,
            threshold=threshold,
            x_positions=x_positions,
            y_positions=y_positions,
            _trackers=trackers,
        )
        self._watched.append(state)
        if self._pending_replay is not None:
            replay, self._pending_replay = self._pending_replay, None
            for row in replay.rows():
                self.append(row)
        else:
            # Late watcher on a live stream: it only sees future rows;
            # its counters start empty by design (documented behaviour;
            # the delta stream hands out fresh suffix trackers).
            pass
        return state

    @property
    def num_rows(self) -> int:
        """Tuples observed so far."""
        return self._num_rows

    @property
    def watched(self) -> list[MonitoredFD]:
        """The monitored FD states (live objects)."""
        return list(self._watched)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def append(self, row: Sequence[Any]) -> list[FDAlert]:
        """Observe one tuple; returns (and dispatches) any new alerts.

        With a ``scope`` predicate configured, tuples outside the scope
        are observed (they advance :attr:`num_rows`) but never enter
        the counters — the monitor watches ``σ_scope`` of the stream,
        the same IR semantics batch validation applies.
        """
        if len(row) != self._arity:
            raise ArityError(self._arity, len(row))
        self._num_rows += 1
        if self._scope is not None and not expr.evaluate_predicate(
            self._scope, {name: row[pos] for name, pos in self._scope_positions}
        ):
            # Out-of-scope tuples never enter the counters, but the
            # periodic history sampling keys off the *observed* stream
            # position, so record the (unchanged) confidences anyway.
            if self._num_rows % self._history_every == 0:
                for state in self._watched:
                    state.history.append(state.confidence)
            return []
        stream = self._stream
        if stream is not None:
            # One encode + one fold per distinct attribute set, shared
            # by every watched FD.
            stream.append(row)
        alerts: list[FDAlert] = []
        for state in self._watched:
            if stream is None:
                state.observe(row)
                confidence = state.confidence
            else:
                # Inlined tracker read — this runs per tuple per FD.
                x, xy, _ = state._trackers
                xy_count = len(xy.groups)
                confidence = len(x.groups) / xy_count if xy_count else 1.0
            if self._num_rows % self._history_every == 0:
                state.history.append(confidence)
            if confidence < state.threshold and not state.alerted:
                state.alerted = True
                alert = FDAlert(
                    fd=state.fd,
                    confidence=confidence,
                    threshold=state.threshold,
                    num_rows=self._num_rows,
                )
                alerts.append(alert)
                if self._on_alert is not None:
                    self._on_alert(alert)
            elif confidence >= state.threshold and state.alerted:
                state.alerted = False  # re-arm after recovery
        return alerts

    def extend(self, rows: Sequence[Sequence[Any]]) -> list[FDAlert]:
        """Observe many tuples; returns all alerts raised."""
        alerts: list[FDAlert] = []
        for row in rows:
            alerts.extend(self.append(row))
        return alerts

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def state_of(self, fd: FunctionalDependency) -> MonitoredFD:
        """The monitored state of one FD; raises ``KeyError`` if unwatched."""
        for state in self._watched:
            if state.fd == fd:
                return state
        raise KeyError(f"FD {fd} is not watched")

    def violated(self) -> list[MonitoredFD]:
        """Watched FDs whose current confidence is below 1."""
        return [state for state in self._watched if state.confidence < 1.0]
