"""Continuous FD validity checking over a growing instance.

The paper assumes "the DBMS is able to detect that (e.g. by means of
periodic or continuous checks of FDs validity)" (§1).  Re-running
``COUNT(DISTINCT …)`` from scratch on every insert makes continuous
checking O(n) per tuple; this monitor makes it O(#FDs) per tuple by
maintaining, for each watched FD, the three distinct-counts of
Definition 3 incrementally:

* ``|π_X|``, ``|π_XY|``, ``|π_Y|`` as hash sets of value tuples —
  appending a row is three set insertions;
* confidence/goodness are recomputed from the counters on read.

The monitor raises *alerts* through a callback whenever an FD's
confidence crosses below a configured threshold — the trigger for the
semi-automatic evolution loop.  It also keeps a short confidence
history per FD so drift (systematic, sustained decay) can be told from
a blip (the noise-vs-drift distinction the paper's premise rests on).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import FDAssessment
from repro.relational.errors import ArityError
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

__all__ = ["FDAlert", "MonitoredFD", "FDMonitor"]


@dataclass(frozen=True)
class FDAlert:
    """Raised (via callback) when an FD's confidence crosses a threshold."""

    fd: FunctionalDependency
    confidence: float
    threshold: float
    num_rows: int

    def __str__(self) -> str:
        return (
            f"ALERT {self.fd}: confidence {self.confidence:.4f} fell below "
            f"{self.threshold} at {self.num_rows} rows"
        )


@dataclass
class MonitoredFD:
    """Incremental state for one watched FD."""

    fd: FunctionalDependency
    threshold: float
    x_positions: tuple[int, ...]
    y_positions: tuple[int, ...]
    distinct_x: set = field(default_factory=set)
    distinct_xy: set = field(default_factory=set)
    distinct_y: set = field(default_factory=set)
    alerted: bool = False
    history: list[float] = field(default_factory=list)

    def observe(self, row: Sequence[Any]) -> None:
        """Fold one tuple into the counters."""
        x_key = tuple(row[i] for i in self.x_positions)
        y_key = tuple(row[i] for i in self.y_positions)
        self.distinct_x.add(x_key)
        self.distinct_y.add(y_key)
        self.distinct_xy.add(x_key + y_key)

    @property
    def confidence(self) -> float:
        """Current ``|π_X| / |π_XY|`` (1.0 on an empty stream)."""
        if not self.distinct_xy:
            return 1.0
        return len(self.distinct_x) / len(self.distinct_xy)

    @property
    def goodness(self) -> int:
        """Current ``|π_X| − |π_Y|``."""
        return len(self.distinct_x) - len(self.distinct_y)

    def assessment(self) -> FDAssessment:
        """A snapshot compatible with the batch measure API."""
        return FDAssessment(
            fd=self.fd,
            distinct_x=len(self.distinct_x),
            distinct_xy=len(self.distinct_xy),
            distinct_y=len(self.distinct_y),
        )


class FDMonitor:
    """Watches FDs over an append-only stream of tuples.

    Seed it with a schema (or an existing relation, whose rows are
    replayed), then feed tuples with :meth:`append`.  Alerts fire once
    per FD, when its confidence first drops below the threshold; a
    subsequent recovery above the threshold re-arms the alert.
    """

    def __init__(
        self,
        schema: RelationSchema | Relation,
        on_alert: Callable[[FDAlert], None] | None = None,
        default_threshold: float = 1.0,
        history_every: int = 100,
    ) -> None:
        if isinstance(schema, Relation):
            relation: Relation | None = schema
            self._schema = schema.schema
        else:
            relation = None
            self._schema = schema
        self._watched: list[MonitoredFD] = []
        self._on_alert = on_alert
        self._default_threshold = default_threshold
        self._history_every = max(1, history_every)
        self._num_rows = 0
        self._pending_replay = relation

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def watch(
        self, fd: FunctionalDependency, threshold: float | None = None
    ) -> MonitoredFD:
        """Start watching an FD; replays already-seen seed rows."""
        threshold = self._default_threshold if threshold is None else threshold
        if not 0.0 < threshold <= 1.0:
            raise ValueError("alert threshold must be in (0, 1]")
        state = MonitoredFD(
            fd=fd,
            threshold=threshold,
            x_positions=self._schema.positions(fd.antecedent),
            y_positions=self._schema.positions(fd.consequent),
        )
        self._watched.append(state)
        if self._pending_replay is not None:
            replay, self._pending_replay = self._pending_replay, None
            for row in replay.rows():
                self.append(row)
        else:
            # Late watcher on a live stream: it only sees future rows;
            # its counters start empty by design (documented behaviour).
            pass
        return state

    @property
    def num_rows(self) -> int:
        """Tuples observed so far."""
        return self._num_rows

    @property
    def watched(self) -> list[MonitoredFD]:
        """The monitored FD states (live objects)."""
        return list(self._watched)

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def append(self, row: Sequence[Any]) -> list[FDAlert]:
        """Observe one tuple; returns (and dispatches) any new alerts."""
        if len(row) != self._schema.arity:
            raise ArityError(self._schema.arity, len(row))
        self._num_rows += 1
        alerts: list[FDAlert] = []
        for state in self._watched:
            state.observe(row)
            confidence = state.confidence
            if self._num_rows % self._history_every == 0:
                state.history.append(confidence)
            if confidence < state.threshold and not state.alerted:
                state.alerted = True
                alert = FDAlert(
                    fd=state.fd,
                    confidence=confidence,
                    threshold=state.threshold,
                    num_rows=self._num_rows,
                )
                alerts.append(alert)
                if self._on_alert is not None:
                    self._on_alert(alert)
            elif confidence >= state.threshold and state.alerted:
                state.alerted = False  # re-arm after recovery
        return alerts

    def extend(self, rows: Sequence[Sequence[Any]]) -> list[FDAlert]:
        """Observe many tuples; returns all alerts raised."""
        alerts: list[FDAlert] = []
        for row in rows:
            alerts.extend(self.append(row))
        return alerts

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def state_of(self, fd: FunctionalDependency) -> MonitoredFD:
        """The monitored state of one FD; raises ``KeyError`` if unwatched."""
        for state in self._watched:
            if state.fd == fd:
                return state
        raise KeyError(f"FD {fd} is not watched")

    def violated(self) -> list[MonitoredFD]:
        """Watched FDs whose current confidence is below 1."""
        return [state for state in self._watched if state.confidence < 1.0]
