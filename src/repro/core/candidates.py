"""Candidate generation and ranking: the paper's ``ExtendByOne`` (Alg. 2).

Given ``F : X → Y`` on instance ``r``, every attribute ``A ∈ R \\ XY``
yields a candidate ``F^A : XA → Y`` with::

    confidence  c = |π_XA(r)| / |π_XAY(r)|
    goodness    g = |π_XA(r)| − |π_Y(r)|

Candidates are ranked by confidence descending, then |goodness|
ascending (Section 4.2 and Table 1: ``Municipal (c=1, g=0)`` beats
``PhNo (c=1, g=3)``), then attribute names for determinism.

Per footnote 1 and the Veterans case study, attributes containing NULLs
are never candidates.

**Pseudocode note**: Algorithm 2 as printed only *adds* candidates with
confidence 1 to its output, yet Algorithm 3 needs non-exact candidates
back to keep extending, and Section 4.2's tables list every candidate.
We follow the text: return all candidates, ranked; callers filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import check_fd_attributes
from repro.relational.relation import Relation

from .config import CandidateOrder, RepairConfig

__all__ = ["Candidate", "extend_by_one", "candidate_rank_key", "order_key"]


@total_ordering
@dataclass(frozen=True)
class Candidate:
    """A candidate repair ``F^U : XU → Y`` with its measures.

    ``added`` records the attributes appended to the original
    antecedent, in the order the search chose them.
    """

    fd: FunctionalDependency
    base: FunctionalDependency
    added: tuple[str, ...]
    confidence: float
    goodness: int

    @property
    def is_exact(self) -> bool:
        """Whether this candidate already repairs the FD (c = 1)."""
        return self.confidence >= 1.0

    @property
    def num_added(self) -> int:
        """``|U|``: number of attributes added over the base FD."""
        return len(self.added)

    @property
    def rank_key(self) -> tuple:
        """Sort key implementing the Section 4.2 ranking (lower = better)."""
        return (-self.confidence, abs(self.goodness), self.added)

    def queue_key(self) -> tuple:
        """Sort key for Algorithm 3's queue: antecedent cardinality first,
        then rank (lower = popped earlier)."""
        return (self.num_added, -self.confidence, abs(self.goodness), self.added)

    def __lt__(self, other: "Candidate") -> bool:
        return self.rank_key < other.rank_key

    def __str__(self) -> str:
        return (
            f"{self.fd} (+{', '.join(self.added)}; "
            f"c={self.confidence:.4g}, g={self.goodness})"
        )


def candidate_rank_key(candidate: Candidate) -> tuple:
    """Module-level accessor for :attr:`Candidate.rank_key` (for ``sorted``)."""
    return candidate.rank_key


def order_key(candidate: Candidate, order: CandidateOrder) -> tuple:
    """Intra-level sort key under a ranking policy (lower = better).

    ``RANK`` is the paper's §4.2 ordering; the others are ablation
    variants (see :class:`~repro.core.config.CandidateOrder`).
    """
    if order is CandidateOrder.RANK:
        return candidate.rank_key
    if order is CandidateOrder.CONFIDENCE_ONLY:
        return (-candidate.confidence, candidate.added)
    return (candidate.added,)  # NAME: alphabetical, unguided


def extend_by_one(
    relation: Relation,
    fd: FunctionalDependency,
    config: RepairConfig | None = None,
    base: FunctionalDependency | None = None,
    only_exact: bool = False,
) -> list[Candidate]:
    """All one-attribute extensions of ``fd``, ranked (Algorithm 2).

    ``base`` is the original FD being repaired when ``fd`` is itself an
    intermediate extension (Algorithm 3); it defaults to ``fd``.  With
    ``only_exact=True`` the function reproduces the printed pseudocode
    and returns only confidence-1 candidates.
    """
    config = config or RepairConfig()
    base = base or fd
    check_fd_attributes(relation, fd)
    y = list(fd.consequent)
    distinct_y = relation.count_distinct(y)
    # Prime the partition cache with π_X: every |π_XA| and |π_XAY| below
    # then resolves as an O(covered) refinement of a cached partition
    # instead of a fresh scan (the XA-from-X derivation of Section 4.4).
    if fd.antecedent:
        relation.stripped_partition(list(fd.antecedent))
    candidates: list[Candidate] = []
    exclude = set(fd.attributes)
    for attr in relation.attribute_names:
        if attr in exclude:
            continue
        column = relation.column(attr)
        if column.has_nulls:
            continue
        if config.exclude_unique and relation.stats.is_unique(attr):
            continue
        extended = fd.extended(attr)
        xa = list(extended.antecedent)
        distinct_xa = relation.count_distinct(xa)
        distinct_xay = relation.count_distinct(xa + y)
        confidence = distinct_xa / distinct_xay if distinct_xay else 1.0
        goodness = distinct_xa - distinct_y
        if only_exact and confidence < 1.0:
            continue
        candidates.append(
            Candidate(
                fd=extended,
                base=base,
                added=extended.added_over(base),
                confidence=confidence,
                goodness=goodness,
            )
        )
    candidates.sort(key=lambda c: order_key(c, config.candidate_order))
    return candidates
