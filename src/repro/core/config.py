"""Configuration of the CB repair search.

The defaults follow the paper exactly; every knob corresponds to a
paragraph of Section 4:

* ``stop_at_first`` — §4.4: "the stop condition of the algorithm can be
  easily changed to end when the first repair is found"; with the queue
  order used, that first repair is also a *minimal* one.
* ``max_added_attributes`` — a bound on ``|U|``; ``None`` explores the
  whole search space as the paper's "find all repairs" mode does.
* ``goodness_threshold`` + ``goodness_mode`` — the §4.4 "future work"
  extension: a user-specified maximum goodness used to privilege (or
  outright exclude) repairs whose |goodness| stays under the threshold,
  discouraging UNIQUE-attribute repairs.
* ``exclude_unique`` — the blunt version of the same idea: never offer a
  UNIQUE attribute as a repair candidate (Section 3 explains why such
  repairs are undesirable).
* ``max_expansions`` — a safety budget on queue pops for benchmarking
  very wide relations; ``None`` means unbounded (paper behaviour).

:class:`EngineConfig` is the engine-level companion: it selects the
kernel backend (:mod:`repro.relational.kernels`) the relational hot
paths run on — ``python`` (stdlib reference loops) or ``numpy``
(vectorized, the ``[fast]`` extra).  The ``REPRO_BACKEND`` environment
variable overrides the default resolution; an activated
:class:`EngineConfig` overrides both.  ``approx`` selects the profiling
estimator family the same way — ``"exact"`` kernels or the
:mod:`repro.sketch` sketches (``$REPRO_APPROX``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.relational import kernels, statistics

__all__ = ["EngineConfig", "GoodnessMode", "RepairConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level settings: backend selection and cache bounds.

    ``backend`` is ``"auto"`` (numpy when installed, else python),
    ``"python"``, or ``"numpy"``.  ``partition_cache_size`` bounds the
    per-relation stripped-partition LRU (generous by default: a
    30-attribute discovery at LHS ≤ 3 caches ~4.5k sets and must not
    thrash); ``delta_track_limit`` bounds how many attribute sets the
    delta engine maintains incrementally per relation.  ``None`` means
    unbounded.  ``dc_tile`` is the edge length (representative rows) of
    the DC evidence engine's pair-space blocks — larger tiles amortize
    kernel dispatch, smaller ones bound peak memory.  Construction only
    validates; :meth:`activate` installs the choices process-wide
    (backend via :func:`repro.relational.kernels.set_backend`, taking
    precedence over the ``REPRO_BACKEND`` environment variable; cache
    bounds via :func:`repro.relational.statistics.configure_caches`;
    the tile via :func:`repro.dc.engine.set_tile`, taking precedence
    over ``REPRO_DC_TILE``).  ``workers`` selects the morsel-driven
    parallel layer's pool width (0 = serial, the byte-identical
    oracle; 1 also runs inline; ≥ 2 fans work units across a process
    pool on the numpy backend / a thread pool on the python backend),
    installed via :func:`repro.relational.parallel.set_workers` and
    taking precedence over ``REPRO_WORKERS``.  ``approx`` picks the
    profiling estimator family for the out-of-core layer
    (:mod:`repro.storage.profile`): ``"exact"`` (spill-merge kernels,
    the default) or ``"sketch"`` (:mod:`repro.sketch` HyperLogLog +
    seeded samples with stated error bounds), installed via
    :func:`repro.sketch.set_approx` and taking precedence over
    ``REPRO_APPROX``.  ``optimize`` switches the PR-10 query optimizer
    (plan rewrites in :mod:`repro.sql.optimize` plus zone-map chunk
    skipping in :mod:`repro.storage.sqlbridge`): ``"on"`` (the default)
    or ``"off"`` (the unoptimized oracle path the equivalence suite
    compares against), installed via
    :func:`repro.sql.optimize.set_optimize` and taking precedence over
    ``REPRO_OPTIMIZE``.
    """

    backend: str = "auto"
    partition_cache_size: int | None = 8192
    delta_track_limit: int | None = 64
    dc_tile: int = 4096
    workers: int = 0
    approx: str = "exact"
    optimize: str = "on"

    def __post_init__(self) -> None:
        if self.backend not in ("auto", "python", "numpy"):
            raise ValueError(
                f"backend must be 'auto', 'python' or 'numpy', got {self.backend!r}"
            )
        if self.partition_cache_size is not None and self.partition_cache_size < 1:
            raise ValueError("partition_cache_size must be >= 1 or None")
        if self.delta_track_limit is not None and self.delta_track_limit < 1:
            raise ValueError("delta_track_limit must be >= 1 or None")
        if (
            isinstance(self.dc_tile, bool)
            or not isinstance(self.dc_tile, int)
            or self.dc_tile < 1
        ):
            raise ValueError(
                f"dc_tile must be a positive integer, got {self.dc_tile!r}"
            )
        if isinstance(self.workers, bool) or not isinstance(self.workers, int):
            raise ValueError(
                f"workers must be a non-negative integer, got {self.workers!r}"
            )
        if self.workers < 0:
            raise ValueError(
                f"workers must be a non-negative integer, got {self.workers}"
            )
        if self.approx not in ("exact", "sketch"):
            raise ValueError(
                f"approx must be 'exact' or 'sketch', got {self.approx!r}"
            )
        if self.optimize not in ("on", "off"):
            raise ValueError(
                f"optimize must be 'on' or 'off', got {self.optimize!r}"
            )

    @classmethod
    def from_env(cls) -> "EngineConfig":
        """Build a config from the ``REPRO_*`` environment knobs.

        Every knob is validated with the *same* message the constructor
        raises (plus the variable it came from), so a typo in a service
        unit file reads identically to a typo in code:

        * ``REPRO_BACKEND``  → :attr:`backend`
        * ``REPRO_DC_TILE``  → :attr:`dc_tile`
        * ``REPRO_WORKERS``  → :attr:`workers`
        * ``REPRO_APPROX``   → :attr:`approx`
        * ``REPRO_OPTIMIZE`` → :attr:`optimize`

        Unset variables keep the dataclass defaults.  Invalid values
        raise :class:`ValueError` (or
        :class:`~repro.relational.errors.KernelBackendError` for the
        backend, its established type) immediately — misconfiguration
        surfaces at startup, not at first use deep in a request.
        """
        import os

        from repro import sketch
        from repro.dc import engine as dc_engine
        from repro.relational import parallel
        from repro.sql import optimize as sql_optimize

        overrides: dict[str, object] = {}
        backend = os.environ.get(kernels.BACKEND_ENV_VAR)
        if backend:
            overrides["backend"] = kernels._normalize(
                backend, f"${kernels.BACKEND_ENV_VAR}"
            )
        tile = os.environ.get(dc_engine.TILE_ENV_VAR)
        if tile:
            try:
                value = int(tile)
            except ValueError:
                raise ValueError(
                    f"dc_tile must be a positive integer, got {tile!r} "
                    f"(from ${dc_engine.TILE_ENV_VAR})"
                ) from None
            overrides["dc_tile"] = dc_engine._validate_tile(
                value, f"${dc_engine.TILE_ENV_VAR}"
            )
        workers = os.environ.get(parallel.WORKERS_ENV_VAR)
        if workers:
            try:
                value = int(workers)
            except ValueError:
                raise ValueError(
                    f"workers must be a non-negative integer, got {workers!r} "
                    f"(from ${parallel.WORKERS_ENV_VAR})"
                ) from None
            overrides["workers"] = parallel._validate_workers(
                value, f"${parallel.WORKERS_ENV_VAR}"
            )
        approx = os.environ.get(sketch.APPROX_ENV_VAR)
        if approx:
            overrides["approx"] = sketch._normalize(
                approx, f"${sketch.APPROX_ENV_VAR}"
            )
        optimize = os.environ.get(sql_optimize.OPTIMIZE_ENV_VAR)
        if optimize:
            overrides["optimize"] = sql_optimize._normalize(
                optimize, f"${sql_optimize.OPTIMIZE_ENV_VAR}"
            )
        return cls(**overrides)

    def resolve(self) -> str:
        """The concrete backend name this config would run on."""
        if self.backend == "auto":
            return "numpy" if kernels.numpy_available() else "python"
        return self.backend

    def activate(self) -> None:
        """Install this config's choices process-wide.

        Raises :class:`~repro.relational.errors.KernelBackendError` if
        ``numpy`` is requested but not installed.
        """
        from repro import sketch
        from repro.dc import engine as dc_engine
        from repro.relational import parallel
        from repro.sql import optimize as sql_optimize

        kernels.set_backend(self.backend)
        statistics.configure_caches(
            partition_cache_size=self.partition_cache_size,
            delta_track_limit=self.delta_track_limit,
        )
        dc_engine.set_tile(self.dc_tile)
        parallel.set_workers(self.workers)
        sketch.set_approx(self.approx)
        sql_optimize.set_optimize(self.optimize)


class GoodnessMode(enum.Enum):
    """How a configured goodness threshold is applied to exact repairs."""

    #: Repairs over the threshold are kept but ranked after every repair
    #: within it (the paper's "privilege" wording).
    PREFER = "prefer"
    #: Repairs over the threshold are dropped entirely.
    EXCLUDE = "exclude"


class CandidateOrder(enum.Enum):
    """How one-step candidates are ranked (ablation knob).

    The paper's ranking (§4.2) is confidence descending with |goodness|
    ascending as the secondary key.  The alternatives exist so the
    ordering ablation bench can quantify what each ingredient buys:

    * ``CONFIDENCE_ONLY`` drops the goodness tie-break — same repairs
      found, but ties resolve arbitrarily (by name), so the *first*
      repair may be a UNIQUE-ish attribute the paper's ranking avoids;
    * ``NAME`` drops ranking altogether (alphabetical) — the search is
      still correct but no longer guided, exploring more nodes before
      the first repair in stop-at-first mode.
    """

    RANK = "rank"
    CONFIDENCE_ONLY = "confidence-only"
    NAME = "name"


@dataclass(frozen=True)
class RepairConfig:
    """Immutable settings for one repair search."""

    stop_at_first: bool = False
    max_added_attributes: int | None = None
    goodness_threshold: int | None = None
    goodness_mode: GoodnessMode = GoodnessMode.PREFER
    exclude_unique: bool = False
    max_expansions: int | None = None
    #: Conflict-score convention for FD ordering (see DESIGN.md §3).
    include_self_in_conflict: bool = False
    #: Candidate ranking policy (ablation knob; paper = RANK).
    candidate_order: CandidateOrder = CandidateOrder.RANK

    def __post_init__(self) -> None:
        if self.max_added_attributes is not None and self.max_added_attributes < 1:
            raise ValueError("max_added_attributes must be >= 1 or None")
        if self.goodness_threshold is not None and self.goodness_threshold < 0:
            raise ValueError("goodness_threshold must be >= 0 or None")
        if self.max_expansions is not None and self.max_expansions < 1:
            raise ValueError("max_expansions must be >= 1 or None")

    # Convenience presets -------------------------------------------------
    @classmethod
    def find_first(cls, **overrides) -> "RepairConfig":
        """The paper's first-repair mode (minimal repair, early stop)."""
        overrides.setdefault("stop_at_first", True)
        return cls(**overrides)

    @classmethod
    def find_all(cls, **overrides) -> "RepairConfig":
        """The paper's find-all-repairs mode (full search-space walk)."""
        overrides.setdefault("stop_at_first", False)
        return cls(**overrides)

    def within_threshold(self, goodness: int) -> bool:
        """Whether a repair with this goodness passes the threshold."""
        if self.goodness_threshold is None:
            return True
        return abs(goodness) <= self.goodness_threshold
