"""FD validation: which declared FDs still hold on the current data.

This is step (i) of the paper's method — "find the functional
dependencies that are violated by the current data" — the periodic /
continuous check the prototype runs before proposing any evolution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import FDAssessment, assess, violating_pairs
from repro.fd.ordering import RankedFD, order_fds
from repro.relational import expr
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation

__all__ = ["ValidationEntry", "ValidationReport", "validate_relation", "validate_catalog"]


@dataclass(frozen=True)
class ValidationEntry:
    """One FD's validation outcome, with optional violation witnesses."""

    relation_name: str
    assessment: FDAssessment
    witnesses: tuple[tuple[int, int], ...] = ()

    @property
    def fd(self) -> FunctionalDependency:
        """The validated FD."""
        return self.assessment.fd

    @property
    def is_violated(self) -> bool:
        """Whether the instance is inconsistent w.r.t. this FD."""
        return not self.assessment.is_exact

    def __str__(self) -> str:
        status = "VIOLATED" if self.is_violated else "satisfied"
        return (
            f"{self.relation_name}.{self.fd}: {status} "
            f"(c={self.assessment.confidence:.4g}, g={self.assessment.goodness})"
        )


@dataclass
class ValidationReport:
    """Validation outcomes for a set of FDs, plus the repair order."""

    entries: list[ValidationEntry]
    order: list[RankedFD]

    @property
    def violated(self) -> list[ValidationEntry]:
        """Entries for violated FDs only, in report order."""
        return [entry for entry in self.entries if entry.is_violated]

    @property
    def satisfied(self) -> list[ValidationEntry]:
        """Entries for satisfied FDs only."""
        return [entry for entry in self.entries if not entry.is_violated]

    @property
    def all_satisfied(self) -> bool:
        """Whether the instance is consistent with every declared FD."""
        return not self.violated

    def __str__(self) -> str:
        return "\n".join(str(entry) for entry in self.entries)


def validate_relation(
    relation: Relation,
    fds: list[FunctionalDependency],
    witness_limit: int = 0,
    scope: expr.Predicate | None = None,
) -> ValidationReport:
    """Validate ``fds`` against ``relation``.

    ``witness_limit > 0`` attaches up to that many violating tuple pairs
    per violated FD, for the designer to inspect.  ``scope`` restricts
    validation to ``σ_scope(relation)`` — an IR predicate from
    :mod:`repro.relational.expr`, evaluated columnar through the kernel
    backend (witness row indices are then relative to the scoped
    instance).
    """
    if scope is not None:
        relation = relation.select(scope)
    entries: list[ValidationEntry] = []
    for fd in fds:
        assessment = assess(relation, fd)
        witnesses: tuple[tuple[int, int], ...] = ()
        if witness_limit > 0 and not assessment.is_exact:
            witnesses = tuple(violating_pairs(relation, fd, limit=witness_limit))
        entries.append(
            ValidationEntry(
                relation_name=relation.name,
                assessment=assessment,
                witnesses=witnesses,
            )
        )
    return ValidationReport(entries=entries, order=order_fds(relation, fds))


def validate_catalog(catalog: Catalog, witness_limit: int = 0) -> dict[str, ValidationReport]:
    """Validate every relation of a catalog against its declared FDs."""
    reports: dict[str, ValidationReport] = {}
    for name in catalog.relation_names():
        fds = catalog.fds(name)
        if fds:
            reports[name] = validate_relation(
                catalog.relation(name), fds, witness_limit=witness_limit
            )
    return reports
