"""repro — reproduction of *Semi-automatic support for evolving functional
dependencies* (Mazuran, Quintarelli, Tanca, Ugolini; EDBT 2016).

The library implements the paper's CB (confidence-based) method for
detecting and evolving violated functional dependencies, every substrate
it needs (a from-scratch in-memory relational engine, a mini SQL layer,
data generators for the paper's synthetic and real workloads), the EB
(entropy-based) baseline of Section 5, a TANE-style discovery
alternative, and a benchmark harness that regenerates every table and
figure of the paper's evaluation.

Quickstart::

    from repro import places_catalog, RepairSession

    session = RepairSession(places_catalog())
    for event in session.run("Places"):
        print(event)

Package map (see DESIGN.md for the full inventory):

==================  ====================================================
``repro.relational``  columnar relation engine, catalog, CSV I/O
``repro.sql``         SELECT COUNT(DISTINCT …) parser/executor
``repro.fd``          FD model: confidence, goodness, clusterings
``repro.core``        the CB repair method (Algorithms 1–3) + sessions
``repro.eb``          the entropy-based baseline + ε measures
``repro.discovery``   levelwise AFD discovery (the rejected alternative)
``repro.dc``          denial constraints + discover-then-relax ([16])
``repro.datarepair``  extensional repair: deletion, update, CQA
``repro.advisor``     §6.3: FD-derived indexes + query rewrites
``repro.temporal``    temporal FDs, drift detection, evolution loop
``repro.design``      closure, keys, BCNF/3NF from evolved FDs
``repro.datagen``     TPC-H DBGEN substitute, Places, dataset simulators
``repro.bench``       experiment runners for Tables 1–8 and Figure 3
==================  ====================================================
"""

from .core import (
    Candidate,
    EngineConfig,
    GoodnessMode,
    RepairConfig,
    RepairSession,
    extend_by_one,
    find_fd_repairs,
    find_first_repair,
    find_repairs,
    validate_catalog,
    validate_relation,
)
from .datagen import places_catalog, places_relation
from .fd import FunctionalDependency, assess, confidence, fd, goodness, order_fds
from .relational import (
    Attribute,
    AttributeType,
    Catalog,
    Relation,
    RelationSchema,
    load_csv,
    save_csv,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "AttributeType",
    "Candidate",
    "Catalog",
    "EngineConfig",
    "FunctionalDependency",
    "GoodnessMode",
    "Relation",
    "RelationSchema",
    "RepairConfig",
    "RepairSession",
    "__version__",
    "assess",
    "confidence",
    "extend_by_one",
    "fd",
    "find_fd_repairs",
    "find_first_repair",
    "find_repairs",
    "goodness",
    "load_csv",
    "order_fds",
    "places_catalog",
    "places_relation",
    "save_csv",
    "validate_catalog",
    "validate_relation",
]
