"""The tiled evidence engine: block-vectorized pair space + sample-then-verify.

:mod:`repro.dc.evidence` builds the evidence multiset by enumerating
every representative pair in one shot — the reference semantics, but
with two scaling cliffs: the numpy sweep only applies to ≤ 62-predicate
spaces over NULL/NaN-free ordered columns, and *every* workload pays
full O(m²) evidence construction even when it only needs to check a
handful of candidate DCs.  This module removes both:

* **Tiling** — the pair space is partitioned into fixed-size blocks
  (``tile × tile`` representative rows, default 4096, the
  ``REPRO_DC_TILE`` / :class:`repro.core.config.EngineConfig` knob) and
  each block is evaluated fully vectorized through the active kernel
  backend's ``evidence_sweep``.  Peak additional memory is bounded by
  the block chunk plus the distinct-evidence map — never O(m²).
* **Multi-word masks** — the block kernels carry evidence bits in
  62-bit words (``EVIDENCE_WORD_BITS``), so predicate spaces of any
  width vectorize; the pure-Python backend's native bignums are its
  word representation.
* **NULL/NaN lanes** — order comparisons involving NULL or NaN are
  classified into the ``gt`` lane exactly as a direct ``<`` evaluates
  them (always false), inside the kernel — no reference-loop fallback.
* **Sample-then-verify discovery** — :func:`discover_dcs` mines
  candidate DCs from a deterministic sample of representative pairs,
  then *verifies* each candidate by scanning only its own predicates
  block-wise with early exit on the first violation.  Failed candidates
  feed their violating pairs' evidence back into the working set and
  mining repeats — the classic Hydra-style refinement loop, which
  converges to exactly the full-enumeration result: at the fixpoint
  every minimal-on-sample DC is valid on the instance, and validity is
  upward closed, so the minimal covers of the working set and of the
  full evidence coincide.  Clean candidates never pay for full
  evidence construction.

``engine="reference"`` (the one-shot enumeration) is retained in
:func:`discover_dcs` and serves as the property-test oracle.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.relational import kernels, parallel
from repro.relational.errors import validate_engine
from repro.relational.relation import Relation

from .evidence import (
    EvidenceSet,
    _attribute_tables,
    _collapse_duplicates,
    _decode_pair,
    _eq_all_lane,
    _sampled_pair_ids,
    build_evidence_set,
)
from .model import DCError, DenialConstraint, Operator
from .predicates import PredicateSpace, build_predicate_space
from .search import DCDiscoveryResult, mine_denial_constraints

__all__ = [
    "DEFAULT_SAMPLE_PAIRS",
    "DEFAULT_TILE",
    "TILE_ENV_VAR",
    "build_evidence_tiled",
    "dc_violating_pairs",
    "discover_dcs",
    "effective_tile",
    "set_tile",
    "use_tile",
]

#: Default edge length of a pair-space block, in representative rows.
DEFAULT_TILE = 4096

#: Environment variable overriding the default tile size.
TILE_ENV_VAR = "REPRO_DC_TILE"

#: Default representative-pair budget of the sample-then-verify loop.
DEFAULT_SAMPLE_PAIRS = 50_000

#: How many violating pairs feed back per failed candidate per round.
_REFINE_PAIRS = 8

#: In-process override installed by :func:`set_tile`.
_forced_tile: int | None = None

_OPCODE = {
    Operator.EQ: 0,
    Operator.NE: 1,
    Operator.LT: 2,
    Operator.LE: 3,
    Operator.GT: 4,
    Operator.GE: 5,
}


def _validate_tile(tile: object, source: str) -> int:
    if isinstance(tile, bool) or not isinstance(tile, int) or tile < 1:
        # Same message as EngineConfig's constructor validation, plus
        # the source, so every configuration path reads identically.
        raise ValueError(
            f"dc_tile must be a positive integer, got {tile!r} (from {source})"
        )
    return tile


def set_tile(tile: int | None) -> None:
    """Force a tile size in-process (overrides ``REPRO_DC_TILE``).

    ``None`` removes the override.  :meth:`EngineConfig.activate`
    installs its ``dc_tile`` through this.
    """
    global _forced_tile
    _forced_tile = None if tile is None else _validate_tile(tile, "set_tile()")


def effective_tile() -> int:
    """The tile size the engine would use now (override > env > default)."""
    if _forced_tile is not None:
        return _forced_tile
    env = os.environ.get(TILE_ENV_VAR)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"dc_tile must be a positive integer, got {env!r} "
                f"(from ${TILE_ENV_VAR})"
            ) from None
        return _validate_tile(value, f"${TILE_ENV_VAR}")
    return DEFAULT_TILE


@contextmanager
def use_tile(tile: int | None) -> Iterator[None]:
    """Scoped :func:`set_tile` (tests and benches use this)."""
    global _forced_tile
    previous = _forced_tile
    set_tile(tile)
    try:
        yield
    finally:
        _forced_tile = previous


# ----------------------------------------------------------------------
# Pair-space preparation
# ----------------------------------------------------------------------
@dataclass
class _PairSpace:
    """Backend-ready state of one relation's representative pair space."""

    space: PredicateSpace
    specs: dict
    rep_rows: list[int]
    mults: list[int]
    within_pairs: int
    eq_all: int
    attr_pos: dict[str, int]

    @property
    def num_reps(self) -> int:
        return len(self.rep_rows)

    @property
    def rep_pairs(self) -> int:
        m = self.num_reps
        return m * (m - 1) // 2


def _pair_space(
    relation: Relation,
    space: PredicateSpace,
    collapse: bool = True,
) -> _PairSpace:
    """Build kernel specs over the (collapsed) pair space."""
    tables = _attribute_tables(relation, space)
    if collapse and space.attributes:
        rep_rows, mults, within_pairs = _collapse_duplicates(
            relation, space.attributes
        )
    else:
        rep_rows = list(range(relation.num_rows))
        mults = [1] * relation.num_rows
        within_pairs = 0
    backend = kernels.get_backend()
    specs = backend.evidence_specs(tables, rep_rows, mults, space.size)
    return _PairSpace(
        space=space,
        specs=specs,
        rep_rows=rep_rows,
        mults=mults,
        within_pairs=within_pairs,
        eq_all=_eq_all_lane(tables),
        attr_pos={name: pos for pos, name in enumerate(space.attributes)},
    )


def _pred_ops(pair_space: _PairSpace, dc_mask: int) -> list[tuple[int, int]]:
    return [
        (pair_space.attr_pos[pred.attribute], _OPCODE[pred.operator])
        for pred in pair_space.space.predicates_of(dc_mask)
    ]


# ----------------------------------------------------------------------
# The (optionally parallel) full pair-space sweep
# ----------------------------------------------------------------------
def _sweep_morsel(arrays, payload, blocks):
    """Pool worker: fold one contiguous run of block rectangles.

    Runs the same block kernel the serial sweep runs; the partial
    counts dict carries its masks in this morsel's first-seen order,
    which the caller merges back in morsel order.
    """
    backend_name, meta = payload
    backend = kernels.backend_module(backend_name)
    specs = backend.evidence_restore(arrays, meta)
    counts: dict[int, int] = {}
    backend.evidence_sweep_blocks(specs, blocks, counts)
    return counts


def _evidence_sweep(specs: dict, tile: int, counts: dict[int, int]) -> None:
    """The full-coverage sweep, fanned across the morsel pool when
    workers are configured.

    Byte-identical to ``backend.evidence_sweep``: the block list is
    split into contiguous morsels and the per-morsel counts are merged
    in morsel order, so a mask's first insertion — and with it the
    final dict order — lands exactly where the serial traversal puts
    it.
    """
    backend = kernels.get_backend()
    workers = parallel.effective_workers()
    if parallel.pool_kind(workers) == "serial":
        backend.evidence_sweep(specs, tile, counts)
        return
    m = specs["m"]
    if m < 2:
        return
    blocks = list(backend.evidence_blocks(m, tile))
    if len(blocks) < 2:
        backend.evidence_sweep(specs, tile, counts)
        return
    arrays, meta = backend.evidence_export(specs)
    payload = (kernels.active_backend_name(), meta)
    parts = parallel.morsel_map(
        _sweep_morsel,
        parallel.split_morsels(blocks, workers * 4),
        arrays=arrays,
        payload=payload,
    )
    for part in parts:
        for mask, weight in part.items():
            counts[mask] = counts.get(mask, 0) + weight


# ----------------------------------------------------------------------
# Tiled evidence construction
# ----------------------------------------------------------------------
def build_evidence_tiled(
    relation: Relation,
    space: PredicateSpace,
    max_pairs: int | None = None,
    tile: int | None = None,
) -> EvidenceSet:
    """The evidence multiset via the tiled block kernels.

    Semantically identical to :func:`repro.dc.evidence.build_evidence_set`
    full enumeration — any predicate-space width, NULL/NaN in ordered
    columns included — at O(tile-chunk) peak memory.  ``max_pairs``
    bounds the number of *representative* pairs examined (a seeded
    permutation sample; duplicate-class-internal pairs are always
    summarized), flagged honestly via ``sampled``.
    """
    tile = effective_tile() if tile is None else _validate_tile(tile, "tile=")
    n = relation.num_rows
    total_unordered = n * (n - 1) // 2
    counts: dict[int, int] = {}
    if not space.attributes or n < 2:
        budget = (
            total_unordered if max_pairs is None else min(max_pairs, total_unordered)
        )
        if budget > 0:
            counts[0] = 2 * budget
        return EvidenceSet(
            space=space,
            counts=counts,
            total_pairs=2 * max(budget, 0),
            sampled=0 <= budget < total_unordered,
        )
    pair_space = _pair_space(relation, space)
    if pair_space.within_pairs:
        counts[pair_space.eq_all] = 2 * pair_space.within_pairs
    backend = kernels.get_backend()
    rep_total = pair_space.rep_pairs
    if max_pairs is None or max_pairs >= rep_total:
        _evidence_sweep(pair_space.specs, tile, counts)
        return EvidenceSet(
            space=space,
            counts=counts,
            total_pairs=2 * total_unordered,
            sampled=False,
        )
    m = pair_space.num_reps
    batch_lefts: list[int] = []
    batch_rights: list[int] = []
    for k in _sampled_pair_ids(rep_total, max_pairs):
        left, right = _decode_pair(k, m)
        batch_lefts.append(left)
        batch_rights.append(right)
        if len(batch_lefts) >= 65536:
            backend.evidence_pairs_into(
                pair_space.specs, batch_lefts, batch_rights, counts
            )
            batch_lefts, batch_rights = [], []
    if batch_lefts:
        backend.evidence_pairs_into(
            pair_space.specs, batch_lefts, batch_rights, counts
        )
    return EvidenceSet(
        space=space,
        counts=counts,
        total_pairs=sum(counts.values()),
        sampled=True,
    )


# ----------------------------------------------------------------------
# Verification (the "then verify" half)
# ----------------------------------------------------------------------
def _verify_dc(
    pair_space: _PairSpace,
    dc_mask: int,
    tile: int,
) -> tuple[bool, dict[int, int]]:
    """Whether ``dc_mask`` holds on the full pair space.

    Scans only the DC's own predicates, block-wise, early-exiting at
    the first violating chunk.  On failure returns the evidence of up
    to ``_REFINE_PAIRS`` violating pairs (both directions) so the
    mining loop can refine its working set.
    """
    if pair_space.within_pairs and dc_mask & pair_space.eq_all == dc_mask:
        # Duplicate rows already violate the conjunction: their pairs
        # satisfy every equality-compatible predicate.
        return False, {pair_space.eq_all: 2 * pair_space.within_pairs}
    backend = kernels.get_backend()
    weight, hits = backend.dc_scan(
        pair_space.specs, _pred_ops(pair_space, dc_mask), tile, _REFINE_PAIRS
    )
    if weight == 0:
        return True, {}
    seen: set[tuple[int, int]] = set()
    lefts: list[int] = []
    rights: list[int] = []
    for a, b in hits:
        pair = (a, b) if a < b else (b, a)
        if pair not in seen:
            seen.add(pair)
            lefts.append(pair[0])
            rights.append(pair[1])
    refinements: dict[int, int] = {}
    backend.evidence_pairs_into(pair_space.specs, lefts, rights, refinements)
    return False, refinements


# ----------------------------------------------------------------------
# Sample-then-verify discovery
# ----------------------------------------------------------------------
def discover_dcs(
    relation: Relation,
    space: PredicateSpace | None = None,
    *,
    engine: str = "tiled",
    max_size: int = 4,
    max_violations: int = 0,
    max_constraints: int | None = None,
    sample_pairs: int | None = None,
    tile: int | None = None,
    order_predicates: bool = True,
) -> DCDiscoveryResult:
    """Mine all minimal valid DCs of ``relation`` under ``space``.

    ``engine="tiled"`` (default) runs the sample-then-verify loop: mine
    candidates from at most ``sample_pairs`` representative pairs
    (default :data:`DEFAULT_SAMPLE_PAIRS`, deterministic), verify each
    against the full pair space, refine and repeat until every mined DC
    verifies.  The result is *exact* — identical to full enumeration —
    yet clean instances never build the full evidence multiset.
    ``engine="reference"`` is the legacy one-shot path (``sample_pairs``
    maps onto its ``max_pairs`` row-pair budget); it exists as the
    equivalence oracle and for approximate mining
    (``max_violations > 0``), which needs true pair multiplicities.
    """
    validate_engine(engine, ("tiled", "reference"), DCError)
    if space is None:
        space = build_predicate_space(relation, order_predicates=order_predicates)
    if engine == "reference":
        evidence = build_evidence_set(relation, space, max_pairs=sample_pairs)
        return mine_denial_constraints(
            evidence,
            max_size=max_size,
            max_violations=max_violations,
            max_constraints=max_constraints,
        )
    if max_violations:
        raise DCError(
            "the tiled engine verifies exact DCs only; use engine='reference' "
            "for approximate mining (max_violations > 0)"
        )
    start = time.perf_counter()
    tile = effective_tile() if tile is None else _validate_tile(tile, "tile=")
    n = relation.num_rows
    total_unordered = n * (n - 1) // 2
    if not space.attributes or n < 2:
        evidence = build_evidence_tiled(relation, space, tile=tile)
        result = mine_denial_constraints(
            evidence, max_size=max_size, max_constraints=max_constraints
        )
        result.sampled = False
        return result

    pair_space = _pair_space(relation, space)
    rep_total = pair_space.rep_pairs
    budget = DEFAULT_SAMPLE_PAIRS if sample_pairs is None else max(sample_pairs, 0)
    # The refinement loop's completeness argument needs a nonempty
    # working set: mining over zero evidences prunes every branch as
    # vacuous (nothing to hit), so the loop would fixpoint on the empty
    # result while valid DCs exist.  One pair is enough to start.
    budget = max(budget, 1)
    covered = budget >= rep_total

    counts: dict[int, int] = {}
    if pair_space.within_pairs:
        counts[pair_space.eq_all] = 2 * pair_space.within_pairs
    backend = kernels.get_backend()
    if covered:
        _evidence_sweep(pair_space.specs, tile, counts)
    else:
        m = pair_space.num_reps
        lefts = []
        rights = []
        for k in _sampled_pair_ids(rep_total, budget):
            left, right = _decode_pair(k, m)
            lefts.append(left)
            rights.append(right)
        backend.evidence_pairs_into(pair_space.specs, lefts, rights, counts)

    verified: set[int] = set()
    branches = 0
    while True:
        evidence = EvidenceSet(
            space=space,
            counts=dict(counts),
            total_pairs=sum(counts.values()),
            sampled=not covered,
        )
        mined = mine_denial_constraints(
            evidence, max_size=max_size, max_constraints=max_constraints
        )
        branches += mined.branches_explored
        if covered:
            result = mined
            break
        dirty = False
        for dc in mined.constraints:
            dc_mask = space.mask_of(dc.predicates)
            if dc_mask in verified:
                continue
            valid, refinements = _verify_dc(pair_space, dc_mask, tile)
            if valid:
                verified.add(dc_mask)
                continue
            dirty = True
            for mask, weight in refinements.items():
                counts[mask] = counts.get(mask, 0) + weight
        if not dirty:
            result = mined
            break
    result.evidence_pairs = 2 * total_unordered
    result.distinct_evidences = len(counts)
    result.branches_explored = branches
    result.sampled = False  # verification makes the output exact
    result.elapsed_seconds = time.perf_counter() - start
    return result


# ----------------------------------------------------------------------
# Direct DC violation scans (conflict graphs, validation)
# ----------------------------------------------------------------------
def dc_violating_pairs(
    relation: Relation,
    dc: DenialConstraint,
    limit: int | None = None,
    tile: int | None = None,
) -> list[tuple[int, int]]:
    """Ordered row pairs violating ``dc``, via the block kernels.

    Every ordered pair ``(i, j)``, ``i ≠ j``, satisfying all conjuncts
    under the *engine's* pair semantics — the same three-way lanes the
    evidence multiset and the discovery verifier use, so DCs this
    subsystem mines as valid have zero violating pairs here.  On
    NULL/NaN-free data that coincides with
    :meth:`DenialConstraint.violations`; on special values it follows
    code space instead of the row-dict interpreter: NULL equals NULL
    (as the FD layer's code comparisons do, where the interpreter would
    raise on ordered NULLs), a NaN equals the same NaN object, and an
    order-incomparable pair lands in the ``gt`` lane exactly as the
    reference evidence loop's ``<`` classifies it.  Cost is
    O(pairs · |DC attrs| / SIMD); pair order follows the block sweep,
    not the row-major reference enumeration.  ``limit`` truncates.
    """
    tile = effective_tile() if tile is None else _validate_tile(tile, "tile=")
    space = PredicateSpace(relation.name, tuple(dc.predicates))
    pair_space = _pair_space(relation, space, collapse=False)
    backend = kernels.get_backend()
    dc_mask = space.mask_of(dc.predicates)
    _weight, hits = backend.dc_scan(
        pair_space.specs, _pred_ops(pair_space, dc_mask), tile, limit
    )
    return hits
