"""Evidence sets: the pair-level summary FastDC mines DCs from.

For every ordered tuple pair ``(t, s)`` the *evidence* is the set of
predicates of the space that the pair satisfies.  A candidate DC
``¬(p₁ ∧ … ∧ p_k)`` is valid on the instance iff **no** evidence
contains all of its predicates.  Discovery therefore never re-touches
tuples: it works on the (deduplicated, counted) evidence multiset.

Evidence sets are bitmasks over the predicate space, and we exploit two
classic economies:

* pairs are enumerated once per unordered pair — the evidence of
  ``(s, t)`` is derived from ``(t, s)`` by swapping the order-operator
  bits (equality bits are symmetric);
* duplicate evidences are counted, not stored, so the result is a
  ``{mask: multiplicity}`` map whose size is bounded by the predicate
  space, not by n².

Pair enumeration is O(n²) in the worst case, but the full-enumeration
path first collapses duplicate rows through the relation's cached
stripped partition over the predicate-space attributes: rows identical
on every attribute produce identical evidence against any third row, so
pairs are enumerated over one representative per duplicate class and
counted with multiplicities — O(m²) for m distinct rows.  ``max_pairs``
switches to deterministic sampling so discovery stays usable on the
benchmark relations — a standard move (the original FastDC also samples
for its approximate variant) that we surface honestly in the result
object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.relation import Relation

from .model import Operator
from .predicates import PredicateSpace

__all__ = ["EvidenceSet", "build_evidence_set"]


@dataclass(frozen=True)
class EvidenceSet:
    """Deduplicated evidence masks with multiplicities.

    ``total_pairs`` counts the ordered pairs the masks summarize;
    ``sampled`` records whether pair enumeration was truncated (in
    which case mined DCs are valid on the sample, not provably on the
    full instance).
    """

    space: PredicateSpace
    counts: dict[int, int]
    total_pairs: int
    sampled: bool

    @property
    def num_distinct(self) -> int:
        """Number of distinct evidence masks."""
        return len(self.counts)

    def violations_of(self, dc_mask: int) -> int:
        """Ordered pairs that satisfy *all* predicates in ``dc_mask``.

        Zero means the DC is valid (on the summarized pairs).
        """
        return sum(
            count
            for mask, count in self.counts.items()
            if mask & dc_mask == dc_mask
        )

    def is_valid(self, dc_mask: int, max_violations: int = 0) -> bool:
        """Whether the DC holds, tolerating ``max_violations`` pairs."""
        return self.violations_of(dc_mask) <= max_violations


def build_evidence_set(
    relation: Relation,
    space: PredicateSpace,
    max_pairs: int | None = None,
) -> EvidenceSet:
    """Compute the evidence multiset of ``relation`` under ``space``.

    ``max_pairs`` bounds the number of *unordered* pairs examined; rows
    are taken in order (deterministic), which for our generators is
    equivalent to random sampling because row order carries no signal.
    """
    eq_bits: list[tuple[int, int]] = []  # (column position, bit) per EQ pred
    masks_by_attr: dict[str, dict[Operator, int]] = {}
    for i, pred in enumerate(space.predicates):
        masks_by_attr.setdefault(pred.attribute, {})[pred.operator] = 1 << i

    attributes = space.attributes
    columns = {name: relation.column(name) for name in attributes}
    code_columns = {name: columns[name].codes for name in attributes}
    # Decoded values are needed only for order comparisons.
    ordered_attrs = [
        name
        for name in attributes
        if any(op.is_order for op in masks_by_attr[name])
    ]
    value_columns = {name: columns[name].values() for name in ordered_attrs}

    n = relation.num_rows
    counts: dict[int, int] = {}
    pairs_done = 0
    sampled = False
    total_unordered = n * (n - 1) // 2
    budget = max_pairs if max_pairs is not None else total_unordered

    # Precompute per-attribute forward/backward bit tables so the inner
    # loop is a few dict-free integer ops per attribute.
    tables = []
    for name in attributes:
        ops = masks_by_attr[name]
        eq_bit = ops.get(Operator.EQ, 0)
        ne_bit = ops.get(Operator.NE, 0)
        lt_bit = ops.get(Operator.LT, 0)
        le_bit = ops.get(Operator.LE, 0)
        gt_bit = ops.get(Operator.GT, 0)
        ge_bit = ops.get(Operator.GE, 0)
        has_order = name in value_columns
        tables.append(
            (
                code_columns[name],
                value_columns.get(name),
                eq_bit | le_bit | ge_bit,          # mask when t.A = s.A
                ne_bit | lt_bit | le_bit,          # forward mask when t.A < s.A
                ne_bit | gt_bit | ge_bit,          # forward mask when t.A > s.A
                has_order,
                ne_bit,
            )
        )

    if budget >= total_unordered and attributes:
        # Full enumeration: collapse duplicate rows.  Rows in the same
        # class of the all-attribute partition carry identical codes
        # (hence identical decoded values), so every pair involving
        # them is counted once per representative, with multiplicity.
        duplicates = relation.stripped_partition(list(attributes))
        eq_all = 0
        for table in tables:
            eq_all |= table[2]
        reps: list[tuple[int, int]] = []  # (representative row, class size)
        in_class = [False] * n
        within_pairs = 0
        for cls_rows in duplicates:
            size = len(cls_rows)
            reps.append((cls_rows[0], size))
            within_pairs += size * (size - 1) // 2
            for row in cls_rows:
                in_class[row] = True
        reps.extend((row, 1) for row in range(n) if not in_class[row])
        reps.sort()
        if within_pairs:
            # Both directions of an identical pair satisfy exactly the
            # equality-compatible predicates on every attribute.
            counts[eq_all] = counts.get(eq_all, 0) + 2 * within_pairs
        if _vectorizable(space, tables):
            _pairwise_masks_vectorized(tables, reps, counts)
        else:
            _pairwise_masks_reference(tables, reps, counts)
        return EvidenceSet(
            space=space,
            counts=counts,
            total_pairs=2 * total_unordered,
            sampled=False,
        )

    done = False
    for i in range(n):  # sampled path: plain pair loop under a budget
        if done:
            break
        for j in range(i + 1, n):
            if pairs_done >= budget:
                sampled = pairs_done < total_unordered
                done = True
                break
            forward = 0
            backward = 0
            for codes, values, eq_mask, lt_mask, gt_mask, has_order, ne_bit in tables:
                if codes[i] == codes[j]:
                    forward |= eq_mask
                    backward |= eq_mask
                elif has_order:
                    if values[i] < values[j]:
                        forward |= lt_mask
                        backward |= gt_mask
                    else:
                        forward |= gt_mask
                        backward |= lt_mask
                else:
                    forward |= ne_bit
                    backward |= ne_bit
            counts[forward] = counts.get(forward, 0) + 1
            counts[backward] = counts.get(backward, 0) + 1
            pairs_done += 1
    return EvidenceSet(
        space=space,
        counts=counts,
        total_pairs=2 * pairs_done,
        sampled=sampled,
    )


def _pairwise_masks_reference(
    tables: list,
    reps: list[tuple[int, int]],
    counts: dict[int, int],
) -> None:
    """The reference pair loop: one mask pair per representative pair."""
    for a in range(len(reps)):
        i, mult_i = reps[a]
        for b in range(a + 1, len(reps)):
            j, mult_j = reps[b]
            forward = 0
            backward = 0
            for codes, values, eq_mask, lt_mask, gt_mask, has_order, ne_bit in tables:
                if codes[i] == codes[j]:
                    forward |= eq_mask
                    backward |= eq_mask
                elif has_order:
                    if values[i] < values[j]:
                        forward |= lt_mask
                        backward |= gt_mask
                    else:
                        forward |= gt_mask
                        backward |= lt_mask
                else:
                    forward |= ne_bit
                    backward |= ne_bit
            weight = mult_i * mult_j
            counts[forward] = counts.get(forward, 0) + weight
            counts[backward] = counts.get(backward, 0) + weight


def _vectorizable(space: PredicateSpace, tables: list) -> bool:
    """Whether the numpy pairwise sweep applies.

    Requires the numpy backend to be active, evidence masks that fit in
    a signed 64-bit lane, and NULL- and NaN-free columns under every
    order predicate: ranks are undefined against NULL, and a rank
    total-orders NaN where the reference's direct ``<`` comparisons
    are always false.  The space builder never emits order predicates
    on nullable columns, so the guards mostly cover hand-built spaces
    and NaN-bearing float columns.
    """
    from repro.relational import kernels

    if kernels.active_backend_name() != "numpy":
        return False
    if space.size > 62:
        return False
    for codes, values, _eq, _lt, _gt, has_order, _ne in tables:
        if not has_order:
            continue
        if any(code < 0 for code in codes):
            return False
        if any(value != value for value in values):  # NaN
            return False
    return True


def _pairwise_masks_vectorized(
    tables: list,
    reps: list[tuple[int, int]],
    counts: dict[int, int],
) -> None:
    """Pairwise evidence via predicate masks on int64 lanes.

    For each representative row the masks against every later
    representative are built in one shot: per attribute, an equality
    mask in code space plus (for ordered attributes) a rank comparison,
    folded into forward/backward evidence words with bitwise selects.
    Identical-by-construction to the reference loop, O(m²/SIMD) instead
    of O(m² · |attrs|) interpreted steps.
    """
    import numpy as np

    m = len(reps)
    if m < 2:
        return
    rep_rows = np.asarray([row for row, _mult in reps], dtype=np.int64)
    mults = np.asarray([mult for _row, mult in reps], dtype=np.int64)
    attr_tables = []
    for codes, values, eq_mask, lt_mask, gt_mask, has_order, ne_bit in tables:
        rep_codes = np.asarray(codes, dtype=np.int64)[rep_rows]
        rep_ranks = None
        if has_order:
            # Rank distinct values by the exact Python order (no float
            # round-trip), then compare ranks instead of values.
            distinct = sorted(set(values[int(row)] for row in rep_rows))
            rank_of = {value: rank for rank, value in enumerate(distinct)}
            rep_ranks = np.asarray(
                [rank_of[values[int(row)]] for row in rep_rows], dtype=np.int64
            )
        attr_tables.append((rep_codes, rep_ranks, eq_mask, lt_mask, gt_mask, ne_bit))
    for i in range(m - 1):
        tail = slice(i + 1, m)
        forward = np.zeros(m - i - 1, dtype=np.int64)
        backward = np.zeros(m - i - 1, dtype=np.int64)
        for rep_codes, rep_ranks, eq_mask, lt_mask, gt_mask, ne_bit in attr_tables:
            equal = rep_codes[tail] == rep_codes[i]
            if rep_ranks is not None:
                less = rep_ranks[i] < rep_ranks[tail]  # values[i] < values[j]
                forward |= np.where(equal, eq_mask, np.where(less, lt_mask, gt_mask))
                backward |= np.where(equal, eq_mask, np.where(less, gt_mask, lt_mask))
            else:
                word = np.where(equal, eq_mask, ne_bit)
                forward |= word
                backward |= word
        weights = mults[i] * mults[tail]
        for masks in (forward, backward):
            uniques, inverse = np.unique(masks, return_inverse=True)
            sums = np.zeros(uniques.shape[0], dtype=np.int64)
            np.add.at(sums, inverse.reshape(-1), weights)
            for mask, weight in zip(uniques.tolist(), sums.tolist()):
                counts[mask] = counts.get(mask, 0) + weight
