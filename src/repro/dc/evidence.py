"""Evidence sets: the pair-level summary FastDC mines DCs from.

For every ordered tuple pair ``(t, s)`` the *evidence* is the set of
predicates of the space that the pair satisfies.  A candidate DC
``¬(p₁ ∧ … ∧ p_k)`` is valid on the instance iff **no** evidence
contains all of its predicates.  Discovery therefore never re-touches
tuples: it works on the (deduplicated, counted) evidence multiset.

Evidence sets are bitmasks over the predicate space, and we exploit two
classic economies:

* pairs are enumerated once per unordered pair — the evidence of
  ``(s, t)`` is derived from ``(t, s)`` by swapping the order-operator
  bits (equality bits are symmetric);
* duplicate evidences are counted, not stored, so the result is a
  ``{mask: multiplicity}`` map whose size is bounded by the predicate
  space, not by n².

Pair enumeration is O(n²) in the worst case, but the full-enumeration
path first collapses duplicate rows through the relation's cached
stripped partition over the predicate-space attributes: rows identical
on every attribute produce identical evidence against any third row, so
pairs are enumerated over one representative per duplicate class and
counted with multiplicities — O(m²) for m distinct rows.  ``max_pairs``
switches to deterministic sampling so discovery stays usable on the
benchmark relations — a standard move (the original FastDC also samples
for its approximate variant) that we surface honestly in the result
object.  Sampled pairs are drawn through a seeded full-period LCG
permutation of the pair index space, so the sample is spread across the
relation instead of concentrating on a prefix (row order *does* carry
signal on sorted inputs).

Candidate probing (``violations_of``/``is_valid``) runs on a lazily
built :class:`EvidenceIndex` — per-predicate postings over the distinct
masks — so each query costs a postings intersection instead of a scan
over every distinct evidence, and repeated queries for the same mask
are memoized.

This module is the *reference* engine; :mod:`repro.dc.engine` holds the
tiled block-vectorized builder and the sample-then-verify discovery
loop that scale the same computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isqrt
from typing import Iterator

from repro.relational.relation import Relation

from .predicates import PredicateSpace

__all__ = ["EvidenceIndex", "EvidenceSet", "build_evidence_set"]


class EvidenceIndex:
    """Per-predicate postings over the distinct evidence masks.

    ``masks[eid]``/``weights[eid]`` enumerate the distinct evidences in
    deterministic (ascending mask) order.  ``postings[p]`` is the
    posting list of predicate ``p`` — the evidence ids whose mask
    contains ``p`` — stored as a *bitset over evidence ids* (a Python
    bignum: bit ``eid`` set ⇔ ``p ∈ masks[eid]``), with its total
    multiplicity precomputed in ``posting_weights``.  A candidate DC's
    violating weight is then the weight of the intersection of its
    predicates' postings: one C-level ``&`` chain over
    O(distinct / 64) words plus a walk of the (typically tiny) result —
    instead of an O(distinct) scan per probe, which is what makes the
    mining search and the repair loops cheap on evidence-rich
    instances.

    ``probes``/``intersections`` count queries and actual intersection
    computations (the memoization tests pin the difference).
    """

    __slots__ = (
        "masks",
        "weights",
        "total_weight",
        "num_predicates",
        "postings",
        "posting_weights",
        "probes",
        "intersections",
        "_weights_array",
        "_memo",
    )

    def __init__(self, counts: dict[int, int], num_predicates: int) -> None:
        self.masks = sorted(counts)
        self.weights = [counts[mask] for mask in self.masks]
        self.total_weight = sum(self.weights)
        self.num_predicates = num_predicates
        postings = [0] * num_predicates
        posting_weights = [0] * num_predicates
        for eid, (mask, weight) in enumerate(zip(self.masks, self.weights)):
            eid_bit = 1 << eid
            probe = mask
            while probe:
                bit = probe & -probe
                pred = bit.bit_length() - 1
                postings[pred] |= eid_bit
                posting_weights[pred] += weight
                probe ^= bit
        self.postings = postings
        self.posting_weights = posting_weights
        self.probes = 0
        self.intersections = 0
        self._weights_array = None
        self._memo: dict[int, int] = {}

    def _weights_numpy(self):
        """The weights as a cached int64 array (numpy walks only)."""
        if self._weights_array is None:
            import numpy

            self._weights_array = numpy.asarray(self.weights, dtype=numpy.int64)
        return self._weights_array

    @property
    def num_distinct(self) -> int:
        """Number of distinct evidence masks indexed."""
        return len(self.masks)

    def _intersection(self, dc_mask: int) -> int:
        """Bitset of evidence ids containing every predicate bit."""
        self.intersections += 1
        inter = -1
        probe = dc_mask
        while probe:
            bit = probe & -probe
            inter &= self.postings[bit.bit_length() - 1]
            if not inter:
                return 0
            probe ^= bit
        return inter

    def _intersection_weight(self, inter: int, stop_above: int | None = None) -> int:
        """Total weight of the evidence ids set in ``inter``.

        Walks the bitset bytes-wise — O(distinct/8 + result) — instead
        of peeling bits off the bignum (which would rewrite the whole
        integer per bit).  On the numpy backend the walk is an
        ``unpackbits`` + masked sum.  ``stop_above`` early-exits the
        python walk once the running total exceeds it.
        """
        if not inter:
            return 0
        num = len(self.masks)
        data = inter.to_bytes((num + 7) // 8, "little")
        if stop_above is None:
            from repro.relational import kernels

            if kernels.active_backend_name() == "numpy":
                import numpy

                bits = numpy.unpackbits(
                    numpy.frombuffer(data, dtype=numpy.uint8), bitorder="little"
                )[:num]
                return int(self._weights_numpy()[bits.view(bool)].sum())
        weights = self.weights
        total = 0
        base = 0
        for byte in data:
            if byte:
                while byte:
                    low = byte & -byte
                    total += weights[base + low.bit_length() - 1]
                    byte ^= low
                if stop_above is not None and total > stop_above:
                    return total
            base += 8
        return total

    def violations_of(self, dc_mask: int) -> int:
        """Weight of the evidences containing *all* of ``dc_mask``."""
        self.probes += 1
        if dc_mask == 0:
            return self.total_weight
        if dc_mask & (dc_mask - 1) == 0:  # single predicate
            return self.posting_weights[dc_mask.bit_length() - 1]
        return self._intersection_weight(self._intersection(dc_mask))

    def is_valid(self, dc_mask: int, max_violations: int = 0) -> bool:
        """Whether the DC holds, tolerating ``max_violations`` pairs.

        The zero-tolerance case is a pure bitset emptiness test;
        with tolerance the weight walk early-exits at the budget.
        """
        self.probes += 1
        if dc_mask == 0:
            return self.total_weight <= max_violations
        if dc_mask & (dc_mask - 1) == 0:
            return self.posting_weights[dc_mask.bit_length() - 1] <= max_violations
        inter = self._intersection(dc_mask)
        if max_violations == 0:
            return not inter
        weight = self._intersection_weight(inter, stop_above=max_violations)
        return weight <= max_violations

    def cached_violations(self, dc_mask: int) -> int:
        """:meth:`violations_of`, memoized per mask.

        The memo lives on the index (bounded by the masks actually
        probed, freed with it) rather than in a process-global cache
        that would pin dead indexes.
        """
        cached = self._memo.get(dc_mask)
        if cached is None:
            cached = self._memo[dc_mask] = self.violations_of(dc_mask)
        return cached


@dataclass(frozen=True)
class EvidenceSet:
    """Deduplicated evidence masks with multiplicities.

    ``total_pairs`` counts the ordered pairs the masks summarize;
    ``sampled`` records whether pair enumeration was truncated (in
    which case mined DCs are valid on the sample, not provably on the
    full instance).
    """

    space: PredicateSpace
    counts: dict[int, int]
    total_pairs: int
    sampled: bool

    @property
    def num_distinct(self) -> int:
        """Number of distinct evidence masks."""
        return len(self.counts)

    @property
    def index(self) -> EvidenceIndex:
        """The postings index over the distinct masks (built lazily)."""
        cached = self.__dict__.get("_index")
        if cached is None:
            cached = EvidenceIndex(self.counts, self.space.size)
            object.__setattr__(self, "_index", cached)
        return cached

    def violations_of(self, dc_mask: int) -> int:
        """Ordered pairs that satisfy *all* predicates in ``dc_mask``.

        Zero means the DC is valid (on the summarized pairs).  Runs on
        the postings index, memoized per mask.
        """
        return self.index.cached_violations(dc_mask)

    def is_valid(self, dc_mask: int, max_violations: int = 0) -> bool:
        """Whether the DC holds, tolerating ``max_violations`` pairs."""
        return self.violations_of(dc_mask) <= max_violations


# ----------------------------------------------------------------------
# Deterministic pair sampling
# ----------------------------------------------------------------------
#: Seed of the sampling permutation (fixed: sampling is deterministic).
_SAMPLE_SEED = 0x51_7CC1_B727_220A_95


def _decode_pair(k: int, n: int) -> tuple[int, int]:
    """The ``k``-th unordered pair ``(i, j)``, ``i < j``, in the
    lexicographic enumeration over ``n`` rows (exact integer math)."""
    total = n * (n - 1) // 2
    r = total - k  # pairs from (i, i+1) to the end, inclusive
    q = (1 + isqrt(8 * r + 1)) // 2
    while q * (q - 1) // 2 < r:
        q += 1
    while (q - 1) * (q - 2) // 2 >= r:
        q -= 1
    i = n - q
    offset = i * (2 * n - i - 1) // 2  # pairs before row i
    return i, i + 1 + (k - offset)


def _sampled_pair_ids(total: int, budget: int) -> Iterator[int]:
    """``min(budget, total)`` distinct pair ids, deterministically.

    A full-period LCG over the next power-of-two modulus visits every
    residue exactly once; ids beyond ``total`` are skipped (at most
    half), yielding a seeded permutation prefix of ``range(total)`` —
    the sample is spread across the whole pair space, so sampled
    discovery stays unbiased on sorted inputs where a prefix of the
    enumeration would only ever see neighbouring rows.
    """
    wanted = min(budget, total)
    if wanted <= 0:
        return
    if wanted >= total:
        yield from range(total)
        return
    modulus = 1 << max(total - 1, 1).bit_length()
    multiplier = (0x9E37_79B9 * 4 + 1) % modulus or 1  # ≡ 1 (mod 4)
    increment = 0x3C6E_F372_FE94_F82B % modulus | 1  # odd
    state = _SAMPLE_SEED % modulus
    emitted = 0
    for _ in range(modulus):
        state = (multiplier * state + increment) % modulus
        if state < total:
            yield state
            emitted += 1
            if emitted >= wanted:
                return


# ----------------------------------------------------------------------
# Shared construction helpers (the tiled engine reuses these)
# ----------------------------------------------------------------------
def _attribute_tables(relation: Relation, space: PredicateSpace) -> list[tuple]:
    """Per-attribute ``(codes, values, eq_lane, lt_lane, gt_lane,
    ne_lane, has_order)`` tuples, in ``space.attributes`` order.

    ``values`` is ``None`` for attributes without order predicates
    (only code equality matters there).
    """
    lanes = space.comparison_lanes()
    tables = []
    for name in space.attributes:
        eq_lane, lt_lane, gt_lane, ne_lane, has_order = lanes[name]
        column = relation.column(name)
        tables.append(
            (
                column.codes,
                column.values() if has_order else None,
                eq_lane,
                lt_lane,
                gt_lane,
                ne_lane,
                has_order,
            )
        )
    return tables


def _collapse_duplicates(
    relation: Relation, attributes: tuple[str, ...]
) -> tuple[list[int], list[int], int]:
    """``(rep_rows, multiplicities, within_pairs)`` after collapsing
    rows identical on every predicate-space attribute.

    Representatives are sorted ascending; ``within_pairs`` counts the
    unordered pairs *inside* duplicate classes (their evidence is the
    all-equal lane on every attribute).
    """
    n = relation.num_rows
    duplicates = relation.stripped_partition(list(attributes))
    reps: list[tuple[int, int]] = []
    in_class = [False] * n
    within_pairs = 0
    for cls_rows in duplicates:
        size = len(cls_rows)
        reps.append((cls_rows[0], size))
        within_pairs += size * (size - 1) // 2
        for row in cls_rows:
            in_class[row] = True
    reps.extend((row, 1) for row in range(n) if not in_class[row])
    reps.sort()
    return [row for row, _ in reps], [mult for _, mult in reps], within_pairs


def _eq_all_lane(tables: list[tuple]) -> int:
    """The evidence mask of a pair of identical rows."""
    mask = 0
    for table in tables:
        mask |= table[2]
    return mask


def build_evidence_set(
    relation: Relation,
    space: PredicateSpace,
    max_pairs: int | None = None,
) -> EvidenceSet:
    """Compute the evidence multiset of ``relation`` under ``space``.

    ``max_pairs`` bounds the number of *unordered* pairs examined; the
    sampled pairs are drawn through a seeded permutation of the pair
    index space (deterministic across runs, spread across the relation).
    """
    tables = _attribute_tables(relation, space)

    n = relation.num_rows
    counts: dict[int, int] = {}
    total_unordered = n * (n - 1) // 2
    budget = max_pairs if max_pairs is not None else total_unordered

    if budget >= total_unordered and space.attributes:
        # Full enumeration: collapse duplicate rows.  Rows in the same
        # class of the all-attribute partition carry identical codes
        # (hence identical decoded values), so every pair involving
        # them is counted once per representative, with multiplicity.
        rep_rows, mults, within_pairs = _collapse_duplicates(
            relation, space.attributes
        )
        if within_pairs:
            # Both directions of an identical pair satisfy exactly the
            # equality-compatible predicates on every attribute.
            eq_all = _eq_all_lane(tables)
            counts[eq_all] = counts.get(eq_all, 0) + 2 * within_pairs
        reps = list(zip(rep_rows, mults))
        if _vectorizable(space, tables):
            _pairwise_masks_vectorized(tables, reps, counts)
        else:
            _pairwise_masks_reference(tables, reps, counts)
        return EvidenceSet(
            space=space,
            counts=counts,
            total_pairs=2 * total_unordered,
            sampled=False,
        )

    pairs_done = 0  # sampled path: permuted pair ids under a budget
    for k in _sampled_pair_ids(total_unordered, budget):
        i, j = _decode_pair(k, n)
        forward = 0
        backward = 0
        for codes, values, eq_lane, lt_lane, gt_lane, ne_lane, has_order in tables:
            if codes[i] == codes[j]:
                forward |= eq_lane
                backward |= eq_lane
            elif has_order:
                left, right = values[i], values[j]
                if left is not None and right is not None and left < right:
                    forward |= lt_lane
                    backward |= gt_lane
                else:
                    forward |= gt_lane
                    backward |= lt_lane
            else:
                forward |= ne_lane
                backward |= ne_lane
        counts[forward] = counts.get(forward, 0) + 1
        counts[backward] = counts.get(backward, 0) + 1
        pairs_done += 1
    return EvidenceSet(
        space=space,
        counts=counts,
        total_pairs=2 * pairs_done,
        sampled=pairs_done < total_unordered,
    )


def _pairwise_masks_reference(
    tables: list,
    reps: list[tuple[int, int]],
    counts: dict[int, int],
) -> None:
    """The reference pair loop: one mask pair per representative pair.

    Order comparisons involving NULL or NaN fall into the ``gt`` lane
    exactly as a direct ``<`` evaluates them (always false) — the same
    three-way semantics the block kernels implement.
    """
    for a in range(len(reps)):
        i, mult_i = reps[a]
        for b in range(a + 1, len(reps)):
            j, mult_j = reps[b]
            forward = 0
            backward = 0
            for codes, values, eq_lane, lt_lane, gt_lane, ne_lane, has_order in tables:
                if codes[i] == codes[j]:
                    forward |= eq_lane
                    backward |= eq_lane
                elif has_order:
                    left, right = values[i], values[j]
                    if left is not None and right is not None and left < right:
                        forward |= lt_lane
                        backward |= gt_lane
                    else:
                        forward |= gt_lane
                        backward |= lt_lane
                else:
                    forward |= ne_lane
                    backward |= ne_lane
            weight = mult_i * mult_j
            counts[forward] = counts.get(forward, 0) + weight
            counts[backward] = counts.get(backward, 0) + weight


def _vectorizable(space: PredicateSpace, tables: list) -> bool:
    """Whether the legacy single-word numpy pairwise sweep applies.

    Requires the numpy backend to be active, evidence masks that fit in
    a signed 64-bit lane, and NULL- and NaN-free columns under every
    order predicate (the rank comparison used here would total-order
    them).  The tiled engine (:mod:`repro.dc.engine`) has none of these
    restrictions — this path survives as the property-test oracle.
    """
    from repro.relational import kernels

    if kernels.active_backend_name() != "numpy":
        return False
    if space.size > 62:
        return False
    for codes, values, _eq, _lt, _gt, _ne, has_order in tables:
        if not has_order:
            continue
        if any(code < 0 for code in codes):
            return False
        if any(value != value for value in values):  # NaN
            return False
    return True


def _pairwise_masks_vectorized(
    tables: list,
    reps: list[tuple[int, int]],
    counts: dict[int, int],
) -> None:
    """Pairwise evidence via predicate masks on int64 lanes.

    For each representative row the masks against every later
    representative are built in one shot: per attribute, an equality
    mask in code space plus (for ordered attributes) a rank comparison,
    folded into forward/backward evidence words with bitwise selects.
    Identical-by-construction to the reference loop, O(m²/SIMD) instead
    of O(m² · |attrs|) interpreted steps.
    """
    import numpy as np

    m = len(reps)
    if m < 2:
        return
    rep_rows = np.asarray([row for row, _mult in reps], dtype=np.int64)
    mults = np.asarray([mult for _row, mult in reps], dtype=np.int64)
    attr_tables = []
    for codes, values, eq_lane, lt_lane, gt_lane, ne_lane, _has_order in tables:
        rep_codes = np.asarray(codes, dtype=np.int64)[rep_rows]
        rep_ranks = None
        if values is not None:
            # Rank distinct values by the exact Python order (no float
            # round-trip), then compare ranks instead of values.
            distinct = sorted(set(values[int(row)] for row in rep_rows))
            rank_of = {value: rank for rank, value in enumerate(distinct)}
            rep_ranks = np.asarray(
                [rank_of[values[int(row)]] for row in rep_rows], dtype=np.int64
            )
        attr_tables.append((rep_codes, rep_ranks, eq_lane, lt_lane, gt_lane, ne_lane))
    for i in range(m - 1):
        tail = slice(i + 1, m)
        forward = np.zeros(m - i - 1, dtype=np.int64)
        backward = np.zeros(m - i - 1, dtype=np.int64)
        for rep_codes, rep_ranks, eq_lane, lt_lane, gt_lane, ne_lane in attr_tables:
            equal = rep_codes[tail] == rep_codes[i]
            if rep_ranks is not None:
                less = rep_ranks[i] < rep_ranks[tail]  # values[i] < values[j]
                forward |= np.where(equal, eq_lane, np.where(less, lt_lane, gt_lane))
                backward |= np.where(equal, eq_lane, np.where(less, gt_lane, lt_lane))
            else:
                word = np.where(equal, eq_lane, ne_lane)
                forward |= word
                backward |= word
        weights = mults[i] * mults[tail]
        for masks in (forward, backward):
            uniques, inverse = np.unique(masks, return_inverse=True)
            sums = np.zeros(uniques.shape[0], dtype=np.int64)
            np.add.at(sums, inverse.reshape(-1), weights)
            for mask, weight in zip(uniques.tolist(), sums.tolist()):
                counts[mask] = counts.get(mask, 0) + weight
