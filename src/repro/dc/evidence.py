"""Evidence sets: the pair-level summary FastDC mines DCs from.

For every ordered tuple pair ``(t, s)`` the *evidence* is the set of
predicates of the space that the pair satisfies.  A candidate DC
``¬(p₁ ∧ … ∧ p_k)`` is valid on the instance iff **no** evidence
contains all of its predicates.  Discovery therefore never re-touches
tuples: it works on the (deduplicated, counted) evidence multiset.

Evidence sets are bitmasks over the predicate space, and we exploit two
classic economies:

* pairs are enumerated once per unordered pair — the evidence of
  ``(s, t)`` is derived from ``(t, s)`` by swapping the order-operator
  bits (equality bits are symmetric);
* duplicate evidences are counted, not stored, so the result is a
  ``{mask: multiplicity}`` map whose size is bounded by the predicate
  space, not by n².

Pair enumeration is O(n²) in the worst case, but the full-enumeration
path first collapses duplicate rows through the relation's cached
stripped partition over the predicate-space attributes: rows identical
on every attribute produce identical evidence against any third row, so
pairs are enumerated over one representative per duplicate class and
counted with multiplicities — O(m²) for m distinct rows.  ``max_pairs``
switches to deterministic sampling so discovery stays usable on the
benchmark relations — a standard move (the original FastDC also samples
for its approximate variant) that we surface honestly in the result
object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.relation import Relation

from .model import Operator
from .predicates import PredicateSpace

__all__ = ["EvidenceSet", "build_evidence_set"]


@dataclass(frozen=True)
class EvidenceSet:
    """Deduplicated evidence masks with multiplicities.

    ``total_pairs`` counts the ordered pairs the masks summarize;
    ``sampled`` records whether pair enumeration was truncated (in
    which case mined DCs are valid on the sample, not provably on the
    full instance).
    """

    space: PredicateSpace
    counts: dict[int, int]
    total_pairs: int
    sampled: bool

    @property
    def num_distinct(self) -> int:
        """Number of distinct evidence masks."""
        return len(self.counts)

    def violations_of(self, dc_mask: int) -> int:
        """Ordered pairs that satisfy *all* predicates in ``dc_mask``.

        Zero means the DC is valid (on the summarized pairs).
        """
        return sum(
            count
            for mask, count in self.counts.items()
            if mask & dc_mask == dc_mask
        )

    def is_valid(self, dc_mask: int, max_violations: int = 0) -> bool:
        """Whether the DC holds, tolerating ``max_violations`` pairs."""
        return self.violations_of(dc_mask) <= max_violations


def build_evidence_set(
    relation: Relation,
    space: PredicateSpace,
    max_pairs: int | None = None,
) -> EvidenceSet:
    """Compute the evidence multiset of ``relation`` under ``space``.

    ``max_pairs`` bounds the number of *unordered* pairs examined; rows
    are taken in order (deterministic), which for our generators is
    equivalent to random sampling because row order carries no signal.
    """
    eq_bits: list[tuple[int, int]] = []  # (column position, bit) per EQ pred
    masks_by_attr: dict[str, dict[Operator, int]] = {}
    for i, pred in enumerate(space.predicates):
        masks_by_attr.setdefault(pred.attribute, {})[pred.operator] = 1 << i

    attributes = space.attributes
    columns = {name: relation.column(name) for name in attributes}
    code_columns = {name: columns[name].codes for name in attributes}
    # Decoded values are needed only for order comparisons.
    ordered_attrs = [
        name
        for name in attributes
        if any(op.is_order for op in masks_by_attr[name])
    ]
    value_columns = {name: columns[name].values() for name in ordered_attrs}

    n = relation.num_rows
    counts: dict[int, int] = {}
    pairs_done = 0
    sampled = False
    total_unordered = n * (n - 1) // 2
    budget = max_pairs if max_pairs is not None else total_unordered

    # Precompute per-attribute forward/backward bit tables so the inner
    # loop is a few dict-free integer ops per attribute.
    tables = []
    for name in attributes:
        ops = masks_by_attr[name]
        eq_bit = ops.get(Operator.EQ, 0)
        ne_bit = ops.get(Operator.NE, 0)
        lt_bit = ops.get(Operator.LT, 0)
        le_bit = ops.get(Operator.LE, 0)
        gt_bit = ops.get(Operator.GT, 0)
        ge_bit = ops.get(Operator.GE, 0)
        has_order = name in value_columns
        tables.append(
            (
                code_columns[name],
                value_columns.get(name),
                eq_bit | le_bit | ge_bit,          # mask when t.A = s.A
                ne_bit | lt_bit | le_bit,          # forward mask when t.A < s.A
                ne_bit | gt_bit | ge_bit,          # forward mask when t.A > s.A
                has_order,
                ne_bit,
            )
        )

    if budget >= total_unordered and attributes:
        # Full enumeration: collapse duplicate rows.  Rows in the same
        # class of the all-attribute partition carry identical codes
        # (hence identical decoded values), so every pair involving
        # them is counted once per representative, with multiplicity.
        duplicates = relation.stripped_partition(list(attributes))
        eq_all = 0
        for table in tables:
            eq_all |= table[2]
        reps: list[tuple[int, int]] = []  # (representative row, class size)
        in_class = [False] * n
        within_pairs = 0
        for cls_rows in duplicates:
            size = len(cls_rows)
            reps.append((cls_rows[0], size))
            within_pairs += size * (size - 1) // 2
            for row in cls_rows:
                in_class[row] = True
        reps.extend((row, 1) for row in range(n) if not in_class[row])
        reps.sort()
        if within_pairs:
            # Both directions of an identical pair satisfy exactly the
            # equality-compatible predicates on every attribute.
            counts[eq_all] = counts.get(eq_all, 0) + 2 * within_pairs
        for a in range(len(reps)):
            i, mult_i = reps[a]
            for b in range(a + 1, len(reps)):
                j, mult_j = reps[b]
                forward = 0
                backward = 0
                for codes, values, eq_mask, lt_mask, gt_mask, has_order, ne_bit in tables:
                    if codes[i] == codes[j]:
                        forward |= eq_mask
                        backward |= eq_mask
                    elif has_order:
                        if values[i] < values[j]:
                            forward |= lt_mask
                            backward |= gt_mask
                        else:
                            forward |= gt_mask
                            backward |= lt_mask
                    else:
                        forward |= ne_bit
                        backward |= ne_bit
                weight = mult_i * mult_j
                counts[forward] = counts.get(forward, 0) + weight
                counts[backward] = counts.get(backward, 0) + weight
        return EvidenceSet(
            space=space,
            counts=counts,
            total_pairs=2 * total_unordered,
            sampled=False,
        )

    done = False
    for i in range(n):
        if done:
            break
        for j in range(i + 1, n):
            if pairs_done >= budget:
                sampled = pairs_done < total_unordered
                done = True
                break
            forward = 0
            backward = 0
            for codes, values, eq_mask, lt_mask, gt_mask, has_order, ne_bit in tables:
                if codes[i] == codes[j]:
                    forward |= eq_mask
                    backward |= eq_mask
                elif has_order:
                    if values[i] < values[j]:
                        forward |= lt_mask
                        backward |= gt_mask
                    else:
                        forward |= gt_mask
                        backward |= lt_mask
                else:
                    forward |= ne_bit
                    backward |= ne_bit
            counts[forward] = counts.get(forward, 0) + 1
            counts[backward] = counts.get(backward, 0) + 1
            pairs_done += 1
    return EvidenceSet(
        space=space,
        counts=counts,
        total_pairs=2 * pairs_done,
        sampled=sampled,
    )
