"""FD ↔ DC translation (the two constraint views of the same rule).

An FD ``X → A`` denies "agree on X, disagree on A"::

    ¬ ( ⋀_{B ∈ X} t.B = s.B  ∧  t.A ≠ s.A )

so it maps to a DC with one equality per antecedent attribute and one
inequality on the consequent.  The inverse direction recognizes exactly
that shape among mined DCs — the lookup the "discover then relax"
strategy needs to find FD-expressible constraints in discovery output.
"""

from __future__ import annotations

from repro.fd.fd import FDSyntaxError, FunctionalDependency

from .model import DCError, DenialConstraint, Operator, Predicate

__all__ = ["fd_to_dc", "dc_to_fd", "fds_among"]


def fd_to_dc(fd: FunctionalDependency) -> DenialConstraint:
    """The denial-constraint form of (single-consequent) ``fd``."""
    if not fd.is_single_consequent:
        raise DCError(
            f"decompose {fd} first: only single-consequent FDs map to one DC"
        )
    predicates = [Predicate(attr, Operator.EQ) for attr in fd.antecedent]
    predicates.append(Predicate(fd.consequent[0], Operator.NE))
    return DenialConstraint(predicates)


def dc_to_fd(dc: DenialConstraint) -> FunctionalDependency | None:
    """The FD expressed by ``dc``, or ``None`` if it is not FD-shaped.

    FD-shaped means: every predicate is an equality except exactly one
    inequality (the consequent), and at least one equality exists (an
    FD antecedent cannot be empty).
    """
    equalities: list[str] = []
    inequalities: list[str] = []
    for pred in dc.predicates:
        if pred.operator is Operator.EQ:
            equalities.append(pred.attribute)
        elif pred.operator is Operator.NE:
            inequalities.append(pred.attribute)
        else:
            return None
    if len(inequalities) != 1 or not equalities:
        return None
    try:
        return FunctionalDependency(tuple(equalities), (inequalities[0],))
    except FDSyntaxError:  # pragma: no cover - the DC ctor forbids this shape
        return None


def fds_among(constraints: list[DenialConstraint]) -> list[FunctionalDependency]:
    """All FD-shaped constraints of a mined set, as FDs."""
    found: list[FunctionalDependency] = []
    for dc in constraints:
        fd = dc_to_fd(dc)
        if fd is not None:
            found.append(fd)
    return found
