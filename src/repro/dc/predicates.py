"""The predicate space: which predicates discovery may combine.

FastDC first fixes a finite *predicate space* P for the relation, then
searches for minimal subsets of P whose conjunction never holds on a
tuple pair.  We build P per attribute from the schema type:

* every attribute contributes ``=`` and ``≠``;
* orderable (integer/float) attributes additionally contribute
  ``<, ≤, >, ≥`` — unless ``order_predicates=False`` narrows the space
  to the FD-expressible fragment, which is the honest comparator for
  the paper's use case (FD repair) and keeps evidence sets small.

NULL-bearing attributes are excluded by default for consistency with
the FD layer (paper footnote 1): a NULL compares as *unknown*, and the
simplest sound treatment is to keep such attributes out of the mined
constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.relation import Relation
from repro.relational.types import AttributeType

from .model import Operator, Predicate

__all__ = ["PredicateSpace", "build_predicate_space"]

_ORDERED_TYPES = (AttributeType.INTEGER, AttributeType.FLOAT)


@dataclass(frozen=True)
class PredicateSpace:
    """An indexed, finite set of predicates over one relation.

    Predicates are addressed by position so evidence sets can be bit
    masks: bit ``i`` of an evidence mask says predicate ``i`` holds for
    the pair.  ``index_of`` and ``mask_of`` translate between the two
    views.
    """

    relation_name: str
    predicates: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_index",
            {pred: i for i, pred in enumerate(self.predicates)},
        )

    @property
    def size(self) -> int:
        """Number of predicates in the space."""
        return len(self.predicates)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes covered, in first-appearance order."""
        seen: list[str] = []
        for pred in self.predicates:
            if pred.attribute not in seen:
                seen.append(pred.attribute)
        return tuple(seen)

    def index_of(self, predicate: Predicate) -> int:
        """Bit position of ``predicate`` (KeyError if absent)."""
        return self._index[predicate]

    def mask_of(self, predicates: tuple[Predicate, ...] | list[Predicate]) -> int:
        """Bitmask with one bit set per predicate."""
        mask = 0
        for pred in predicates:
            mask |= 1 << self._index[pred]
        return mask

    def predicates_of(self, mask: int) -> tuple[Predicate, ...]:
        """Inverse of :meth:`mask_of`."""
        return tuple(
            pred for i, pred in enumerate(self.predicates) if mask >> i & 1
        )

    def comparison_lanes(self) -> dict[str, tuple[int, int, int, int, bool]]:
        """Per attribute, the evidence bits of each three-way outcome.

        Evidence construction classifies every pair into one of three
        *lanes* per attribute — ``t.A = s.A``, ``t.A < s.A`` or
        ``t.A > s.A`` — and each lane satisfies a fixed subset of the
        attribute's predicates.  Returns, per attribute,
        ``(eq_lane, lt_lane, gt_lane, ne_lane, has_order)``:

        * ``eq_lane`` — bits satisfied when the values are equal
          (``=``, ``≤``, ``≥``);
        * ``lt_lane`` / ``gt_lane`` — bits satisfied when the left
          value is strictly smaller / larger (``≠`` plus the matching
          strict and non-strict order bits);
        * ``ne_lane`` — the bits for unordered attributes' "different"
          lane (just ``≠``);
        * ``has_order`` — whether any order predicate is in the space
          (when false only the ``eq``/``ne`` lanes can occur).
        """
        by_attr: dict[str, dict[Operator, int]] = {}
        for i, pred in enumerate(self.predicates):
            by_attr.setdefault(pred.attribute, {})[pred.operator] = 1 << i
        lanes: dict[str, tuple[int, int, int, int, bool]] = {}
        for attribute, ops in by_attr.items():
            eq_bit = ops.get(Operator.EQ, 0)
            ne_bit = ops.get(Operator.NE, 0)
            lt_bit = ops.get(Operator.LT, 0)
            le_bit = ops.get(Operator.LE, 0)
            gt_bit = ops.get(Operator.GT, 0)
            ge_bit = ops.get(Operator.GE, 0)
            lanes[attribute] = (
                eq_bit | le_bit | ge_bit,
                ne_bit | lt_bit | le_bit,
                ne_bit | gt_bit | ge_bit,
                ne_bit,
                any(op.is_order for op in ops),
            )
        return lanes

    def equality(self, attribute: str) -> Predicate:
        """The ``t.A = s.A`` predicate (KeyError if not in the space)."""
        pred = Predicate(attribute, Operator.EQ)
        self.index_of(pred)
        return pred

    def inequality(self, attribute: str) -> Predicate:
        """The ``t.A ≠ s.A`` predicate (KeyError if not in the space)."""
        pred = Predicate(attribute, Operator.NE)
        self.index_of(pred)
        return pred


def build_predicate_space(
    relation: Relation,
    attributes: list[str] | None = None,
    order_predicates: bool = True,
    include_nullable: bool = False,
) -> PredicateSpace:
    """The predicate space of ``relation``.

    ``attributes`` restricts the space (default: all eligible
    attributes); ``order_predicates=False`` keeps only =/≠, the
    FD-expressible fragment.
    """
    if attributes is None:
        pool = list(
            relation.attribute_names
            if include_nullable
            else relation.non_null_attributes()
        )
    else:
        pool = list(relation.schema.validate_names(attributes))
        if not include_nullable:
            pool = [a for a in pool if not relation.column(a).has_nulls]
    predicates: list[Predicate] = []
    for name in pool:
        predicates.append(Predicate(name, Operator.EQ))
        predicates.append(Predicate(name, Operator.NE))
        attr_type = relation.schema.attribute(name).type
        has_nulls = relation.column(name).has_nulls
        # Order predicates are undefined against NULL, so nullable
        # columns only get the =/≠ pair even when admitted via
        # include_nullable.
        if order_predicates and not has_nulls and attr_type in _ORDERED_TYPES:
            for op in (Operator.LT, Operator.LE, Operator.GT, Operator.GE):
                predicates.append(Predicate(name, op))
    return PredicateSpace(relation.name, tuple(predicates))
