"""Minimal-cover search: mine all minimal valid DCs from evidence sets.

A DC ``¬(p₁ ∧ … ∧ p_k)`` is valid iff no evidence mask contains all of
``{p₁…p_k}`` — equivalently, the predicate set must *hit* the
complement of every evidence: for each evidence ``e`` at least one
chosen predicate must lie outside ``e``.  Mining all minimal valid DCs
is therefore the classic minimal-hitting-set enumeration over the
complements of the evidences (FastDC's "minimal set covers"), which we
implement as a depth-first search with three prunings:

* **branch ordering** — predicates are tried in descending coverage
  (how many still-unhit evidences they hit), the standard greedy order;
* **minimality** — a candidate whose proper subset already covers
  everything is discarded against the running result set;
* **triviality** — predicate pairs on the same attribute whose
  conjunction is unsatisfiable (``=`` with ``≠``, ``<`` with ``≥``…)
  never co-occur in a branch.

``max_violations`` switches to *approximate* DCs: up to that many
(ordered) pairs may violate the constraint, the analogue of the
paper's AFD notion at the DC level.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .evidence import EvidenceSet
from .model import DCError, DenialConstraint

__all__ = ["DCDiscoveryResult", "mine_denial_constraints"]


@dataclass
class DCDiscoveryResult:
    """All minimal DCs found, plus search accounting."""

    constraints: list[DenialConstraint] = field(default_factory=list)
    evidence_pairs: int = 0
    distinct_evidences: int = 0
    branches_explored: int = 0
    sampled: bool = False
    elapsed_seconds: float = 0.0

    @property
    def num_constraints(self) -> int:
        """Number of minimal DCs mined."""
        return len(self.constraints)

    def with_attributes(self, attributes: set[str]) -> list[DenialConstraint]:
        """Mined DCs whose attribute set is contained in ``attributes``."""
        return [
            dc for dc in self.constraints if dc.attributes <= frozenset(attributes)
        ]


def mine_denial_constraints(
    evidence: EvidenceSet,
    max_size: int = 4,
    max_violations: int = 0,
    max_constraints: int | None = None,
) -> DCDiscoveryResult:
    """Enumerate minimal valid DCs of at most ``max_size`` predicates.

    ``max_violations > 0`` mines approximate DCs.  ``max_constraints``
    caps the output (the search stops once reached) — discovery output
    is exponential in the worst case, which is exactly the paper's
    §2 impracticality argument.
    """
    if max_size < 1:
        raise DCError("max_size must be >= 1")
    start = time.perf_counter()
    space = evidence.space
    num_preds = space.size
    result = DCDiscoveryResult(
        evidence_pairs=evidence.total_pairs,
        distinct_evidences=evidence.num_distinct,
        sampled=evidence.sampled,
    )

    # An evidence is "hit" by predicate p when p ∉ e. With tolerance,
    # evidences whose total multiplicity can be absorbed by the budget
    # participate in a weighted variant handled below.  All weight
    # queries run on the postings index: a candidate's violating weight
    # is the intersection of its predicates' postings (O(k · smallest
    # posting)), not a scan over every distinct evidence.
    index = evidence.index
    full_mask = (1 << num_preds) - 1

    # Per-predicate conflict masks: bits of predicates that cannot
    # co-occur with it in a satisfiable conjunction.
    conflict = [0] * num_preds
    for i, pred in enumerate(space.predicates):
        for j, other in enumerate(space.predicates):
            if i == j or pred.attribute != other.attribute:
                continue
            if pred.operator.negation is other.operator:
                conflict[i] |= 1 << j

    found_masks: list[int] = []

    def already_covered(mask: int) -> bool:
        return any(prev & mask == prev for prev in found_masks)

    def violating_weight(dc_mask: int) -> int:
        return index.violations_of(dc_mask)

    def search(chosen_mask: int, chosen_count: int, start_pred: int) -> None:
        if max_constraints is not None and len(found_masks) >= max_constraints:
            return
        result.branches_explored += 1
        chosen_weight = violating_weight(chosen_mask) if chosen_count else None
        if chosen_count and chosen_weight <= max_violations:
            if not already_covered(chosen_mask):
                # Check proper subsets: drop any predicate and the DC
                # must become invalid, else the candidate is non-minimal.
                minimal = True
                probe = chosen_mask
                while probe:
                    bit = probe & -probe
                    if violating_weight(chosen_mask ^ bit) <= max_violations:
                        minimal = False
                        break
                    probe ^= bit
                if minimal:
                    found_masks.append(chosen_mask)
                    result.constraints.append(
                        DenialConstraint(space.predicates_of(chosen_mask))
                    )
            return
        if chosen_count >= max_size:
            return
        # Predicates still eligible: after start_pred, not conflicting,
        # not already chosen.
        banned = chosen_mask
        probe = chosen_mask
        while probe:
            bit = probe & -probe
            banned |= conflict[bit.bit_length() - 1]
            probe ^= bit
        candidates = [
            p
            for p in range(start_pred, num_preds)
            if not (banned >> p) & 1
        ]
        # Branch order: predicates hitting the most currently-violating
        # weight first (steepest descent toward validity).  p's hit
        # weight is exactly the violating weight its addition removes.
        still_weight = (
            chosen_weight if chosen_weight is not None else violating_weight(0)
        )

        def coverage(p: int) -> int:
            return still_weight - violating_weight(chosen_mask | (1 << p))

        # NOTE: a predicate is *useful* only if adding it removes some
        # violating weight; useless predicates can never make a minimal DC.
        scored = [(coverage(p), p) for p in candidates]
        scored.sort(key=lambda item: (-item[0], item[1]))
        for cov, p in scored:
            if cov == 0 and max_violations == 0:
                continue
            new_mask = chosen_mask | (1 << p)
            if already_covered(new_mask):
                continue
            search(new_mask, chosen_count + 1, p + 1)
            if max_constraints is not None and len(found_masks) >= max_constraints:
                return

    if full_mask:
        search(0, 0, 0)
    result.elapsed_seconds = time.perf_counter() - start
    return result
