"""Denial constraints: the constraint class of the paper's [16] comparator.

Section 2 discuses Chu, Ilyas & Papotti's *Discovering Denial
Constraints* (PVLDB 2013) as the alternative to FD evolution: mine
every constraint that holds on the instance, then "relax" the
designer's obsolete constraints against the mined set.  The paper
argues this is "rather impractical"; this package makes the argument
executable by implementing the constraint class and its discovery.

A denial constraint (DC) forbids a combination of predicates over a
pair of tuples::

    ∀ t, s ∈ r :  ¬ (p₁ ∧ p₂ ∧ … ∧ p_k)

where each :class:`Predicate` compares one attribute across the two
tuples (``t.A op s.A``) with an operator drawn from
{=, ≠, <, ≤, >, ≥}.  Functional dependencies are the special case

    X → A   ≡   ¬ ( ⋀_{B ∈ X} t.B = s.B  ∧  t.A ≠ s.A )

so every mined FD appears as a DC whose predicates are all equalities
plus one inequality; :func:`repro.dc.bridge.dc_to_fd` recognizes that
shape.
"""

from __future__ import annotations

import enum
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.relational.errors import ReproError

__all__ = ["Operator", "Predicate", "DenialConstraint", "DCError"]

_PREDICATE_RE = re.compile(
    r"^\s*t\.(?P<left>\w+)\s*(?P<op>!=|<=|>=|=|<|>)\s*s\.(?P<right>\w+)\s*$"
)


class DCError(ReproError):
    """A structural problem with a denial constraint."""


class Operator(enum.Enum):
    """Comparison operators between ``t.A`` and ``s.A``.

    ``EQ``/``NE`` apply to every attribute type; the four order
    operators only to orderable (numeric) attributes, mirroring the
    predicate-space restriction of the original FastDC.
    """

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def negation(self) -> "Operator":
        """The operator satisfied exactly when this one is not."""
        return _NEGATIONS[self]

    @property
    def is_order(self) -> bool:
        """Whether the operator requires an ordered domain."""
        return self in (Operator.LT, Operator.LE, Operator.GT, Operator.GE)

    def evaluate(self, left: Any, right: Any) -> bool:
        """Apply the operator to two concrete values (no NULLs)."""
        if self is Operator.EQ:
            return left == right
        if self is Operator.NE:
            return left != right
        if self is Operator.LT:
            return left < right
        if self is Operator.LE:
            return left <= right
        if self is Operator.GT:
            return left > right
        return left >= right


_NEGATIONS = {
    Operator.EQ: Operator.NE,
    Operator.NE: Operator.EQ,
    Operator.LT: Operator.GE,
    Operator.LE: Operator.GT,
    Operator.GT: Operator.LE,
    Operator.GE: Operator.LT,
}


@dataclass(frozen=True)
class Predicate:
    """``t.attribute  op  s.attribute`` over an (ordered) tuple pair.

    Only single-attribute, same-attribute predicates are modeled — the
    fragment FastDC calls *homogeneous* and the only one needed to
    express FDs and their repairs.
    """

    attribute: str
    operator: Operator

    def evaluate(self, left_row: dict[str, Any], right_row: dict[str, Any]) -> bool:
        """Whether the predicate holds for the pair ``(t, s)``."""
        return self.operator.evaluate(
            left_row[self.attribute], right_row[self.attribute]
        )

    @property
    def negation(self) -> "Predicate":
        """The complementary predicate on the same attribute."""
        return Predicate(self.attribute, self.operator.negation)

    def __str__(self) -> str:
        return f"t.{self.attribute} {self.operator.value} s.{self.attribute}"


class DenialConstraint:
    """``¬(p₁ ∧ … ∧ p_k)``: at most k−1 of the predicates may co-hold.

    Predicates are kept sorted (attribute, operator) so equality and
    hashing are structural and printouts are deterministic.
    """

    __slots__ = ("_predicates",)

    def __init__(self, predicates: Iterable[Predicate]) -> None:
        items = sorted(
            set(predicates), key=lambda p: (p.attribute, p.operator.value)
        )
        if not items:
            raise DCError("a denial constraint needs at least one predicate")
        by_attr: dict[str, list[Predicate]] = {}
        for pred in items:
            by_attr.setdefault(pred.attribute, []).append(pred)
        for attr, preds in by_attr.items():
            ops = {p.operator for p in preds}
            for op in ops:
                if op.negation in ops:
                    raise DCError(
                        f"contradictory predicates on {attr!r}: the constraint "
                        "would be trivially satisfied"
                    )
        self._predicates = tuple(items)

    @classmethod
    def parse(cls, text: str) -> "DenialConstraint":
        """Parse the :meth:`__str__` format, e.g.
        ``"not(t.A = s.A and t.B != s.B)"`` (case-insensitive ``not``/
        ``and``, outer parentheses required)."""
        cleaned = text.strip()
        match = re.match(r"^not\s*\((?P<body>.*)\)\s*$", cleaned, re.IGNORECASE)
        if match is None:
            raise DCError(f"expected 'not( ... )' around the conjunction: {text!r}")
        predicates: list[Predicate] = []
        for part in re.split(r"\band\b", match.group("body"), flags=re.IGNORECASE):
            pred_match = _PREDICATE_RE.match(part)
            if pred_match is None:
                raise DCError(f"cannot parse predicate {part.strip()!r}")
            left = pred_match.group("left")
            right = pred_match.group("right")
            if left != right:
                raise DCError(
                    f"only same-attribute predicates are supported: "
                    f"t.{left} vs s.{right}"
                )
            predicates.append(Predicate(left, Operator(pred_match.group("op"))))
        return cls(predicates)

    @property
    def predicates(self) -> tuple[Predicate, ...]:
        """The conjuncts, in canonical order."""
        return self._predicates

    @property
    def size(self) -> int:
        """Number of predicates."""
        return len(self._predicates)

    @property
    def attributes(self) -> frozenset[str]:
        """All attributes mentioned by the constraint."""
        return frozenset(p.attribute for p in self._predicates)

    def is_satisfied_by_pair(
        self, left_row: dict[str, Any], right_row: dict[str, Any]
    ) -> bool:
        """Whether the *constraint* holds for one ordered pair.

        The constraint is violated exactly when every predicate holds.
        """
        return not all(p.evaluate(left_row, right_row) for p in self._predicates)

    def violations(
        self, rows: Sequence[dict[str, Any]], limit: int | None = None
    ) -> list[tuple[int, int]]:
        """Ordered index pairs ``(i, j)``, ``i ≠ j``, violating the DC.

        Quadratic by definition of the constraint class; intended for
        tests and small designer-facing reports.  Discovery uses the
        evidence-set machinery instead.
        """
        found: list[tuple[int, int]] = []
        for i, left in enumerate(rows):
            for j, right in enumerate(rows):
                if i == j:
                    continue
                if not self.is_satisfied_by_pair(left, right):
                    found.append((i, j))
                    if limit is not None and len(found) >= limit:
                        return found
        return found

    def implies(self, other: "DenialConstraint") -> bool:
        """Syntactic implication: a subset of conjuncts denies more pairs.

        If this DC's predicates are a subset of ``other``'s, every pair
        violating ``other`` also violates this DC, so this DC is the
        stronger (more general) constraint and ``other`` is redundant.
        """
        return set(self._predicates) <= set(other._predicates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DenialConstraint):
            return NotImplemented
        return self._predicates == other._predicates

    def __hash__(self) -> int:
        return hash(self._predicates)

    def __repr__(self) -> str:
        return f"DenialConstraint({str(self)!r})"

    def __str__(self) -> str:
        body = " and ".join(str(p) for p in self._predicates)
        return f"not({body})"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-friendly dict."""
        return {
            "predicates": [
                {"attribute": p.attribute, "operator": p.operator.value}
                for p in self._predicates
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DenialConstraint":
        """Inverse of :meth:`to_dict`."""
        return cls(
            Predicate(item["attribute"], Operator(item["operator"]))
            for item in data["predicates"]
        )
