"""CB-style repair for denial constraints (the paper's §7 future work).

The conclusion announces the intent "to extend the method to other
kinds of constraints"; denial constraints are the natural next target
because the CB repair move transfers directly.  An FD is repaired by
*adding antecedent attributes*; in DC form that is exactly *adding a
predicate to the conjunction* — a DC with more conjuncts denies fewer
pairs, just as an FD with a wider antecedent constrains fewer class
pairs.  (Removing predicates can never repair a DC, mirroring the
paper's §1 argument that deleting antecedent attributes cannot repair
an FD.)

The measures also transfer:

* **DC confidence** — the fraction of (ordered) tuple pairs that
  satisfy the constraint; 1 ⇔ the DC holds.  For FD-shaped DCs this is
  a pairwise analogue of the paper's confidence: both are 1 exactly on
  satisfied constraints, and both degrade as violations accumulate.
* **candidate ranking** — each candidate predicate is scored by the
  confidence of the extended DC (primary, like §4.2) and by its
  *specificity* — how many satisfied pairs the new predicate knocks out
  beyond the violating ones (secondary, ascending).  A hyper-selective
  predicate repairs anything but trivializes the constraint, the exact
  analogue of the UNIQUE-attribute pathology the goodness coefficient
  guards against (§3).

Everything runs on the bitmask evidence multiset, so repairing a DC
costs a handful of popcount passes — the same "only count, never touch
tuples" economy the paper claims for CB over EB.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .evidence import EvidenceSet
from .model import DCError, DenialConstraint, Predicate

__all__ = [
    "dc_confidence",
    "DCCandidate",
    "DCRepairResult",
    "extend_dc_by_one",
    "repair_dc",
]


def dc_confidence(evidence: EvidenceSet, dc: DenialConstraint) -> float:
    """Fraction of summarized pairs satisfying ``dc`` (1 ⇔ valid)."""
    if not evidence.total_pairs:
        return 1.0
    mask = evidence.space.mask_of(dc.predicates)
    return 1.0 - evidence.violations_of(mask) / evidence.total_pairs


@dataclass(frozen=True)
class DCCandidate:
    """One candidate extension ``dc ∧ p`` with its measures."""

    dc: DenialConstraint
    added: tuple[Predicate, ...]
    confidence: float
    collateral: int  #: satisfied pairs the new predicates additionally exempt

    @property
    def is_exact(self) -> bool:
        """Whether the extended DC holds on the summarized pairs."""
        return self.confidence >= 1.0

    @property
    def rank_key(self) -> tuple:
        """Confidence descending, collateral ascending, then text."""
        return (-self.confidence, self.collateral, str(self.dc))

    def __str__(self) -> str:
        extra = " and ".join(str(p) for p in self.added)
        return f"{self.dc} (+{extra}; c={self.confidence:.4g}, spill={self.collateral})"


@dataclass
class DCRepairResult:
    """Outcome of one DC repair search."""

    base: DenialConstraint
    base_confidence: float
    repairs: list[DCCandidate] = field(default_factory=list)
    expanded: int = 0
    elapsed_seconds: float = 0.0

    @property
    def was_violated(self) -> bool:
        """Whether the base DC needed repair at all."""
        return self.base_confidence < 1.0

    @property
    def found(self) -> bool:
        """Whether at least one exact repair was reached."""
        return bool(self.repairs)

    @property
    def best(self) -> DCCandidate | None:
        """The top-ranked exact repair, if any."""
        return self.repairs[0] if self.repairs else None


def extend_dc_by_one(
    evidence: EvidenceSet,
    dc: DenialConstraint,
    base: DenialConstraint | None = None,
) -> list[DCCandidate]:
    """Rank every single-predicate extension of ``dc``.

    ``base`` anchors the ``added`` bookkeeping across an iterated
    repair (defaults to ``dc``).  Predicates already present, on
    conflicting operators, or outside the evidence's predicate space
    are skipped.
    """
    base = base or dc
    space = evidence.space
    index = evidence.index
    dc_mask = space.mask_of(dc.predicates)
    violating = evidence.violations_of(dc_mask)
    base_set = set(base.predicates)
    candidates: list[DCCandidate] = []
    for pred in space.predicates:
        if pred in dc.predicates:
            continue
        try:
            extended = DenialConstraint((*dc.predicates, pred))
        except DCError:
            continue  # contradictory conjunction: trivially-true DC
        ext_mask = space.mask_of(extended.predicates)
        still_violating = evidence.violations_of(ext_mask)
        # Specificity guard, the goodness analogue: a predicate that
        # fails on nearly every pair (e.g. equality on a key column)
        # repairs anything by making the conjunction vacuous — exactly
        # the UNIQUE-attribute pathology of §3.  `collateral` counts the
        # pairs the predicate exempts beyond the violations it had to
        # fix; a surgical predicate scores ≈ 0, a trivializing one
        # scores ≈ all pairs.  The exempted weight is the complement of
        # the predicate's posting list — O(1) off the index.
        pred_id = space.index_of(pred)
        exempts_total = index.total_weight - index.posting_weights[pred_id]
        needed = violating - still_violating
        collateral = exempts_total - needed
        confidence = (
            1.0
            if not evidence.total_pairs
            else 1.0 - still_violating / evidence.total_pairs
        )
        candidates.append(
            DCCandidate(
                dc=extended,
                added=tuple(p for p in extended.predicates if p not in base_set),
                confidence=confidence,
                collateral=collateral,
            )
        )
    candidates.sort(key=lambda c: c.rank_key)
    return candidates


def repair_dc(
    evidence: EvidenceSet,
    dc: DenialConstraint,
    max_added: int = 2,
    stop_at_first: bool = False,
) -> DCRepairResult:
    """Best-first search for predicate extensions that make ``dc`` hold.

    The queue ordering mirrors Algorithm 3: candidates sorted by number
    of added predicates first, then rank — so the first repair found is
    minimal in added predicates.
    """
    start = time.perf_counter()
    result = DCRepairResult(base=dc, base_confidence=dc_confidence(evidence, dc))
    if not result.was_violated:
        result.elapsed_seconds = time.perf_counter() - start
        return result

    queue: list[DCCandidate] = extend_dc_by_one(evidence, dc)
    seen: set[DenialConstraint] = set()
    while queue:
        queue.sort(key=lambda c: (len(c.added), *c.rank_key))
        candidate = queue.pop(0)
        if candidate.dc in seen:
            continue
        seen.add(candidate.dc)
        result.expanded += 1
        if candidate.is_exact:
            result.repairs.append(candidate)
            if stop_at_first:
                break
            continue
        if len(candidate.added) < max_added:
            queue.extend(extend_dc_by_one(evidence, candidate.dc, base=dc))
    result.repairs.sort(key=lambda c: (len(c.added), *c.rank_key))
    result.elapsed_seconds = time.perf_counter() - start
    return result
