"""The "discover then relax" workflow the paper argues against (§2).

To update obsolete constraints via discovery one must "(i) first
discover all the possible constraints from data, then (ii) relax the
constraints … that do not hold on the current instance", and the paper
observes this is impractical because (a) discovery cost is exponential
in arity and (b) "the inferred constraints not always include
extensions of the ones specified by the designer".

:func:`discover_then_relax` executes the workflow end to end so both
observations become measurable, and pairs each designer FD with the
verdict:

* ``already_valid`` — the FD holds; nothing to do;
* ``extension_found`` — a mined constraint extends the FD's antecedent
  (same consequent, superset antecedent): the relax step succeeds;
* ``fd_found_elsewhere`` — mined FDs determine the consequent but none
  extends the designer's antecedent (the paper's failure mode: minimal
  mined antecedents need not contain the designer's);
* ``nothing_found`` — discovery produced no FD for the consequent at
  all (bounded size, sampling, or genuine absence).

The CB method, by contrast, searches *from* the designer's FD, so when
an extension repair exists it finds it; the ablation bench
(`benchmarks/bench_ablation_dc_relax.py`) quantifies both the cost gap
and the recall gap on the same workloads.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import assess
from repro.relational.relation import Relation

from .bridge import fds_among
from .engine import discover_dcs
from .predicates import build_predicate_space
from .search import DCDiscoveryResult

__all__ = ["RelaxOutcome", "RelaxVerdict", "RelaxReport", "discover_then_relax"]


class RelaxOutcome(enum.Enum):
    """What the relax step managed to do for one designer FD."""

    ALREADY_VALID = "already_valid"
    EXTENSION_FOUND = "extension_found"
    FD_FOUND_ELSEWHERE = "fd_found_elsewhere"
    NOTHING_FOUND = "nothing_found"


@dataclass(frozen=True)
class RelaxVerdict:
    """The relax result for one designer FD."""

    fd: FunctionalDependency
    outcome: RelaxOutcome
    confidence: float
    extensions: tuple[FunctionalDependency, ...] = ()
    alternatives: tuple[FunctionalDependency, ...] = ()

    @property
    def repaired(self) -> bool:
        """Whether the workflow produced a usable replacement."""
        return self.outcome in (
            RelaxOutcome.ALREADY_VALID,
            RelaxOutcome.EXTENSION_FOUND,
        )

    def __str__(self) -> str:
        return f"{self.fd}: {self.outcome.value} (c={self.confidence:.4g})"


@dataclass
class RelaxReport:
    """End-to-end accounting of one discover-then-relax run."""

    verdicts: list[RelaxVerdict] = field(default_factory=list)
    discovery: DCDiscoveryResult | None = None
    mined_fds: list[FunctionalDependency] = field(default_factory=list)
    discovery_seconds: float = 0.0
    relax_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Discovery + relax wall time."""
        return self.discovery_seconds + self.relax_seconds

    @property
    def repaired_count(self) -> int:
        """Designer FDs the workflow could validate or extend."""
        return sum(1 for v in self.verdicts if v.repaired)

    def verdict_for(self, fd: FunctionalDependency) -> RelaxVerdict:
        """The verdict of one designer FD (ValueError if absent)."""
        for verdict in self.verdicts:
            if verdict.fd == fd:
                return verdict
        raise ValueError(f"no verdict for {fd}")


def discover_then_relax(
    relation: Relation,
    designer_fds: list[FunctionalDependency],
    max_size: int = 4,
    max_pairs: int | None = 200_000,
    order_predicates: bool = False,
    max_constraints: int | None = None,
    engine: str = "tiled",
) -> RelaxReport:
    """Run the [16]-style workflow against ``designer_fds``.

    ``max_size`` bounds DC size (an FD over k antecedent attributes
    needs a DC of k+1 predicates, so repairs longer than
    ``max_size - 2`` over a single-antecedent FD are out of reach —
    another structural handicap the report makes visible).
    ``order_predicates=False`` keeps the space to the FD fragment,
    which is the generous setting for the comparison: order predicates
    only blow the space up further.  ``engine`` selects the discovery
    path: ``"tiled"`` (default) runs sample-then-verify with
    ``max_pairs`` as the sample budget — exact results without full
    evidence construction; ``"reference"`` is the legacy one-shot
    enumeration where ``max_pairs`` truncates honestly-flagged
    sampling.
    """
    report = RelaxReport()

    start = time.perf_counter()
    space = build_predicate_space(relation, order_predicates=order_predicates)
    discovery = discover_dcs(
        relation,
        space,
        engine=engine,
        max_size=max_size,
        max_constraints=max_constraints,
        sample_pairs=max_pairs,
    )
    report.discovery = discovery
    report.mined_fds = fds_among(discovery.constraints)
    report.discovery_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for designer_fd in designer_fds:
        for fd in designer_fd.decompose():
            report.verdicts.append(_relax_one(relation, fd, report.mined_fds))
    report.relax_seconds = time.perf_counter() - start
    return report


def _relax_one(
    relation: Relation,
    fd: FunctionalDependency,
    mined: list[FunctionalDependency],
) -> RelaxVerdict:
    assessment = assess(relation, fd)
    if assessment.is_exact:
        return RelaxVerdict(fd, RelaxOutcome.ALREADY_VALID, assessment.confidence)
    antecedent = set(fd.antecedent)
    same_consequent = [m for m in mined if m.consequent == fd.consequent]
    extensions = tuple(
        m for m in same_consequent if antecedent <= set(m.antecedent)
    )
    if extensions:
        return RelaxVerdict(
            fd,
            RelaxOutcome.EXTENSION_FOUND,
            assessment.confidence,
            extensions=extensions,
            alternatives=tuple(m for m in same_consequent if m not in extensions),
        )
    if same_consequent:
        return RelaxVerdict(
            fd,
            RelaxOutcome.FD_FOUND_ELSEWHERE,
            assessment.confidence,
            alternatives=tuple(same_consequent),
        )
    return RelaxVerdict(fd, RelaxOutcome.NOTHING_FOUND, assessment.confidence)
