"""Denial constraints: model, FastDC-style discovery, discover-then-relax.

This package implements the constraint class and mining algorithm of
the paper's [16] (Chu, Ilyas, Papotti, *Discovering Denial
Constraints*, PVLDB 2013) — the "discover everything, then relax the
designer's constraints" alternative Section 2 argues is impractical —
so that argument can be benchmarked instead of merely cited:

* :mod:`~repro.dc.model` — predicates, denial constraints, violations;
* :mod:`~repro.dc.predicates` — the finite predicate space;
* :mod:`~repro.dc.evidence` — pair evidence sets (bitmask multiset)
  with the per-predicate postings :class:`EvidenceIndex`;
* :mod:`~repro.dc.engine` — the tiled block-vectorized evidence
  builder and the sample-then-verify discovery loop;
* :mod:`~repro.dc.search` — minimal-cover enumeration of valid DCs;
* :mod:`~repro.dc.bridge` — FD ↔ DC translation;
* :mod:`~repro.dc.relax` — the end-to-end workflow with per-FD verdicts;
* :mod:`~repro.dc.repair` — CB-style repair lifted to DCs (the paper's
  §7 "other kinds of constraints" future work).
"""

from .bridge import dc_to_fd, fd_to_dc, fds_among
from .engine import build_evidence_tiled, dc_violating_pairs, discover_dcs
from .evidence import EvidenceIndex, EvidenceSet, build_evidence_set
from .model import DCError, DenialConstraint, Operator, Predicate
from .predicates import PredicateSpace, build_predicate_space
from .relax import RelaxOutcome, RelaxReport, RelaxVerdict, discover_then_relax
from .repair import (
    DCCandidate,
    DCRepairResult,
    dc_confidence,
    extend_dc_by_one,
    repair_dc,
)
from .search import DCDiscoveryResult, mine_denial_constraints

__all__ = [
    "DCCandidate",
    "DCDiscoveryResult",
    "DCError",
    "DCRepairResult",
    "DenialConstraint",
    "EvidenceIndex",
    "EvidenceSet",
    "Operator",
    "Predicate",
    "PredicateSpace",
    "RelaxOutcome",
    "RelaxReport",
    "RelaxVerdict",
    "build_evidence_set",
    "build_evidence_tiled",
    "build_predicate_space",
    "dc_confidence",
    "dc_to_fd",
    "dc_violating_pairs",
    "discover_dcs",
    "discover_then_relax",
    "extend_dc_by_one",
    "fd_to_dc",
    "fds_among",
    "mine_denial_constraints",
    "repair_dc",
]
