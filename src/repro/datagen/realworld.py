"""Simulators for the real-life datasets of Table 6.

Each function returns an engineered relation (see
:mod:`repro.datagen.engineered`) matching the corresponding dataset's
*structural* profile — arity, tuple count (scalable), and the repair
length the paper reports the algorithm needed:

=============  =====  =========  ==============  =======================
dataset        arity  tuples     repair length   paper source
=============  =====  =========  ==============  =======================
Country        15     239        1 attribute     MySQL ``world`` sample
Rental         7      16 044     1 attribute     MySQL ``sakila`` sample
Image          14     124 768    2 attributes    Wikipedia dump
PageLinks      3      842 159    1 attribute     Wikipedia dump
=============  =====  =========  ==============  =======================

(The fifth real dataset, Places, is the exact Figure 1 instance in
:mod:`repro.datagen.places`; the sixth, Veterans, has its own module
because the Table 7/8 case study slices it by attribute and tuple
count.)

``scale`` multiplies the tuple count (default 1.0 = paper-sized; the
Table 6 bench uses 0.1 to stay laptop-friendly in pure Python).
Attribute names follow the original schemas so the printed experiment
tables read like the paper's.
"""

from __future__ import annotations

from pathlib import Path

from repro.relational.relation import Relation

from .engineered import EngineeredSpec, engineered_relation, engineered_to_store

__all__ = [
    "country_spec",
    "rental_spec",
    "image_spec",
    "pagelinks_spec",
    "country_relation",
    "rental_relation",
    "image_relation",
    "pagelinks_relation",
    "dataset_to_store",
    "REAL_DATASET_SPECS",
]


def _rows(base: int, scale: float) -> int:
    return max(20, round(base * scale))


def country_spec(scale: float = 1.0, seed: int = 7) -> EngineeredSpec:
    """MySQL ``world.country``: 15 attributes, 239 rows, 1-attr repair.

    Declared FD: ``Region → GovernmentForm`` (violated; regions host
    several government forms).  Adding ``Continent``-refined
    ``HeadOfState`` — here the engineered repair attribute — fixes it.
    """
    return EngineeredSpec(
        name="Country",
        num_rows=_rows(239, scale),
        x_name="Region",
        y_name="GovernmentForm",
        repair_names=("HeadOfState",),
        x_cardinality=12,
        y_cardinality=8,
        repair_cardinalities=(30,),
        filler_cardinalities={
            "Code": 60,
            "Name": 60,
            "Continent": 7,
            "SurfaceArea": 50,
            "IndepYear": 40,
            "Population": 55,
            "LifeExpectancy": 30,
            "GNP": 50,
            "GNPOld": 45,
            "LocalName": 60,
            "Capital": 55,
            "Code2": 60,
        },
        nullable_fillers=("IndepYear", "GNPOld", "LifeExpectancy"),
        seed=seed,
    )


def rental_spec(scale: float = 1.0, seed: int = 7) -> EngineeredSpec:
    """MySQL ``sakila.rental``: 7 attributes, 16 044 rows, 1-attr repair.

    Declared FD: ``CustomerId → StaffId`` (violated; a customer rents
    from several clerks); adding ``StoreId`` repairs it.
    """
    return EngineeredSpec(
        name="Rental",
        num_rows=_rows(16_044, scale),
        x_name="CustomerId",
        y_name="StaffId",
        repair_names=("StoreId",),
        x_cardinality=400,
        y_cardinality=12,
        repair_cardinalities=(25,),
        filler_cardinalities={
            "RentalDate": 900,
            "InventoryId": 1500,
            "ReturnDate": 900,
            "LastUpdate": 700,
        },
        seed=seed,
    )


def image_spec(scale: float = 1.0, seed: int = 7) -> EngineeredSpec:
    """Wikipedia ``image``: 14 attributes, 124 768 rows, 2-attr repair.

    Declared FD: ``MediaType → MajorMime`` (violated); the engineered
    minimal repair adds both ``MinorMime`` and ``Bits`` — this is the
    Table 6 row whose 2-attribute repair makes a mid-sized table the
    second-slowest real dataset.
    """
    return EngineeredSpec(
        name="Image",
        num_rows=_rows(124_768, scale),
        x_name="MediaType",
        y_name="MajorMime",
        repair_names=("MinorMime", "Bits"),
        x_cardinality=8,
        y_cardinality=10,
        repair_cardinalities=(12, 6),
        filler_cardinalities={
            "ImgName": 5000,
            "Size": 4000,
            "Width": 1200,
            "Height": 900,
            "Metadata": 3000,
            "DescriptionTouched": 2500,
            "UploadUser": 800,
            "UserText": 800,
            "Sha1": 5000,
            "Timestamp": 4500,
        },
        seed=seed,
    )


def pagelinks_spec(scale: float = 1.0, seed: int = 7) -> EngineeredSpec:
    """Wikipedia ``pagelinks``: 3 attributes, 842 159 rows, 1-attr repair.

    Declared FD: ``PlFrom → PlNamespace``; the only other attribute,
    ``PlTitle``, is the single candidate the algorithm can consider —
    which is why the paper's biggest table by tuples is among the
    fastest to repair.
    """
    return EngineeredSpec(
        name="PageLinks",
        num_rows=_rows(842_159, scale),
        x_name="PlFrom",
        y_name="PlNamespace",
        repair_names=("PlTitle",),
        x_cardinality=20_000,
        y_cardinality=12,
        repair_cardinalities=(1_000,),
        filler_cardinalities={},
        seed=seed,
    )


#: All Table 6 simulator specs keyed by dataset name (paper order).
REAL_DATASET_SPECS = {
    "Country": country_spec,
    "Rental": rental_spec,
    "Image": image_spec,
    "PageLinks": pagelinks_spec,
}


def country_relation(scale: float = 1.0, seed: int = 7) -> Relation:
    """Generate the Country simulator (see :func:`country_spec`)."""
    return engineered_relation(country_spec(scale, seed))


def rental_relation(scale: float = 1.0, seed: int = 7) -> Relation:
    """Generate the Rental simulator (see :func:`rental_spec`)."""
    return engineered_relation(rental_spec(scale, seed))


def image_relation(scale: float = 1.0, seed: int = 7) -> Relation:
    """Generate the Image simulator (see :func:`image_spec`)."""
    return engineered_relation(image_spec(scale, seed))


def pagelinks_relation(scale: float = 1.0, seed: int = 7) -> Relation:
    """Generate the PageLinks simulator (see :func:`pagelinks_spec`)."""
    return engineered_relation(pagelinks_spec(scale, seed))


def dataset_to_store(
    name: str,
    directory: str | Path,
    scale: float = 1.0,
    seed: int = 7,
    chunk_rows: int | None = None,
):
    """Stream one Table 6 simulator straight into a chunked store.

    The streaming path (:func:`~repro.datagen.engineered.engineered_rows`)
    never materializes the relation — paper-sized PageLinks (842k rows)
    loads at one-chunk peak memory.  Returns the opened
    :class:`~repro.storage.reader.StoredRelation`.
    """
    try:
        spec_fn = REAL_DATASET_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of "
            f"{sorted(REAL_DATASET_SPECS)}"
        ) from None
    return engineered_to_store(spec_fn(scale, seed), directory, chunk_rows)
