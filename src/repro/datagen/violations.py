"""Violation injection: simulating the "evolving reality" of the paper.

The paper's premise is that systematic violations of a declared FD
signal semantic drift — "law or policy changes" — rather than noise.
These helpers manufacture both situations on demand so tests, examples
and ablation benches can distinguish them:

* :func:`inject_noise` flips the consequent of a few random tuples —
  the *error* scenario, where a designer would fix the data;
* :func:`inject_drift` makes the consequent genuinely depend on an
  extra attribute (a *hidden determinant*) for a fraction of the rows —
  the *evolution* scenario, where the correct action is to repair the
  FD by adding that attribute to its antecedent;
* :func:`with_target_confidence` degrades an exact FD until its
  confidence falls to (approximately) a requested level, which the
  scaling benches use to control initial confidence — one of the
  Section 6.2 parameters the paper names as influencing runtime.
"""

from __future__ import annotations

from typing import Any

from repro.fd.fd import FunctionalDependency
from repro.fd.measures import assess
from repro.relational.relation import Relation

from .rng import child_rng

__all__ = ["inject_noise", "inject_drift", "with_target_confidence"]


def _replace_column(relation: Relation, attr: str, values: list[Any]) -> Relation:
    columns = {name: relation.column_values(name) for name in relation.attribute_names}
    columns[attr] = values
    return Relation.from_columns(relation.schema, columns)


def inject_noise(
    relation: Relation,
    fd: FunctionalDependency,
    num_tuples: int,
    seed: int = 0,
) -> Relation:
    """Corrupt the consequent of ``num_tuples`` random rows.

    Each chosen row's Y value is swapped with the Y value of another
    random row (so domains stay realistic).  This models entry errors:
    isolated, unsystematic, usually best fixed in the data.
    """
    if not fd.is_single_consequent:
        raise ValueError("inject_noise expects a single-consequent FD")
    rng = child_rng(seed, "noise", relation.name)
    attr = fd.consequent[0]
    values = relation.column_values(attr)
    n = len(values)
    for _ in range(min(num_tuples, n)):
        victim = rng.randrange(n)
        donor = rng.randrange(n)
        values[victim] = values[donor]
    return _replace_column(relation, attr, values)


def inject_drift(
    relation: Relation,
    fd: FunctionalDependency,
    determinant: str,
    affected_fraction: float = 1.0,
    seed: int = 0,
) -> Relation:
    """Make Y genuinely depend on ``determinant`` as well as X.

    The drift is systematic, as a real policy change is: it applies to
    a subset of *determinant values* (``affected_fraction`` of them),
    and every row carrying an affected value gets a new Y that is a
    deterministic function of the (old Y, determinant value) pair.
    Because whole determinant categories drift together,
    ``X determinant → Y`` is exact after injection whenever ``X → Y``
    was exact before — the CB method's suggested repair is the ground
    truth by construction.  (Sampling at the row level instead would
    mix drifted and un-drifted rows inside one (X, determinant) group
    and no antecedent extension could repair that — that scenario is
    :func:`inject_noise`'s.)
    """
    if not fd.is_single_consequent:
        raise ValueError("inject_drift expects a single-consequent FD")
    if determinant in fd.attributes:
        raise ValueError("the drift determinant must be outside the FD")
    rng = child_rng(seed, "drift", relation.name, determinant)
    y_attr = fd.consequent[0]
    y_values = relation.column_values(y_attr)
    det_column = relation.column(determinant)
    affected_codes = {
        code
        for code in range(det_column.cardinality)
        if rng.random() < affected_fraction
    }
    new_values: list[Any] = []
    for row, old in enumerate(y_values):
        det_code = det_column.codes[row]
        if det_code < 0 or det_code not in affected_codes:
            new_values.append(old)
            continue
        new_values.append(f"{old}/{det_code}")
    return _replace_column(relation, y_attr, new_values)


def with_target_confidence(
    relation: Relation,
    fd: FunctionalDependency,
    target: float,
    seed: int = 0,
    max_rounds: int = 60,
) -> Relation:
    """Degrade ``relation`` until ``fd``'s confidence ≤ ``target``.

    Repeatedly injects small amounts of noise, re-measuring after each
    round; returns as soon as the confidence reaches the target (or
    after ``max_rounds``).  Used by the parameter-study benches.
    """
    if not 0.0 < target <= 1.0:
        raise ValueError("target confidence must be in (0, 1]")
    current = relation
    batch = max(1, relation.num_rows // 200)
    for round_index in range(max_rounds):
        if assess(current, fd).confidence <= target:
            break
        current = inject_noise(current, fd, batch, seed=seed + round_index)
    return current
