"""Deterministic random-source helpers for all generators.

Every generator in :mod:`repro.datagen` takes a ``seed`` and derives
per-table / per-column child seeds from it, so regenerating any one
table is reproducible regardless of generation order — the property
DBGEN has and that our benchmark tables rely on.
"""

from __future__ import annotations

import random

__all__ = ["child_rng", "derive_seed"]

_MIX = 0x9E3779B97F4A7C15  # golden-ratio mixing constant


def derive_seed(seed: int, *labels: str | int) -> int:
    """Derive a child seed from ``seed`` and a label path, stably.

    Uses a simple multiplicative hash over the label path; Python's
    ``hash`` is avoided because string hashing is randomized per
    process.
    """
    state = (seed * _MIX) & 0xFFFFFFFFFFFFFFFF
    for label in labels:
        text = str(label)
        for ch in text.encode("utf-8"):
            state = ((state ^ ch) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        state = (state * _MIX) & 0xFFFFFFFFFFFFFFFF
    return state


def child_rng(seed: int, *labels: str | int) -> random.Random:
    """A :class:`random.Random` seeded from ``seed`` and a label path."""
    return random.Random(derive_seed(seed, *labels))
