"""The running example: relation ``Places`` (paper Figure 1) and its FDs.

The machine-extracted text of Figure 1 is column-scrambled, so the
instance below is *reconstructed* to satisfy every worked number in the
paper simultaneously:

* "All the tuples in Places violate F1; tuples t1, t2 and t3 violate F2
  and tuples t10 and t11 violate F3" (Section 1);
* ``c_F1 = 0.5, g_F1 = −2``; ``c_F2 = 0.667, g_F2 = −1``;
  ``c_F3 = 0.889, g_F3 = 1`` (Section 3);
* ``c_F4 = 2/7, g_F4 = −4`` (Section 4.3);
* every (confidence, goodness) row of Table 1 and every confidence of
  Tables 2–3, and the Figure 2 clusterings.

Known paper inconsistencies, documented in ``tests/fd/test_paper_examples.py``:

* Table 3's goodness column does not agree with Definition 3 under any
  assignment consistent with the rest of the paper (the printed values
  appear to subtract ``|π_AreaCode| = 4`` instead of ``|π_PhNo| = 6``);
  our Table 3 confidences match exactly, goodnesses are uniformly
  smaller.
* Table 6 lists Places with cardinality 10; Figure 1 shows 11 tuples.
  We keep the 11 tuples of Figure 1.

The ``tid`` labels of Figure 1 are row identifiers, not attributes (the
relation's arity is 9 in Table 6, and no paper ranking ever offers
``tid`` as a repair candidate), so they are exposed only as row order:
tuple ``t{i}`` is row ``i-1``.
"""

from __future__ import annotations

from repro.fd.fd import FunctionalDependency
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType

__all__ = [
    "places_relation",
    "places_fds",
    "places_catalog",
    "F1",
    "F2",
    "F3",
    "F4",
]

#: F1 : [District, Region] → [AreaCode]  — violated by every tuple.
F1 = FunctionalDependency(("District", "Region"), ("AreaCode",))
#: F2 : [Zip] → [City, State]  — violated by t1, t2, t3.
F2 = FunctionalDependency(("Zip",), ("City", "State"))
#: F3 : [PhNo, Zip] → [Street]  — violated by t10, t11.
F3 = FunctionalDependency(("PhNo", "Zip"), ("Street",))
#: F4 : [District] → [PhNo]  — the Section 4.3 two-step repair example.
F4 = FunctionalDependency(("District",), ("PhNo",))

_SCHEMA = RelationSchema(
    "Places",
    [
        Attribute("District", AttributeType.STRING, nullable=False),
        Attribute("Region", AttributeType.STRING, nullable=False),
        Attribute("Municipal", AttributeType.STRING, nullable=False),
        Attribute("AreaCode", AttributeType.STRING, nullable=False),
        Attribute("PhNo", AttributeType.STRING, nullable=False),
        Attribute("Street", AttributeType.STRING, nullable=False),
        Attribute("Zip", AttributeType.STRING, nullable=False),
        Attribute("City", AttributeType.STRING, nullable=False),
        Attribute("State", AttributeType.STRING, nullable=False),
    ],
)

# Rows t1..t11.  District/Region split {t1..t5} vs {t6..t11}; Municipal is
# constant on each AreaCode class ({t1-t3}, {t4,t5}, {t6-t8}, {t9-t11}),
# which is what makes [District, Region, Municipal] → [AreaCode] the
# paper's preferred (bijective) repair of F1.
_ROWS = [
    # District,   Region,       Municipal,   Area, PhNo,        Street,     Zip,     City,      State
    ("Brookside", "Granville", "Glendale", "613", "974-2345", "Boxwood", "10211", "NY", "NY"),  # t1
    ("Brookside", "Granville", "Glendale", "613", "974-2345", "Boxwood", "10211", "NY", "NY"),  # t2
    ("Brookside", "Granville", "Glendale", "613", "299-1010", "Westlane", "10211", "NY", "MA"),  # t3
    ("Brookside", "Granville", "QueenAnne", "515", "220-1200", "Squire", "02215", "Boston", "MA"),  # t4
    ("Brookside", "Granville", "QueenAnne", "515", "220-1200", "Squire", "02215", "Boston", "MA"),  # t5
    ("Alexandria", "Moore Park", "Guildwood", "415", "220-1200", "Napa", "60415", "Chicago", "IL"),  # t6
    ("Alexandria", "Moore Park", "Guildwood", "415", "930-2525", "Main", "60415", "Chicago", "IL"),  # t7
    ("Alexandria", "Moore Park", "Guildwood", "415", "555-1234", "Tower", "60415", "Chester", "IL"),  # t8
    ("Alexandria", "Moore Park", "NapaHill", "517", "888-5152", "Main", "60415", "Chicago", "IL"),  # t9
    ("Alexandria", "Moore Park", "NapaHill", "517", "888-5152", "Main", "60601", "Chicago", "IL"),  # t10
    ("Alexandria", "Moore Park", "NapaHill", "517", "888-5152", "Bay", "60601", "Chicago", "IL"),  # t11
]


def places_relation() -> Relation:
    """The 11-tuple ``Places`` instance of Figure 1 (reconstructed)."""
    return Relation.from_rows(_SCHEMA, _ROWS)


def places_fds() -> list[FunctionalDependency]:
    """The three FDs declared on ``Places`` in the running example."""
    return [F1, F2, F3]


def places_catalog() -> Catalog:
    """A catalog holding ``Places`` with F1–F3 declared, as the paper's
    prototype would present it to the designer."""
    catalog = Catalog()
    catalog.add_relation(places_relation())
    catalog.declare_fds("Places", places_fds())
    return catalog
