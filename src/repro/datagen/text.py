"""Word lists and text synthesis for the generators.

TPC-H's DBGEN builds comments and part names from fixed vocabularies;
we do the same with small curated lists, so generated relations look
like the originals (multi-word part names, short comment sentences)
while staying fully offline and deterministic.
"""

from __future__ import annotations

import random

__all__ = [
    "ADJECTIVES",
    "COLORS",
    "NOUNS",
    "VERBS",
    "REGION_NAMES",
    "NATION_NAMES",
    "NATION_REGION",
    "SEGMENTS",
    "PRIORITIES",
    "SHIP_MODES",
    "SHIP_INSTRUCTIONS",
    "CONTAINERS",
    "PART_TYPES",
    "comment",
    "part_name",
    "phone",
    "address",
]

ADJECTIVES = [
    "quick", "silent", "bold", "ironic", "final", "even", "special", "express",
    "regular", "pending", "furious", "careful", "daring", "quiet", "slow",
    "busy", "idle", "ruthless", "blithe", "dogged",
]

COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
    "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
    "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat",
    "white", "yellow",
]

NOUNS = [
    "deposits", "foxes", "accounts", "pinto beans", "instructions", "requests",
    "packages", "theodolites", "dependencies", "excuses", "platelets", "asymptotes",
    "courts", "dolphins", "multipliers", "sauternes", "warthogs", "frets",
    "dinos", "attainments", "somas", "braids", "hockey players", "sheaves",
]

VERBS = [
    "sleep", "haggle", "nag", "wake", "are", "cajole", "run", "snooze",
    "detect", "integrate", "engage", "lose", "use", "boost", "affix",
    "doze", "play", "doubt", "grow", "maintain",
]

REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]

#: Region index of each nation, as in the TPC-H specification.
NATION_REGION = [0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

SHIP_INSTRUCTIONS = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]

CONTAINERS = [
    "SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "MED PKG",
    "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG", "JUMBO JAR",
    "WRAP DRUM", "WRAP CASE", "WRAP BOX",
]

PART_TYPES = [
    "STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM POLISHED NICKEL",
    "ECONOMY BURNISHED STEEL", "PROMO BRUSHED BRASS", "LARGE ANODIZED STEEL",
    "STANDARD POLISHED BRASS", "SMALL BURNISHED TIN", "ECONOMY PLATED NICKEL",
    "PROMO POLISHED COPPER", "MEDIUM BRUSHED STEEL", "LARGE PLATED BRASS",
]


def comment(rng: random.Random, words: int = 5) -> str:
    """A DBGEN-style comment sentence with roughly ``words`` words."""
    parts = []
    for _ in range(max(2, words) // 2):
        parts.append(rng.choice(ADJECTIVES))
        parts.append(rng.choice(NOUNS))
        parts.append(rng.choice(VERBS))
    return " ".join(parts[: max(2, words)])


def part_name(rng: random.Random) -> str:
    """A part name: five distinct colors, as DBGEN builds them."""
    return " ".join(rng.sample(COLORS, 5))


def phone(rng: random.Random, nation_key: int) -> str:
    """A TPC-H phone number: country code derived from the nation."""
    return (
        f"{10 + nation_key}-{rng.randint(100, 999)}-"
        f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
    )


def address(rng: random.Random) -> str:
    """A short pseudo-address (DBGEN uses random v-strings)."""
    length = rng.randint(10, 30)
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,."
    return "".join(rng.choice(alphabet) for _ in range(length)).strip()
