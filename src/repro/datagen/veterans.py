"""The ``Veterans`` wide-table simulator (KDD Cup 98) for Tables 7–8.

The paper's case study (Section 6.2.1) slices the 481-attribute,
95 412-tuple KDD Cup 98 table into instances of {10, 20, 30} attributes
× {10K..70K} tuples, declares a 1→1 FD, and measures find-all vs
find-first repair times.  Its observations, which this simulator is
built to reproduce:

* time grows much faster with the number of attributes than with the
  number of tuples (Tables 7 and 8);
* at 10 attributes **no repair exists**, so find-first degenerates to
  find-all (the 70K/10-attribute near-equality the paper points out);
* at 20 and 30 attributes repairs exist, so find-first is much faster.

Construction (seeded, deterministic):

* ``X`` (``State``) and ``Y`` (``GiftLevel``): the declared violated FD;
* eight *latent-tied* fillers: deterministic functions of one hidden
  low-cardinality latent variable.  Any combination of them collapses
  to the latent's partition, so the first 10 attributes genuinely admit
  **no** repair — and the find-all search over them stays bounded
  (2^8 antecedent sets), exactly the regime the paper's 10-attribute
  column lives in;
* the true determinants ``Rfa1``/``Rfa2`` (``Y = f(X, Rfa1, Rfa2)``)
  appear only from attribute 11 on, plus high-cardinality donation
  fields that quickly form keys with ``X`` — real-data behaviour that
  keeps the wider searches from exploding while still growing steeply
  with arity;
* beyond the case-study slice, ``full=True`` appends NULL-bearing
  attributes up to the original 481/323 non-NULL profile.
"""

from __future__ import annotations

from repro.fd.fd import FunctionalDependency
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType

from .rng import child_rng, derive_seed

__all__ = [
    "VETERANS_FD",
    "veterans_relation",
    "veterans_attribute_names",
    "FULL_ARITY",
    "FULL_NON_NULL",
    "FULL_ROWS",
]

#: The case-study FD: one attribute per side, violated by construction.
VETERANS_FD = FunctionalDependency(("State",), ("GiftLevel",))

#: Profile of the original KDD Cup 98 table (paper Section 6.2.1).
FULL_ARITY = 481
FULL_NON_NULL = 323
FULL_ROWS = 95_412

_LATENT_CARD = 40
_X_CARD = 50
_Y_CARD = 20
_RFA1_CARD = 24
_RFA2_CARD = 14

#: The 8 latent-tied fillers completing the 10-attribute slice.
_LATENT_FILLERS = (
    "ZipBand",
    "Region",
    "UrbanCode",
    "IncomeBand",
    "HomeOwner",
    "WealthBand",
    "Cluster",
    "AgeBand",
)

#: High-cardinality donation attributes for the 20/30-attribute slices.
_HIGH_CARD_FILLERS = (
    "LastGiftAmount",
    "AvgGiftAmount",
    "MaxGiftAmount",
    "MinGiftAmount",
    "TotalGifts",
    "MonthsSinceLast",
    "PromoCount",
    "CardPromoCount",
    "LifetimeGifts",
    "FirstGiftYear",
    "LastPromoDate",
    "MajorDonorScore",
    "RecencyScore",
    "FrequencyScore",
    "MonetaryScore",
    "HouseholdIncome",
    "NeighborhoodAvg",
    "DonorAge",
)


def veterans_attribute_names(num_attrs: int) -> list[str]:
    """The attribute names of a ``num_attrs``-wide case-study slice."""
    names = ["State", "GiftLevel", *_LATENT_FILLERS]
    names += ["Rfa1", "Rfa2"]
    names += list(_HIGH_CARD_FILLERS)
    if num_attrs > len(names):
        names += [f"Extra{i:03d}" for i in range(num_attrs - len(names))]
    return names[:num_attrs]


def veterans_relation(
    num_attrs: int = 30,
    num_rows: int = 10_000,
    seed: int = 98,
    full: bool = False,
    null_rate: float = 0.25,
) -> Relation:
    """Generate a Veterans slice (or, with ``full=True``, the full profile).

    ``num_attrs`` ≥ 10 includes the no-repair core; ≥ 12 adds the true
    determinants (so repairs of length 2 exist); larger values add
    high-cardinality donation columns.  ``full=True`` overrides
    ``num_attrs`` to 481, of which 158 carry NULLs.
    """
    if num_attrs < 3:
        raise ValueError("veterans_relation needs at least 3 attributes")
    if full:
        num_attrs = FULL_ARITY
    rng = child_rng(seed, "veterans", num_rows)
    n = num_rows

    latent = [rng.randrange(_LATENT_CARD) for _ in range(n)]
    x = [rng.randrange(_X_CARD) for _ in range(n)]
    rfa1 = [rng.randrange(_RFA1_CARD) for _ in range(n)]
    rfa2 = [rng.randrange(_RFA2_CARD) for _ in range(n)]
    y = [
        derive_seed(seed, "gift", x[i], rfa1[i], rfa2[i]) % _Y_CARD
        for i in range(n)
    ]

    names = veterans_attribute_names(num_attrs)
    columns: dict[str, list] = {}
    nullable: set[str] = set()
    for name in names:
        if name == "State":
            columns[name] = [f"ST{v:02d}" for v in x]
        elif name == "GiftLevel":
            columns[name] = [f"G{v:02d}" for v in y]
        elif name == "Rfa1":
            columns[name] = [f"R1_{v}" for v in rfa1]
        elif name == "Rfa2":
            columns[name] = [f"R2_{v}" for v in rfa2]
        elif name in _LATENT_FILLERS:
            # A per-attribute permutation of the latent value: each
            # filler is informative-looking but collapses to the latent.
            offset = derive_seed(seed, "perm", name) % _LATENT_CARD
            columns[name] = [f"{name}_{(v + offset) % _LATENT_CARD}" for v in latent]
        elif name in _HIGH_CARD_FILLERS:
            column_rng = child_rng(seed, "high", name, num_rows)
            spread = max(50, n // 3)
            columns[name] = [column_rng.randrange(spread) for _ in range(n)]
        else:  # ExtraNNN: NULL-bearing wide-table padding (full profile)
            column_rng = child_rng(seed, "extra", name, num_rows)
            base = [f"{name}_{column_rng.randrange(30)}" for _ in range(n)]
            if _is_nullable_extra(name, seed):
                nullable.add(name)
                columns[name] = [
                    None if column_rng.random() < null_rate else value
                    for value in base
                ]
            else:
                columns[name] = base

    attrs = []
    for name in names:
        attr_type = (
            AttributeType.INTEGER if name in _HIGH_CARD_FILLERS else AttributeType.STRING
        )
        attrs.append(Attribute(name, attr_type, nullable=name in nullable))
    schema = RelationSchema("Veterans", attrs)
    return Relation.from_columns(schema, columns)


def _is_nullable_extra(name: str, seed: int) -> bool:
    """Whether an ExtraNNN column carries NULLs.

    Tuned so the full 481-attribute profile has 158 NULL-bearing
    attributes (481 − 323), matching the paper's description.
    """
    index = int(name.removeprefix("Extra"))
    # 481 - 30 named = 451 extras; 158 of them nullable.
    return (index * 158) % 451 < 158
