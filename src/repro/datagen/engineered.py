"""Engineered relations with a *known* minimal repair.

The real datasets of Table 6 (Country, Rental, Image, PageLinks,
Veterans) cannot be downloaded offline, so we simulate them (DESIGN.md
§4).  What the paper's experiments actually exercise is structural: the
arity, the tuple count, and — crucially — the *length of the repair* the
algorithm must find (Places took longer than the bigger Country table
because its FD needed a 2-attribute repair, Section 6.2).  This module
builds relations where those properties are controlled exactly:

* a declared FD ``X → Y`` that the instance violates;
* a designated set of *repair attributes* ``R1..Rk`` such that
  ``X R1..Rk → Y`` is exact **by construction** (``Y`` is generated as a
  deterministic function of ``(X, R1..Rk)``);
* filler attributes that are independent of ``Y`` so they cannot repair
  the FD on their own (verified for the shipped dataset specs in
  ``tests/datagen/test_engineered.py``);
* optional NULL-bearing attributes, which the repair search must skip.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.fd.fd import FunctionalDependency
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType

from .rng import child_rng, derive_seed

__all__ = [
    "EngineeredSpec",
    "engineered_relation",
    "engineered_rows",
    "engineered_schema",
    "engineered_to_store",
]


@dataclass(frozen=True)
class EngineeredSpec:
    """Recipe for one engineered relation.

    ``filler_cardinalities`` maps filler attribute name → number of
    distinct values; fillers are i.i.d. uniform.  ``null_rate`` applies
    to the attributes listed in ``nullable_fillers`` (a subset of the
    fillers), making them ineligible for FDs and repairs.
    """

    name: str
    num_rows: int
    x_name: str
    y_name: str
    repair_names: tuple[str, ...]
    x_cardinality: int
    y_cardinality: int
    repair_cardinalities: tuple[int, ...]
    filler_cardinalities: dict[str, int] = field(default_factory=dict)
    nullable_fillers: tuple[str, ...] = ()
    null_rate: float = 0.1
    seed: int = 7

    def __post_init__(self) -> None:
        if len(self.repair_names) != len(self.repair_cardinalities):
            raise ValueError("repair_names and repair_cardinalities lengths differ")
        if self.x_cardinality < 2 or self.y_cardinality < 2:
            raise ValueError("x and y need at least two distinct values")
        unknown = set(self.nullable_fillers) - set(self.filler_cardinalities)
        if unknown:
            raise ValueError(f"nullable fillers {sorted(unknown)} are not fillers")

    @property
    def fd(self) -> FunctionalDependency:
        """The declared (violated) FD ``X → Y``."""
        return FunctionalDependency((self.x_name,), (self.y_name,))

    @property
    def repaired_fd(self) -> FunctionalDependency:
        """The engineered exact repair ``X R1..Rk → Y``."""
        return self.fd.extended(*self.repair_names)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """All attribute names: X, Y, repairs, then fillers."""
        return (
            (self.x_name, self.y_name)
            + self.repair_names
            + tuple(self.filler_cardinalities)
        )

    @property
    def arity(self) -> int:
        """Number of attributes of the generated relation."""
        return len(self.attribute_names)


def engineered_relation(spec: EngineeredSpec) -> Relation:
    """Generate the relation described by ``spec``.

    ``Y`` is a pseudo-random but deterministic function of
    ``(X, R1..Rk)``, so the repaired FD is exact on every instance while
    ``X → Y`` (and ``X`` plus any proper subset of the repairs) is
    violated with overwhelming probability for the shipped specs.
    """
    rng = child_rng(spec.seed, "engineered", spec.name)
    n = spec.num_rows
    x_values = [rng.randrange(spec.x_cardinality) for _ in range(n)]
    repair_columns: list[list[int]] = []
    for index, cardinality in enumerate(spec.repair_cardinalities):
        column_rng = child_rng(spec.seed, "repair", spec.name, index)
        repair_columns.append([column_rng.randrange(cardinality) for _ in range(n)])

    y_values = [
        _y_of(spec, x_values[row], tuple(col[row] for col in repair_columns))
        for row in range(n)
    ]

    columns: dict[str, list] = {
        spec.x_name: [f"{spec.x_name}_{v}" for v in x_values],
        spec.y_name: [f"{spec.y_name}_{v}" for v in y_values],
    }
    for name, values in zip(spec.repair_names, repair_columns):
        columns[name] = [f"{name}_{v}" for v in values]
    for name, cardinality in spec.filler_cardinalities.items():
        column_rng = child_rng(spec.seed, "filler", spec.name, name)
        values: list[str | None] = [
            f"{name}_{column_rng.randrange(cardinality)}" for _ in range(n)
        ]
        if name in spec.nullable_fillers:
            null_rng = child_rng(spec.seed, "nulls", spec.name, name)
            values = [
                None if null_rng.random() < spec.null_rate else value
                for value in values
            ]
        columns[name] = values

    schema = engineered_schema(spec)
    return Relation.from_columns(schema, {name: columns[name] for name in spec.attribute_names})


def engineered_schema(spec: EngineeredSpec) -> RelationSchema:
    """The schema of the relation :func:`engineered_relation` builds."""
    attrs = [
        Attribute(
            name,
            AttributeType.STRING,
            nullable=name in spec.nullable_fillers,
        )
        for name in spec.attribute_names
    ]
    return RelationSchema(spec.name, attrs)


def engineered_rows(spec: EngineeredSpec) -> Iterator[tuple]:
    """The spec's rows as a deterministic stream (O(1) row memory).

    Every column owns a dedicated child RNG (the same streams
    :func:`engineered_relation` consumes column-wise); advancing each
    one draw per row therefore reproduces the materialized relation
    value-for-value, without ever holding a full column.
    """
    x_rng = child_rng(spec.seed, "engineered", spec.name)
    repair_rngs = [
        child_rng(spec.seed, "repair", spec.name, index)
        for index in range(len(spec.repair_cardinalities))
    ]
    filler_rngs = {
        name: child_rng(spec.seed, "filler", spec.name, name)
        for name in spec.filler_cardinalities
    }
    null_rngs = {
        name: child_rng(spec.seed, "nulls", spec.name, name)
        for name in spec.nullable_fillers
    }
    for _ in range(spec.num_rows):
        x = x_rng.randrange(spec.x_cardinality)
        repairs = tuple(
            rng.randrange(cardinality)
            for rng, cardinality in zip(repair_rngs, spec.repair_cardinalities)
        )
        y = _y_of(spec, x, repairs)
        row: list[str | None] = [
            f"{spec.x_name}_{x}",
            f"{spec.y_name}_{y}",
        ]
        row.extend(
            f"{name}_{value}"
            for name, value in zip(spec.repair_names, repairs)
        )
        for name, cardinality in spec.filler_cardinalities.items():
            value = f"{name}_{filler_rngs[name].randrange(cardinality)}"
            if name in spec.nullable_fillers:
                if null_rngs[name].random() < spec.null_rate:
                    row.append(None)
                    continue
            row.append(value)
        yield tuple(row)


def engineered_to_store(
    spec: EngineeredSpec,
    directory: str | Path,
    chunk_rows: int | None = None,
):
    """Stream the spec straight into a chunked on-disk store.

    Returns the opened :class:`~repro.storage.reader.StoredRelation`;
    peak memory is one chunk of rows, never the relation.
    """
    from repro.storage import DEFAULT_CHUNK_ROWS, StoreWriter

    writer = StoreWriter(
        directory,
        engineered_schema(spec),
        chunk_rows=DEFAULT_CHUNK_ROWS if chunk_rows is None else chunk_rows,
    )
    writer.append_rows(engineered_rows(spec))
    return writer.finalize()


def _y_of(spec: EngineeredSpec, x: int, repairs: tuple[int, ...]) -> int:
    """The hidden ground-truth function ``Y = f(X, R1..Rk)``."""
    return derive_seed(spec.seed, "ymap", spec.name, x, *repairs) % spec.y_cardinality
