"""A seeded TPC-H-style query-stream generator.

The paper evaluates FD maintenance on DBGEN databases; this module
generates the *query workload* side of such an evaluation: a
deterministic stream of SELECTs over any catalog (typically
:func:`~repro.datagen.tpch.generate_tpch`), mixing the shapes a
monitoring deployment issues —

* ``point`` — equality lookups on a declared FD's antecedent (the
  shape the advisor can index);
* ``fd_fetch`` — fetch an FD's consequent attributes for one
  antecedent value (the monitor's repair-inspection query);
* ``aggregate`` — GROUP BY with COUNT/SUM/AVG and an occasional
  HAVING;
* ``join`` — equi-join a foreign key to the key of its home table
  (detected structurally: a column that is the first attribute of one
  relation and also appears in another);
* ``topk`` — ORDER BY a numeric column DESC with LIMIT;
* ``range`` — numeric band predicates under an aggregate.

Everything is driven by one :class:`random.Random` seeded from
``seed``, and values are sampled from the actual relation columns, so
the same (catalog, seed, count) always produces the same SQL texts
with realistic selectivities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.types import AttributeType

__all__ = ["QUERY_KINDS", "GeneratedQuery", "generate_workload"]

QUERY_KINDS = ("point", "fd_fetch", "aggregate", "join", "topk", "range")

#: Grouping columns with more distinct values than this fraction of the
#: rows make degenerate GROUP BYs (every group a singleton), so the
#: generator skips them.
_MAX_GROUP_RATIO = 0.5


@dataclass(frozen=True)
class GeneratedQuery:
    """One workload member: the SQL text plus provenance tags."""

    name: str
    sql: str
    kind: str
    table: str


def generate_workload(
    catalog: Catalog,
    count: int = 20,
    seed: int = 0,
    kinds: tuple[str, ...] = QUERY_KINDS,
) -> list[GeneratedQuery]:
    """Generate a deterministic query stream over ``catalog``.

    Cycles through ``kinds`` until ``count`` queries exist, skipping a
    kind when the catalog offers no fitting relation (e.g. ``join``
    without any detectable foreign key), so the result can be shorter
    than ``count`` only on degenerate catalogs.
    """
    for kind in kinds:
        if kind not in QUERY_KINDS:
            raise ValueError(f"unknown query kind {kind!r}; expected {QUERY_KINDS}")
    rng = random.Random(seed)
    maker = _Maker(catalog, rng)
    queries: list[GeneratedQuery] = []
    misses = 0
    while len(queries) < count and misses < len(kinds):
        kind = kinds[(len(queries) + misses) % len(kinds)]
        query = maker.make(kind, len(queries))
        if query is None:
            misses += 1
            continue
        misses = 0
        queries.append(query)
    return queries


class _Maker:
    def __init__(self, catalog: Catalog, rng: random.Random) -> None:
        self._catalog = catalog
        self._rng = rng
        self._tables = sorted(catalog.relation_names())
        self._joins = _join_candidates(catalog, self._tables)

    def make(self, kind: str, index: int) -> GeneratedQuery | None:
        sql_and_table = getattr(self, f"_make_{kind}")()
        if sql_and_table is None:
            return None
        sql, table = sql_and_table
        return GeneratedQuery(f"q{index:03d}_{kind}", sql, kind, table)

    # -- helpers --------------------------------------------------------
    def _relation(self, table: str) -> Relation:
        return self._catalog.relation(table)

    def _tables_with_rows(self) -> list[str]:
        return [t for t in self._tables if self._relation(t).num_rows > 0]

    def _sample_literal(self, relation: Relation, column: str) -> str | None:
        row = self._rng.randrange(relation.num_rows)
        value = relation.column(column).value(row)
        return _literal(value)

    def _numeric_columns(self, relation: Relation) -> list[str]:
        return [
            attribute.name
            for attribute in relation.schema.attributes
            if attribute.type in (AttributeType.INTEGER, AttributeType.FLOAT)
        ]

    def _group_columns(self, relation: Relation) -> list[str]:
        limit = max(1, int(relation.num_rows * _MAX_GROUP_RATIO))
        return [
            name
            for name in relation.attribute_names
            if len(relation.column(name).dictionary) <= limit
        ]

    def _fd_site(self):
        """A (table, fd) pair with single-attribute antecedent, if any."""
        sites = []
        for table in self._tables_with_rows():
            for fd in self._catalog.fds(table):
                if len(fd.antecedent) == 1:
                    sites.append((table, fd))
        if not sites:
            return None
        return self._rng.choice(sites)

    # -- kinds ----------------------------------------------------------
    def _make_point(self):
        site = self._fd_site()
        if site is None:
            return None
        table, fd = site
        relation = self._relation(table)
        key = fd.antecedent[0]
        literal = self._sample_literal(relation, key)
        if literal is None:
            return None
        return f"SELECT * FROM {table} WHERE {key} = {literal}", table

    def _make_fd_fetch(self):
        site = self._fd_site()
        if site is None:
            return None
        table, fd = site
        relation = self._relation(table)
        key = fd.antecedent[0]
        literal = self._sample_literal(relation, key)
        if literal is None:
            return None
        outputs = ", ".join(fd.antecedent + fd.consequent)
        return (
            f"SELECT DISTINCT {outputs} FROM {table} WHERE {key} = {literal}",
            table,
        )

    def _make_aggregate(self):
        candidates = []
        for table in self._tables_with_rows():
            relation = self._relation(table)
            groups = self._group_columns(relation)
            numerics = self._numeric_columns(relation)
            if groups and numerics:
                candidates.append((table, groups, numerics))
        if not candidates:
            return None
        table, groups, numerics = self._rng.choice(candidates)
        group = self._rng.choice(groups)
        numeric = self._rng.choice(numerics)
        func = self._rng.choice(("SUM", "AVG", "MIN", "MAX"))
        sql = (
            f"SELECT {group}, COUNT(*), {func}({numeric}) "
            f"FROM {table} GROUP BY {group}"
        )
        if self._rng.random() < 0.5:
            sql += f" HAVING COUNT(*) > {self._rng.randint(1, 3)}"
        return sql, table

    def _make_join(self):
        if not self._joins:
            return None
        fact, dim, key = self._rng.choice(self._joins)
        dim_relation = self._relation(dim)
        payload = [
            name for name in dim_relation.attribute_names[1:3] if name != key
        ]
        outputs = ", ".join(
            [f"{fact}.{key}"] + [f"{dim}.{name}" for name in payload]
        )
        sql = (
            f"SELECT {outputs} FROM {fact} "
            f"JOIN {dim} ON {fact}.{key} = {dim}.{key}"
        )
        numerics = self._numeric_columns(self._relation(fact))
        numerics = [n for n in numerics if n != key]
        if numerics:
            column = self._rng.choice(numerics)
            bound = self._sample_literal(self._relation(fact), column)
            if bound is not None:
                sql += f" WHERE {fact}.{column} >= {bound}"
        return sql, fact

    def _make_topk(self):
        candidates = []
        for table in self._tables_with_rows():
            numerics = self._numeric_columns(self._relation(table))
            if numerics:
                candidates.append((table, numerics))
        if not candidates:
            return None
        table, numerics = self._rng.choice(candidates)
        column = self._rng.choice(numerics)
        names = self._relation(table).attribute_names
        outputs = ", ".join(dict.fromkeys([names[0], column]))
        k = self._rng.choice((5, 10, 25))
        return (
            f"SELECT {outputs} FROM {table} ORDER BY {column} DESC, "
            f"{names[0]} LIMIT {k}",
            table,
        )

    def _make_range(self):
        candidates = []
        for table in self._tables_with_rows():
            numerics = self._numeric_columns(self._relation(table))
            if numerics:
                candidates.append((table, numerics))
        if not candidates:
            return None
        table, numerics = self._rng.choice(candidates)
        relation = self._relation(table)
        column = self._rng.choice(numerics)
        low = self._sample_literal(relation, column)
        high = self._sample_literal(relation, column)
        if low is None or high is None:
            return None
        if float(low) > float(high):
            low, high = high, low
        return (
            f"SELECT COUNT(*) FROM {table} "
            f"WHERE {column} >= {low} AND {column} <= {high}",
            table,
        )


def _join_candidates(
    catalog: Catalog, tables: list[str]
) -> list[tuple[str, str, str]]:
    """(fact, dimension, key) triples, detected structurally.

    A join candidate pairs a relation carrying column ``k`` with the
    relation whose *first* attribute is ``k`` (its key) — e.g.
    ``orders.custkey → customer`` in TPC-H.
    """
    heads: dict[str, str] = {}
    for table in tables:
        names = catalog.relation(table).attribute_names
        if names:
            heads.setdefault(names[0], table)
    candidates = []
    for table in tables:
        relation = catalog.relation(table)
        if relation.num_rows == 0:
            continue
        for name in relation.attribute_names:
            home = heads.get(name)
            if home is not None and home != table:
                candidates.append((table, home, name))
    return sorted(candidates)


def _literal(value: object) -> str | None:
    """Render a sampled value as a SQL literal, or None if it cannot be."""
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, (int, float)):
        if value != value or value in (float("inf"), float("-inf")):
            return None
        return repr(value)
    if isinstance(value, str) and "'" not in value:
        return f"'{value}'"
    return None
