"""Data generation (system S6 in DESIGN.md).

Everything the paper's evaluation feeds the algorithm, rebuilt
deterministically and offline:

* :mod:`repro.datagen.places` — the exact Figure 1 running example;
* :mod:`repro.datagen.tpch` — the DBGEN substitute (Tables 4–5, Fig. 3);
* :mod:`repro.datagen.realworld` — Table 6's real-dataset simulators;
* :mod:`repro.datagen.veterans` — the KDD Cup 98 wide table (Tables 7–8);
* :mod:`repro.datagen.engineered` — the known-minimal-repair builder
  underneath the simulators;
* :mod:`repro.datagen.violations` — noise vs semantic-drift injection;
* :mod:`repro.datagen.synthetic` — plain random relations for tests;
* :mod:`repro.datagen.queries` — a seeded SQL query-stream generator
  for workload-driven advisor evaluation.
"""

from .engineered import EngineeredSpec, engineered_relation
from .queries import QUERY_KINDS, GeneratedQuery, generate_workload
from .places import F1, F2, F3, F4, places_catalog, places_fds, places_relation
from .realworld import (
    REAL_DATASET_SPECS,
    country_relation,
    country_spec,
    image_relation,
    image_spec,
    pagelinks_relation,
    pagelinks_spec,
    rental_relation,
    rental_spec,
)
from .rng import child_rng, derive_seed
from .synthetic import random_relation
from .tpch import (
    SCALE_PRESETS,
    TPCH_FDS,
    TPCH_TABLE_NAMES,
    TpchScale,
    generate_table,
    generate_tpch,
    tpch_fd,
)
from .veterans import (
    FULL_ARITY,
    FULL_NON_NULL,
    FULL_ROWS,
    VETERANS_FD,
    veterans_attribute_names,
    veterans_relation,
)
from .violations import inject_drift, inject_noise, with_target_confidence

__all__ = [
    "EngineeredSpec",
    "F1",
    "F2",
    "F3",
    "F4",
    "FULL_ARITY",
    "FULL_NON_NULL",
    "FULL_ROWS",
    "GeneratedQuery",
    "QUERY_KINDS",
    "REAL_DATASET_SPECS",
    "SCALE_PRESETS",
    "TPCH_FDS",
    "TPCH_TABLE_NAMES",
    "TpchScale",
    "VETERANS_FD",
    "child_rng",
    "country_relation",
    "country_spec",
    "derive_seed",
    "engineered_relation",
    "generate_table",
    "generate_tpch",
    "generate_workload",
    "image_relation",
    "image_spec",
    "inject_drift",
    "inject_noise",
    "pagelinks_relation",
    "pagelinks_spec",
    "places_catalog",
    "places_fds",
    "places_relation",
    "random_relation",
    "rental_relation",
    "rental_spec",
    "tpch_fd",
    "veterans_attribute_names",
    "veterans_relation",
    "with_target_confidence",
]
