"""Random relation generation for property-based tests and ablations.

Hypothesis drives most property tests directly, but several suites and
benches need plain seeded random relations with controllable shape
(rows, arity, per-column cardinality, NULL rate).  This module is that
one knob-covered generator.
"""

from __future__ import annotations

from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType

from .rng import child_rng

__all__ = ["random_relation"]


def random_relation(
    name: str = "random",
    num_rows: int = 100,
    num_attrs: int = 5,
    cardinality: int | list[int] = 8,
    null_rate: float = 0.0,
    seed: int = 0,
) -> Relation:
    """A relation with i.i.d. uniform categorical columns.

    ``cardinality`` may be a single int (shared by all columns) or one
    int per column.  With ``null_rate > 0`` every column independently
    carries NULLs at that rate (and is marked nullable).
    """
    if num_attrs < 1:
        raise ValueError("num_attrs must be >= 1")
    if isinstance(cardinality, int):
        cardinalities = [cardinality] * num_attrs
    else:
        if len(cardinality) != num_attrs:
            raise ValueError("need one cardinality per attribute")
        cardinalities = list(cardinality)
    columns: dict[str, list] = {}
    attrs: list[Attribute] = []
    for index in range(num_attrs):
        attr_name = f"A{index}"
        rng = child_rng(seed, name, attr_name)
        values: list[str | None] = [
            f"v{rng.randrange(max(1, cardinalities[index]))}" for _ in range(num_rows)
        ]
        if null_rate > 0.0:
            values = [None if rng.random() < null_rate else v for v in values]
        columns[attr_name] = values
        attrs.append(
            Attribute(attr_name, AttributeType.STRING, nullable=null_rate > 0.0)
        )
    return Relation.from_columns(RelationSchema(name, attrs), columns)
