"""A deterministic TPC-H-style database generator (the paper's DBGEN).

Section 6.1 of the paper evaluates on three DBGEN databases (100MB,
250MB, 1GB — Table 4) with one FD per relation (Table 5).  This module
regenerates the same eight relations with the same arities and the same
FD-relevant value distributions:

* ``nation``/``region`` — the fixed 25/5 rows of the specification;
* ``customer``/``supplier``/``part`` names are key-derived and unique,
  so the declared FDs ``name → address`` / ``name → mfgr`` /
  ``name → regionkey`` / ``name → comment`` are **exact** (their Table 5
  processing time is pure validation time);
* ``lineitem.partkey → suppkey`` is **violated** (each part has four
  eligible suppliers and lineitems pick among them), which is what makes
  ``lineitem`` the dominant row of Table 5;
* ``orders.custkey → orderstatus`` is **violated** (a customer's orders
  carry different statuses);
* ``partsupp.suppkey → availqty`` is **violated** (a supplier stocks
  ~80 parts with i.i.d. quantities).

Row counts scale with ``scale_factor`` exactly as DBGEN's do (SF 1 =
the paper's 1GB column of Table 4).

Every table is produced by a **streaming row generator**
(:func:`stream_table`): one dedicated ``child_rng(seed, table)`` driven
strictly in row order, so the stream is a pure function of
``(table, scale, seed)`` and materializing it
(:func:`generate_table`) or writing it straight to the chunked
on-disk store (:func:`generate_to_store`, dependency-ordered, one
chunk of rows in memory at a time) yields identical data.
:func:`expected_rows` gives the DBGEN-style row-count accounting per
table; :func:`generate_to_store` returns the actual counts alongside
the opened stores.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.fd.fd import FunctionalDependency
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType

from . import text
from .rng import child_rng

__all__ = [
    "TPCH_TABLE_NAMES",
    "TPCH_LOAD_ORDER",
    "TPCH_FDS",
    "TpchScale",
    "SCALE_PRESETS",
    "expected_rows",
    "generate_table",
    "generate_to_store",
    "generate_tpch",
    "stream_table",
    "table_schema",
    "tpch_fd",
]

TPCH_TABLE_NAMES = (
    "customer",
    "lineitem",
    "nation",
    "orders",
    "part",
    "partsupp",
    "region",
    "supplier",
)

#: Foreign-key dependency order: every table's referenced keys are
#: generated before its referencing rows stream out.
TPCH_LOAD_ORDER = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)

#: The FDs of Table 5, one per relation, verbatim from the paper.
TPCH_FDS: dict[str, FunctionalDependency] = {
    "customer": FunctionalDependency(("name",), ("address",)),
    "lineitem": FunctionalDependency(("partkey",), ("suppkey",)),
    "nation": FunctionalDependency(("name",), ("regionkey",)),
    "orders": FunctionalDependency(("custkey",), ("orderstatus",)),
    "part": FunctionalDependency(("name",), ("mfgr",)),
    "partsupp": FunctionalDependency(("suppkey",), ("availqty",)),
    "region": FunctionalDependency(("name",), ("comment",)),
    "supplier": FunctionalDependency(("name",), ("address",)),
}


def tpch_fd(table: str) -> FunctionalDependency:
    """The Table 5 FD declared on ``table``."""
    return TPCH_FDS[table]


@dataclass(frozen=True)
class TpchScale:
    """A named scale preset mapping to a DBGEN scale factor.

    ``paper_label`` ties the preset to the corresponding column of the
    paper's Tables 4–5.
    """

    name: str
    scale_factor: float
    paper_label: str

    def rows(self, base: int) -> int:
        """Scale a base (SF 1) cardinality, keeping at least one row."""
        return max(1, round(base * self.scale_factor))


#: Presets mirroring the paper's three databases.  The paper's 100MB /
#: 250MB / 1GB correspond to SF 0.1 / 0.25 / 1.0; the defaults here are
#: 1/10 of those so the pure-Python benches finish in minutes, with the
#: ratios intact.  Use ``full_size=True`` in the bench harness (or the
#: ``paper-*`` presets) for paper-sized instances.
SCALE_PRESETS: dict[str, TpchScale] = {
    "tiny": TpchScale("tiny", 0.001, "1MB-equivalent"),
    "small": TpchScale("small", 0.01, "100MB column (scaled 1/10)"),
    "medium": TpchScale("medium", 0.025, "250MB column (scaled 1/10)"),
    "large": TpchScale("large", 0.1, "1GB column (scaled 1/10)"),
    "paper-100mb": TpchScale("paper-100mb", 0.1, "100MB column"),
    "paper-250mb": TpchScale("paper-250mb", 0.25, "250MB column"),
    "paper-1gb": TpchScale("paper-1gb", 1.0, "1GB column"),
}

# Base cardinalities at SF 1 (paper Table 4, 1GB column).
_BASE_CUSTOMERS = 150_000
_BASE_ORDERS = 1_500_000
_BASE_LINEITEMS_PER_ORDER = 4  # average; DBGEN draws 1..7
_BASE_PARTS = 200_000
_BASE_SUPPLIERS = 10_000
_SUPPLIERS_PER_PART = 4

_STATUSES = ("O", "F", "P")


def _preset(scale: str | TpchScale) -> TpchScale:
    return SCALE_PRESETS[scale] if isinstance(scale, str) else scale


def generate_tpch(
    scale: str | TpchScale = "small", seed: int = 42, tables: tuple[str, ...] = TPCH_TABLE_NAMES
) -> Catalog:
    """Generate a TPC-H catalog at the given scale, with Table 5's FDs
    declared on every generated relation."""
    preset = _preset(scale)
    catalog = Catalog()
    for table in tables:
        relation = generate_table(table, preset, seed)
        catalog.add_relation(relation)
        catalog.declare_fd(table, TPCH_FDS[table])
    return catalog


def generate_table(
    table: str, scale: str | TpchScale = "small", seed: int = 42
) -> Relation:
    """Generate a single TPC-H relation (materialized in memory)."""
    preset = _preset(scale)
    return Relation.from_rows(
        table_schema(table), stream_table(table, preset, seed)
    )


def stream_table(
    table: str, scale: str | TpchScale = "small", seed: int = 42
) -> Iterator[tuple[Any, ...]]:
    """The table's rows as a deterministic stream (O(1) row memory).

    Materializing the stream reproduces :func:`generate_table` exactly:
    each table owns one ``child_rng(seed, table)`` consumed strictly in
    row order.
    """
    preset = _preset(scale)
    generator = _ROW_STREAMS.get(table)
    if generator is None:
        raise KeyError(f"unknown TPC-H table {table!r}")
    return generator(preset, seed)


def table_schema(table: str) -> RelationSchema:
    """The schema of one TPC-H table."""
    builder = _SCHEMAS.get(table)
    if builder is None:
        raise KeyError(f"unknown TPC-H table {table!r}")
    return builder()


def expected_rows(table: str, scale: str | TpchScale = "small") -> int | None:
    """DBGEN-style row accounting: the exact row count of ``table`` at
    this scale, or ``None`` for ``lineitem`` (its count is drawn per
    order; the expectation is ``orders × 4``)."""
    preset = _preset(scale)
    if table == "region":
        return len(text.REGION_NAMES)
    if table == "nation":
        return len(text.NATION_NAMES)
    if table == "supplier":
        return preset.rows(_BASE_SUPPLIERS)
    if table == "customer":
        return preset.rows(_BASE_CUSTOMERS)
    if table == "part":
        return preset.rows(_BASE_PARTS)
    if table == "partsupp":
        return preset.rows(_BASE_PARTS) * _SUPPLIERS_PER_PART
    if table == "orders":
        return preset.rows(_BASE_ORDERS)
    if table == "lineitem":
        return None
    raise KeyError(f"unknown TPC-H table {table!r}")


def generate_to_store(
    directory: str | Path,
    scale: str | TpchScale = "small",
    seed: int = 42,
    tables: Sequence[str] | None = None,
    chunk_rows: int | None = None,
) -> dict[str, Any]:
    """Stream TPC-H tables straight into chunked on-disk stores.

    Tables are loaded in foreign-key dependency order
    (:data:`TPCH_LOAD_ORDER`), each into ``directory/<table>``, holding
    at most one chunk of rows in memory — the out-of-core DBGEN
    substitute.  Returns ``{table: StoredRelation}`` (opened); actual
    row counts are on each store (``store.num_rows``) and are checked
    against :func:`expected_rows` where the count is deterministic.
    """
    from repro.storage import DEFAULT_CHUNK_ROWS, StoreWriter

    preset = _preset(scale)
    directory = Path(directory)
    wanted = set(TPCH_TABLE_NAMES if tables is None else tables)
    unknown = wanted - set(TPCH_TABLE_NAMES)
    if unknown:
        raise KeyError(f"unknown TPC-H tables: {sorted(unknown)}")
    stores: dict[str, Any] = {}
    for table in TPCH_LOAD_ORDER:
        if table not in wanted:
            continue
        writer = StoreWriter(
            directory / table,
            table_schema(table),
            chunk_rows=DEFAULT_CHUNK_ROWS if chunk_rows is None else chunk_rows,
        )
        writer.append_rows(stream_table(table, preset, seed))
        store = writer.finalize()
        expected = expected_rows(table, preset)
        if expected is not None and store.num_rows != expected:
            raise AssertionError(
                f"{table}: generated {store.num_rows} rows, expected {expected}"
            )
        stores[table] = store
    return stores


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------
def _schema_region() -> RelationSchema:
    return RelationSchema(
        "region",
        [
            Attribute("regionkey", AttributeType.INTEGER, nullable=False),
            Attribute("name", AttributeType.STRING, nullable=False),
            Attribute("comment", AttributeType.STRING, nullable=False),
        ],
    )


def _schema_nation() -> RelationSchema:
    return RelationSchema(
        "nation",
        [
            Attribute("nationkey", AttributeType.INTEGER, nullable=False),
            Attribute("name", AttributeType.STRING, nullable=False),
            Attribute("regionkey", AttributeType.INTEGER, nullable=False),
            Attribute("comment", AttributeType.STRING, nullable=False),
        ],
    )


def _schema_supplier() -> RelationSchema:
    return RelationSchema(
        "supplier",
        [
            Attribute("suppkey", AttributeType.INTEGER, nullable=False),
            Attribute("name", AttributeType.STRING, nullable=False),
            Attribute("address", AttributeType.STRING, nullable=False),
            Attribute("nationkey", AttributeType.INTEGER, nullable=False),
            Attribute("phone", AttributeType.STRING, nullable=False),
            Attribute("acctbal", AttributeType.FLOAT, nullable=False),
            Attribute("comment", AttributeType.STRING, nullable=False),
        ],
    )


def _schema_customer() -> RelationSchema:
    return RelationSchema(
        "customer",
        [
            Attribute("custkey", AttributeType.INTEGER, nullable=False),
            Attribute("name", AttributeType.STRING, nullable=False),
            Attribute("address", AttributeType.STRING, nullable=False),
            Attribute("nationkey", AttributeType.INTEGER, nullable=False),
            Attribute("phone", AttributeType.STRING, nullable=False),
            Attribute("acctbal", AttributeType.FLOAT, nullable=False),
            Attribute("mktsegment", AttributeType.STRING, nullable=False),
            Attribute("comment", AttributeType.STRING, nullable=False),
        ],
    )


def _schema_part() -> RelationSchema:
    return RelationSchema(
        "part",
        [
            Attribute("partkey", AttributeType.INTEGER, nullable=False),
            Attribute("name", AttributeType.STRING, nullable=False),
            Attribute("mfgr", AttributeType.STRING, nullable=False),
            Attribute("brand", AttributeType.STRING, nullable=False),
            Attribute("type", AttributeType.STRING, nullable=False),
            Attribute("size", AttributeType.INTEGER, nullable=False),
            Attribute("container", AttributeType.STRING, nullable=False),
            Attribute("retailprice", AttributeType.FLOAT, nullable=False),
            Attribute("comment", AttributeType.STRING, nullable=False),
        ],
    )


def _schema_partsupp() -> RelationSchema:
    return RelationSchema(
        "partsupp",
        [
            Attribute("partkey", AttributeType.INTEGER, nullable=False),
            Attribute("suppkey", AttributeType.INTEGER, nullable=False),
            Attribute("availqty", AttributeType.INTEGER, nullable=False),
            Attribute("supplycost", AttributeType.FLOAT, nullable=False),
            Attribute("comment", AttributeType.STRING, nullable=False),
        ],
    )


def _schema_orders() -> RelationSchema:
    return RelationSchema(
        "orders",
        [
            Attribute("orderkey", AttributeType.INTEGER, nullable=False),
            Attribute("custkey", AttributeType.INTEGER, nullable=False),
            Attribute("orderstatus", AttributeType.STRING, nullable=False),
            Attribute("totalprice", AttributeType.FLOAT, nullable=False),
            Attribute("orderdate", AttributeType.STRING, nullable=False),
            Attribute("orderpriority", AttributeType.STRING, nullable=False),
            Attribute("clerk", AttributeType.STRING, nullable=False),
            Attribute("shippriority", AttributeType.INTEGER, nullable=False),
            Attribute("comment", AttributeType.STRING, nullable=False),
        ],
    )


def _schema_lineitem() -> RelationSchema:
    return RelationSchema(
        "lineitem",
        [
            Attribute("orderkey", AttributeType.INTEGER, nullable=False),
            Attribute("partkey", AttributeType.INTEGER, nullable=False),
            Attribute("suppkey", AttributeType.INTEGER, nullable=False),
            Attribute("linenumber", AttributeType.INTEGER, nullable=False),
            Attribute("quantity", AttributeType.INTEGER, nullable=False),
            Attribute("extendedprice", AttributeType.FLOAT, nullable=False),
            Attribute("discount", AttributeType.FLOAT, nullable=False),
            Attribute("tax", AttributeType.FLOAT, nullable=False),
            Attribute("returnflag", AttributeType.STRING, nullable=False),
            Attribute("linestatus", AttributeType.STRING, nullable=False),
            Attribute("shipdate", AttributeType.STRING, nullable=False),
            Attribute("commitdate", AttributeType.STRING, nullable=False),
            Attribute("receiptdate", AttributeType.STRING, nullable=False),
            Attribute("shipinstruct", AttributeType.STRING, nullable=False),
            Attribute("shipmode", AttributeType.STRING, nullable=False),
            Attribute("comment", AttributeType.STRING, nullable=False),
        ],
    )


# ----------------------------------------------------------------------
# Row streams (one dedicated child RNG each, consumed in row order)
# ----------------------------------------------------------------------
def _rows_region(preset: TpchScale, seed: int) -> Iterator[tuple[Any, ...]]:
    rng = child_rng(seed, "region")
    for key, name in enumerate(text.REGION_NAMES):
        yield (key, name, text.comment(rng, 8))


def _rows_nation(preset: TpchScale, seed: int) -> Iterator[tuple[Any, ...]]:
    rng = child_rng(seed, "nation")
    for key, name in enumerate(text.NATION_NAMES):
        yield (key, name, text.NATION_REGION[key], text.comment(rng, 8))


def _rows_supplier(preset: TpchScale, seed: int) -> Iterator[tuple[Any, ...]]:
    rng = child_rng(seed, "supplier")
    count = preset.rows(_BASE_SUPPLIERS)
    for key in range(1, count + 1):
        nation = rng.randrange(25)
        yield (
            key,
            f"Supplier#{key:09d}",
            text.address(rng),
            nation,
            text.phone(rng, nation),
            round(rng.uniform(-999.99, 9999.99), 2),
            text.comment(rng, 10),
        )


def _rows_customer(preset: TpchScale, seed: int) -> Iterator[tuple[Any, ...]]:
    rng = child_rng(seed, "customer")
    count = preset.rows(_BASE_CUSTOMERS)
    for key in range(1, count + 1):
        nation = rng.randrange(25)
        yield (
            key,
            f"Customer#{key:09d}",
            text.address(rng),
            nation,
            text.phone(rng, nation),
            round(rng.uniform(-999.99, 9999.99), 2),
            rng.choice(text.SEGMENTS),
            text.comment(rng, 12),
        )


def _rows_part(preset: TpchScale, seed: int) -> Iterator[tuple[Any, ...]]:
    rng = child_rng(seed, "part")
    count = preset.rows(_BASE_PARTS)
    for key in range(1, count + 1):
        mfgr = rng.randint(1, 5)
        # DBGEN part names collide occasionally; deriving from the key
        # keeps name → mfgr exact, matching the fast Table 5 row.
        name = f"{text.part_name(rng)} #{key}"
        yield (
            key,
            name,
            f"Manufacturer#{mfgr}",
            f"Brand#{mfgr}{rng.randint(1, 5)}",
            rng.choice(text.PART_TYPES),
            rng.randint(1, 50),
            rng.choice(text.CONTAINERS),
            round(900 + (key % 1000) + rng.uniform(0, 100), 2),
            text.comment(rng, 6),
        )


def _rows_partsupp(preset: TpchScale, seed: int) -> Iterator[tuple[Any, ...]]:
    rng = child_rng(seed, "partsupp")
    parts = preset.rows(_BASE_PARTS)
    suppliers = preset.rows(_BASE_SUPPLIERS)
    for partkey in range(1, parts + 1):
        for slot in range(_SUPPLIERS_PER_PART):
            suppkey = _part_supplier(partkey, slot, suppliers)
            yield (
                partkey,
                suppkey,
                rng.randint(1, 9999),
                round(rng.uniform(1.0, 1000.0), 2),
                text.comment(rng, 10),
            )


def _rows_orders(preset: TpchScale, seed: int) -> Iterator[tuple[Any, ...]]:
    rng = child_rng(seed, "orders")
    customers = preset.rows(_BASE_CUSTOMERS)
    count = preset.rows(_BASE_ORDERS)
    clerks = max(1, count // 1000)
    for key in range(1, count + 1):
        year = rng.randint(1992, 1998)
        yield (
            key,
            rng.randint(1, customers),
            rng.choice(_STATUSES),
            round(rng.uniform(800.0, 500000.0), 2),
            f"{year}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
            rng.choice(text.PRIORITIES),
            f"Clerk#{rng.randint(1, clerks):09d}",
            0,
            text.comment(rng, 10),
        )


def _rows_lineitem(preset: TpchScale, seed: int) -> Iterator[tuple[Any, ...]]:
    rng = child_rng(seed, "lineitem")
    orders = preset.rows(_BASE_ORDERS)
    parts = preset.rows(_BASE_PARTS)
    suppliers = preset.rows(_BASE_SUPPLIERS)
    for orderkey in range(1, orders + 1):
        for linenumber in range(1, rng.randint(1, 2 * _BASE_LINEITEMS_PER_ORDER - 1) + 1):
            partkey = rng.randint(1, parts)
            # The paper's violated FD: partkey alone does not determine
            # suppkey because each part has four eligible suppliers.
            suppkey = _part_supplier(partkey, rng.randrange(_SUPPLIERS_PER_PART), suppliers)
            year = rng.randint(1992, 1998)
            ship = f"{year}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
            yield (
                orderkey,
                partkey,
                suppkey,
                linenumber,
                rng.randint(1, 50),
                round(rng.uniform(900.0, 100000.0), 2),
                round(rng.choice([0.0, 0.01, 0.02, 0.05, 0.1]), 2),
                round(rng.choice([0.0, 0.02, 0.04, 0.08]), 2),
                rng.choice(["R", "A", "N"]),
                rng.choice(["O", "F"]),
                ship,
                ship,
                ship,
                rng.choice(text.SHIP_INSTRUCTIONS),
                rng.choice(text.SHIP_MODES),
                text.comment(rng, 6),
            )


def _part_supplier(partkey: int, slot: int, suppliers: int) -> int:
    """The TPC-H part/supplier association: supplier ``slot`` of a part.

    Mirrors DBGEN's formula so ``lineitem`` and ``partsupp`` agree on
    which four suppliers stock each part.
    """
    return ((partkey + slot * ((suppliers // _SUPPLIERS_PER_PART) + 1)) % suppliers) + 1


_SCHEMAS = {
    "customer": _schema_customer,
    "lineitem": _schema_lineitem,
    "nation": _schema_nation,
    "orders": _schema_orders,
    "part": _schema_part,
    "partsupp": _schema_partsupp,
    "region": _schema_region,
    "supplier": _schema_supplier,
}

_ROW_STREAMS = {
    "customer": _rows_customer,
    "lineitem": _rows_lineitem,
    "nation": _rows_nation,
    "orders": _rows_orders,
    "part": _rows_part,
    "partsupp": _rows_partsupp,
    "region": _rows_region,
    "supplier": _rows_supplier,
}
