"""Natural join and decomposition checks (the design layer's verifier).

The BCNF decomposition of :mod:`repro.design.normalize` promises a
*lossless* join: projecting an instance onto the fragments and joining
the projections back must reproduce exactly the original tuples.  That
promise is only testable with a join, so here is one:

* :func:`natural_join` — code-space hash join on the shared attributes
  (cross product when the schemas are disjoint, matching the relational
  definition);
* :func:`join_all` — left-to-right natural join of several relations;
* :func:`is_lossless_decomposition` — the end-to-end check: project,
  join, compare tuple *sets* (decompositions are set-semantics objects;
  duplicates introduced by projection are collapsed).

The join never decodes tuples: each shared attribute's right-side
dictionary is remapped into the left column's code space (one reverse-
map probe per *distinct* right value), the
``hash_join_index`` kernel of the active backend matches rows on int
keys, and output columns are gathered code-to-code.  NULL joins NULL —
the historical value-level behaviour (``None == None``) the join always
had — which code space preserves for free since NULL is a code.

The engine stays deliberately small — joins exist to verify design
output and to let examples reassemble decomposed schemas, not to grow a
general query processor.
"""

from __future__ import annotations

from collections.abc import Sequence

from . import kernels
from .encoding import NULL_CODE, remap_dictionary
from .errors import SchemaError
from .relation import Relation
from .schema import Attribute, RelationSchema

__all__ = ["natural_join", "join_all", "is_lossless_decomposition"]


def natural_join(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """``left ⋈ right`` on all shared attribute names.

    Shared attributes must agree on type.  With no shared attributes
    the result is the cross product.  Output attribute order: all of
    ``left``'s, then ``right``'s non-shared ones; output rows are
    left-major with right matches ascending, identical to the original
    row-at-a-time probe loop (the property suite pins this).
    """
    shared = [a for a in left.attribute_names if a in set(right.attribute_names)]
    for attr in shared:
        left_type = left.schema.attribute(attr).type
        right_type = right.schema.attribute(attr).type
        if left_type is not right_type:
            raise SchemaError(
                f"join attribute {attr!r} has type {left_type.value} on the "
                f"left but {right_type.value} on the right"
            )
    right_only = [a for a in right.attribute_names if a not in set(shared)]

    backend = kernels.get_backend()
    if shared:
        left_keys = []
        right_keys = []
        for attr in shared:
            left_column = left.column(attr)
            right_column = right.column(attr)
            # Unseen right values map to a sentinel and match nothing,
            # exactly like an unseen value key in the retired dict
            # probe (NaN keeps its identity-match dict semantics).
            mapping = remap_dictionary(right_column, left_column)
            left_keys.append(left_column.kernel_codes())
            # NULL stays NULL_CODE: a right NULL joins a left NULL.
            right_keys.append(
                backend.remap_codes(right_column.kernel_codes(), mapping, NULL_CODE)
            )
    else:
        # Disjoint schemas: a constant key makes every pair match, and
        # the kernel's left-major output order is the cross product's.
        left_keys = [[0] * left.num_rows]
        right_keys = [[0] * right.num_rows]
    left_rows, right_rows = backend.hash_join_index(left_keys, right_keys)

    columns = {a: left.column(a).take(left_rows) for a in left.attribute_names}
    for a in right_only:
        columns[a] = right.column(a).take(right_rows)

    attrs = [
        left.schema.attribute(a) if a in set(left.attribute_names)
        else right.schema.attribute(a)
        for a in columns
    ]
    schema = RelationSchema(
        name or f"{left.name}_join_{right.name}",
        [Attribute(a.name, a.type, nullable=a.nullable) for a in attrs],
    )
    return Relation(schema, columns, len(left_rows))


def join_all(relations: Sequence[Relation], name: str | None = None) -> Relation:
    """Left-to-right natural join of ``relations`` (at least one)."""
    if not relations:
        raise SchemaError("join_all needs at least one relation")
    result = relations[0]
    for other in relations[1:]:
        result = natural_join(result, other)
    if name is not None:
        result = result.rename(name)
    return result


def is_lossless_decomposition(
    relation: Relation, fragments: Sequence[Sequence[str]]
) -> bool:
    """Whether projecting onto ``fragments`` and joining reproduces ``relation``.

    Set semantics: both sides are compared as tuple sets over the
    original attribute order.  Fragments must cover every attribute.
    """
    covered = set().union(*(set(f) for f in fragments)) if fragments else set()
    if covered != set(relation.attribute_names):
        raise SchemaError(
            f"fragments cover {sorted(covered)}, "
            f"schema has {sorted(relation.attribute_names)}"
        )
    projections = [
        relation.project(list(fragment), distinct=True) for fragment in fragments
    ]
    joined = join_all(projections)
    order = list(relation.attribute_names)
    rejoined = {
        tuple(row[joined.attribute_names.index(a)] for a in order)
        for row in joined.rows()
    }
    original = set(relation.rows())
    return rejoined == original
