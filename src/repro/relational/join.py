"""Natural join and decomposition checks (the design layer's verifier).

The BCNF decomposition of :mod:`repro.design.normalize` promises a
*lossless* join: projecting an instance onto the fragments and joining
the projections back must reproduce exactly the original tuples.  That
promise is only testable with a join, so here is one:

* :func:`natural_join` — hash join on the shared attributes (cross
  product when the schemas are disjoint, matching the relational
  definition);
* :func:`join_all` — left-to-right natural join of several relations;
* :func:`is_lossless_decomposition` — the end-to-end check: project,
  join, compare tuple *sets* (decompositions are set-semantics objects;
  duplicates introduced by projection are collapsed).

The engine stays deliberately small — joins exist to verify design
output and to let examples reassemble decomposed schemas, not to grow a
general query processor.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from .errors import SchemaError
from .relation import Relation
from .schema import Attribute, RelationSchema

__all__ = ["natural_join", "join_all", "is_lossless_decomposition"]


def natural_join(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """``left ⋈ right`` on all shared attribute names.

    Shared attributes must agree on type.  With no shared attributes
    the result is the cross product.  Output attribute order: all of
    ``left``'s, then ``right``'s non-shared ones.
    """
    shared = [a for a in left.attribute_names if a in set(right.attribute_names)]
    for attr in shared:
        left_type = left.schema.attribute(attr).type
        right_type = right.schema.attribute(attr).type
        if left_type is not right_type:
            raise SchemaError(
                f"join attribute {attr!r} has type {left_type.value} on the "
                f"left but {right_type.value} on the right"
            )
    right_only = [a for a in right.attribute_names if a not in set(shared)]

    # Hash the smaller input on the shared key.
    build_rows: dict[tuple[Any, ...], list[int]] = {}
    right_columns = {a: right.column_values(a) for a in right.attribute_names}
    for row in range(right.num_rows):
        key = tuple(right_columns[a][row] for a in shared)
        build_rows.setdefault(key, []).append(row)

    left_columns = {a: left.column_values(a) for a in left.attribute_names}
    out_columns: dict[str, list[Any]] = {
        a: [] for a in (*left.attribute_names, *right_only)
    }
    for row in range(left.num_rows):
        key = tuple(left_columns[a][row] for a in shared)
        matches = build_rows.get(key, () if shared else None)
        if matches is None:  # disjoint schemas: cross product
            matches = range(right.num_rows)
        for other in matches:
            for a in left.attribute_names:
                out_columns[a].append(left_columns[a][row])
            for a in right_only:
                out_columns[a].append(right_columns[a][other])

    attrs = [
        left.schema.attribute(a) if a in set(left.attribute_names)
        else right.schema.attribute(a)
        for a in out_columns
    ]
    schema = RelationSchema(
        name or f"{left.name}_join_{right.name}",
        [Attribute(a.name, a.type, nullable=a.nullable) for a in attrs],
    )
    return Relation.from_columns(schema, out_columns, validate=False)


def join_all(relations: Sequence[Relation], name: str | None = None) -> Relation:
    """Left-to-right natural join of ``relations`` (at least one)."""
    if not relations:
        raise SchemaError("join_all needs at least one relation")
    result = relations[0]
    for other in relations[1:]:
        result = natural_join(result, other)
    if name is not None:
        result = result.rename(name)
    return result


def is_lossless_decomposition(
    relation: Relation, fragments: Sequence[Sequence[str]]
) -> bool:
    """Whether projecting onto ``fragments`` and joining reproduces ``relation``.

    Set semantics: both sides are compared as tuple sets over the
    original attribute order.  Fragments must cover every attribute.
    """
    covered = set().union(*(set(f) for f in fragments)) if fragments else set()
    if covered != set(relation.attribute_names):
        raise SchemaError(
            f"fragments cover {sorted(covered)}, "
            f"schema has {sorted(relation.attribute_names)}"
        )
    projections = [
        relation.project(list(fragment), distinct=True) for fragment in fragments
    ]
    joined = join_all(projections)
    order = list(relation.attribute_names)
    rejoined = {
        tuple(row[joined.attribute_names.index(a)] for a in order)
        for row in joined.rows()
    }
    original = set(relation.rows())
    return rejoined == original
