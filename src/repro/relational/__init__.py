"""In-memory relational substrate (system S1 in DESIGN.md).

The paper's prototype sits on MySQL; this package is our from-scratch
replacement: a small, column-oriented relational engine whose core
primitive is exactly what the CB repair method needs — counting distinct
projections (``|π_X(r)|``) and partitioning rows into the X-clusterings
of Definition 5.

Public entry points:

* :class:`Relation`, :class:`RelationSchema`, :class:`Attribute`,
  :class:`AttributeType` — data model;
* :class:`Partition` — position-list clusterings;
* :class:`StrippedPartition` — TANE's singleton-free hot-path form;
* :class:`Catalog` — named relations + declared FDs, with persistence;
* :mod:`~repro.relational.expr` — the typed predicate IR selection,
  SQL, joins and evidence scans share (PR 4);
* :func:`load_csv` / :func:`save_csv` — interchange.
"""

from . import expr
from .catalog import Catalog
from .csvio import dumps_csv, load_csv, loads_csv, save_csv
from .delta import DeltaStream, GroupTracker
from .encoding import NULL_CODE, EncodedColumn
from .errors import (
    ArityError,
    DuplicateAttributeError,
    DuplicateRelationError,
    NullValueError,
    ReproError,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
    UnknownRelationError,
)
from .join import is_lossless_decomposition, join_all, natural_join
from .partition import Partition, StrippedPartition
from .relation import Relation
from .schema import Attribute, RelationSchema
from .statistics import RelationStatistics
from .types import NULL, AttributeType, infer_type

__all__ = [
    "Attribute",
    "AttributeType",
    "ArityError",
    "Catalog",
    "DeltaStream",
    "DuplicateAttributeError",
    "DuplicateRelationError",
    "EncodedColumn",
    "GroupTracker",
    "NULL",
    "NULL_CODE",
    "NullValueError",
    "Partition",
    "StrippedPartition",
    "Relation",
    "RelationSchema",
    "RelationStatistics",
    "ReproError",
    "SchemaError",
    "TypeMismatchError",
    "UnknownAttributeError",
    "UnknownRelationError",
    "dumps_csv",
    "expr",
    "infer_type",
    "is_lossless_decomposition",
    "join_all",
    "load_csv",
    "natural_join",
    "loads_csv",
    "save_csv",
]
