"""Typed expression/predicate IR with a vectorized evaluator.

Until PR 4, every query-shaped path in the codebase — the SQL
executor's ``WHERE``, :meth:`Relation.select`, the CQA predicates —
took an opaque ``Callable[[dict], bool]`` and evaluated it per row over
materialized row dicts.  This module replaces that contract with a
small *inspectable* IR (column refs, literals, arithmetic, comparisons,
``IN``, ``IS NULL``, AND/OR/NOT) plus two evaluators:

* :func:`evaluate_predicate` / :func:`evaluate_operand` — the scalar
  reference semantics, one row at a time over a ``{attribute: value}``
  mapping.  This *is* the retained row-dict oracle the property suite
  compares against.
* :func:`predicate_mask` / :func:`filter_rows` — the columnar
  evaluator.  Leaves are evaluated over *encoded code columns* through
  the active kernel backend (:mod:`repro.relational.kernels`), so on
  the numpy backend a predicate becomes a handful of array ops and
  most predicates never touch raw values:

  - equality / ``IN`` against literals resolve to *code space* through
    the column dictionary (one reverse-map probe, then an int compare
    over the code vector);
  - every other single-column leaf (order comparisons, arithmetic,
    negated shapes) is evaluated once per *dictionary entry* with the
    scalar oracle — O(cardinality) scalar evaluations — and gathered
    onto the rows as a boolean table lookup;
  - column-vs-column equality remaps one side's dictionary into the
    other's code space and compares codes;
  - only multi-column order comparisons fall back to a per-row scalar
    loop.

  AND/OR/NOT combine masks elementwise, which matches the scalar
  semantics exactly because the semantics is two-valued: a comparison
  involving NULL is *false* (never unknown), so ``NOT (A = 3)`` is
  *true* on a NULL row — mirroring the SQL layer's historical
  behaviour, which the oracle pins.

NULL semantics, precisely:

* comparisons (``=  <>  <  <=  >  >=``) with a NULL operand are false;
* ``x IN (…)`` is false when ``x`` is NULL, and NULL elements of the
  list never match;
* ``IS [NOT] NULL`` is the only NULL-asserting predicate;
* arithmetic over NULL yields NULL (which then fails any comparison).

Ordering comparisons between incomparable values (e.g. ``'a' < 3``)
raise :class:`ExpressionError`, as does division by zero.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any, Union

from . import kernels, parallel
from .encoding import NULL_CODE, UNSEEN_CODE, remap_dictionary
from .errors import ReproError

__all__ = [
    "And",
    "Arith",
    "Cmp",
    "Col",
    "ExpressionError",
    "InList",
    "IsNull",
    "Lit",
    "Not",
    "Operand",
    "Or",
    "Predicate",
    "and_",
    "as_row_callable",
    "col",
    "columns_of",
    "eq",
    "evaluate_operand",
    "evaluate_predicate",
    "filter_rows",
    "ge",
    "gt",
    "in_",
    "is_null",
    "is_predicate",
    "le",
    "lit",
    "lt",
    "ne",
    "not_",
    "or_",
    "predicate_mask",
]


class ExpressionError(ReproError):
    """A structurally valid expression cannot be evaluated."""


# ----------------------------------------------------------------------
# IR nodes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Col:
    """A reference to an attribute by name."""

    name: str


@dataclass(frozen=True)
class Lit:
    """A constant value (``None`` is the SQL NULL)."""

    value: Any


@dataclass(frozen=True)
class Arith:
    """``left <op> right`` with op ∈ {+, -, *, /}; NULL propagates."""

    op: str
    left: "Operand"
    right: "Operand"


Operand = Union[Col, Lit, Arith]


@dataclass(frozen=True)
class Cmp:
    """``left <op> right`` with op ∈ {=, <>, <, <=, >, >=}."""

    op: str
    left: Operand
    right: Operand


@dataclass(frozen=True)
class InList:
    """``operand IN (values…)``; NULL never matches on either side."""

    operand: Operand
    values: tuple[Any, ...]


@dataclass(frozen=True)
class IsNull:
    """``operand IS [NOT] NULL``."""

    operand: Operand
    negated: bool = False


@dataclass(frozen=True)
class Not:
    """Logical negation (two-valued)."""

    operand: "Predicate"


@dataclass(frozen=True)
class And:
    """Logical conjunction."""

    left: "Predicate"
    right: "Predicate"


@dataclass(frozen=True)
class Or:
    """Logical disjunction."""

    left: "Predicate"
    right: "Predicate"


Predicate = Union[Cmp, InList, IsNull, Not, And, Or]

_CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")
_ARITH_OPS = ("+", "-", "*", "/")


# ----------------------------------------------------------------------
# Construction sugar
# ----------------------------------------------------------------------
def col(name: str) -> Col:
    """A column reference."""
    return Col(name)


def lit(value: Any) -> Lit:
    """A literal constant."""
    return Lit(value)


def _operand(value: Any) -> Operand:
    """Wrap plain Python values as literals; pass IR operands through."""
    if isinstance(value, (Col, Lit, Arith)):
        return value
    return Lit(value)


def eq(left: Any, right: Any) -> Cmp:
    """``left = right``."""
    return Cmp("=", _operand(left), _operand(right))


def ne(left: Any, right: Any) -> Cmp:
    """``left <> right``."""
    return Cmp("<>", _operand(left), _operand(right))


def lt(left: Any, right: Any) -> Cmp:
    """``left < right``."""
    return Cmp("<", _operand(left), _operand(right))


def le(left: Any, right: Any) -> Cmp:
    """``left <= right``."""
    return Cmp("<=", _operand(left), _operand(right))


def gt(left: Any, right: Any) -> Cmp:
    """``left > right``."""
    return Cmp(">", _operand(left), _operand(right))


def ge(left: Any, right: Any) -> Cmp:
    """``left >= right``."""
    return Cmp(">=", _operand(left), _operand(right))


def in_(operand: Any, values: Iterable[Any]) -> InList:
    """``operand IN (values…)``."""
    return InList(_operand(operand), tuple(values))


def is_null(operand: Any, negated: bool = False) -> IsNull:
    """``operand IS [NOT] NULL``."""
    return IsNull(_operand(operand), negated)


def and_(first: Predicate, *rest: Predicate) -> Predicate:
    """Left-associated conjunction of one or more predicates."""
    result = first
    for pred in rest:
        result = And(result, pred)
    return result


def or_(first: Predicate, *rest: Predicate) -> Predicate:
    """Left-associated disjunction of one or more predicates."""
    result = first
    for pred in rest:
        result = Or(result, pred)
    return result


def not_(operand: Predicate) -> Not:
    """Logical negation."""
    return Not(operand)


# ----------------------------------------------------------------------
# Introspection
# ----------------------------------------------------------------------
def columns_of(expr: Any) -> tuple[str, ...]:
    """Attribute names referenced by ``expr``, in first-appearance order."""
    seen: list[str] = []

    def walk(node: Any) -> None:
        if isinstance(node, Col):
            if node.name not in seen:
                seen.append(node.name)
        elif isinstance(node, Lit):
            pass
        elif isinstance(node, (Arith, Cmp)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, InList):
            walk(node.operand)
        elif isinstance(node, IsNull):
            walk(node.operand)
        elif isinstance(node, Not):
            walk(node.operand)
        elif isinstance(node, (And, Or)):
            walk(node.left)
            walk(node.right)
        else:
            raise ExpressionError(f"not an expression node: {node!r}")

    walk(expr)
    return tuple(seen)


def is_predicate(expr: Any) -> bool:
    """Whether ``expr`` is a predicate-typed IR node."""
    return isinstance(expr, (Cmp, InList, IsNull, Not, And, Or))


# ----------------------------------------------------------------------
# Scalar evaluation (the retained row-dict oracle)
# ----------------------------------------------------------------------
def evaluate_operand(expr: Operand, row: Mapping[str, Any]) -> Any:
    """Value of an operand expression on one row (``None`` = NULL)."""
    if isinstance(expr, Col):
        try:
            return row[expr.name]
        except KeyError:
            raise ExpressionError(f"unknown column {expr.name!r}") from None
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Arith):
        left = evaluate_operand(expr.left, row)
        right = evaluate_operand(expr.right, row)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left / right
        except TypeError:
            raise ExpressionError(
                f"cannot compute {left!r} {expr.op} {right!r}"
            ) from None
        except ZeroDivisionError:
            raise ExpressionError(f"division by zero: {left!r} / {right!r}") from None
        raise ExpressionError(f"unknown arithmetic operator {expr.op!r}")
    raise ExpressionError(f"cannot evaluate {expr!r} as an operand")


def evaluate_predicate(expr: Predicate, row: Mapping[str, Any]) -> bool:
    """Truth of a predicate on one row (two-valued; NULL comparisons false).

    This is the reference semantics the columnar evaluator is
    property-tested against — byte-compatible with the SQL executor's
    historical row-dict interpreter.
    """
    if isinstance(expr, Cmp):
        left = evaluate_operand(expr.left, row)
        right = evaluate_operand(expr.right, row)
        if left is None or right is None:
            return False
        try:
            if expr.op == "=":
                return bool(left == right)
            if expr.op == "<>":
                return bool(left != right)
            if expr.op == "<":
                return bool(left < right)
            if expr.op == "<=":
                return bool(left <= right)
            if expr.op == ">":
                return bool(left > right)
            if expr.op == ">=":
                return bool(left >= right)
        except TypeError:
            raise ExpressionError(
                f"cannot compare {left!r} and {right!r} with {expr.op}"
            ) from None
        raise ExpressionError(f"unknown comparison operator {expr.op!r}")
    if isinstance(expr, InList):
        value = evaluate_operand(expr.operand, row)
        if value is None:
            return False
        return any(item is not None and value == item for item in expr.values)
    if isinstance(expr, IsNull):
        value = evaluate_operand(expr.operand, row)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, Not):
        return not evaluate_predicate(expr.operand, row)
    if isinstance(expr, And):
        return evaluate_predicate(expr.left, row) and evaluate_predicate(
            expr.right, row
        )
    if isinstance(expr, Or):
        return evaluate_predicate(expr.left, row) or evaluate_predicate(
            expr.right, row
        )
    raise ExpressionError(f"cannot evaluate {expr!r} as a predicate")


def as_row_callable(expr: Predicate):
    """Adapt an IR predicate to the legacy ``Callable[[dict], bool]`` shape."""

    def call(row: Mapping[str, Any]) -> bool:
        return evaluate_predicate(expr, row)

    return call


# ----------------------------------------------------------------------
# Columnar evaluation
# ----------------------------------------------------------------------
def predicate_mask(relation, expr: Predicate):
    """Boolean row mask of ``expr`` over ``relation``.

    The mask lives in the active backend's preferred representation
    (``list[bool]`` on the python backend, a boolean ``ndarray`` on
    numpy); :func:`filter_rows` converts it to selected row indices.

    Error semantics match the scalar oracle *including short-circuit
    reachability*: a row whose evaluation would raise under the
    left-to-right, short-circuiting scalar walk (an incomparable order
    comparison, an unknown column) raises here too — and a row where
    the erroring leaf is unreachable (the other AND conjunct is
    already false, the other OR disjunct already true) does not.
    Internally every subtree yields a truth mask plus an optional
    *error mask*; errors stay lazily masked until the end, and the
    first reachable erroring row is re-evaluated with the scalar
    oracle so the raised message is the oracle's own.
    """
    backend = kernels.get_backend()
    truth, error = _root_mask(relation, expr, backend)
    if error is not None and backend.mask_any(error):
        row = backend.filter_mask(error)[0]
        _raise_for_row(relation, expr, int(row))
    return truth


def filter_rows(relation, expr: Predicate) -> Sequence[int]:
    """Indices of the rows satisfying ``expr``, ascending."""
    backend = kernels.get_backend()
    return backend.filter_mask(predicate_mask(relation, expr))


def _raise_for_row(relation, expr: Predicate, row: int) -> None:
    """Re-raise the scalar oracle's exact error for one erroring row."""
    values = {}
    for name in columns_of(expr):
        try:
            values[name] = relation.column(name).value(row)
        except Exception:
            pass  # unknown column: the scalar evaluator reports it
    evaluate_predicate(expr, values)
    raise ExpressionError(  # pragma: no cover - defensive
        f"row {row} failed columnar evaluation but not the scalar oracle"
    )


#: Below this row count a chunked mask cannot repay pool dispatch; the
#: oracle suite lowers it to force the parallel path on tiny relations.
_PARALLEL_ROW_FLOOR = 4096


class _ColumnSlice:
    """A row-range view of a column (thread-pool mask workers).

    Delegates the dictionary and reverse map to the base column (shared
    state is fine: the reverse map is a lazily memoized pure function),
    slicing only the per-row surfaces the mask evaluator touches.
    """

    __slots__ = ("_base", "_lo", "_hi")

    def __init__(self, base, lo: int, hi: int) -> None:
        self._base = base
        self._lo = lo
        self._hi = hi

    @property
    def dictionary(self):
        return self._base.dictionary

    def code_for(self, value):
        return self._base.code_for(value)

    def kernel_codes(self):
        return self._base.kernel_codes()[self._lo : self._hi]

    def value(self, row: int):
        return self._base.value(self._lo + row)


class _RelationSlice:
    """A row-range view of a relation for one mask chunk."""

    __slots__ = ("_base", "_lo", "num_rows")

    def __init__(self, base, lo: int, hi: int) -> None:
        self._base = base
        self._lo = lo
        self.num_rows = hi - lo

    @property
    def schema(self):
        return self._base.schema

    def column(self, name: str):
        return _ColumnSlice(self._base.column(name), self._lo, self._lo + self.num_rows)


class _ShippedColumn:
    """A column chunk rebuilt in a process-pool worker.

    Holds a shared-memory view of the chunk's codes plus the pickled
    dictionary; :meth:`code_for` and :meth:`value` mirror
    :class:`~repro.relational.encoding.EncodedColumn` exactly (NULL →
    ``NULL_CODE``, lazy reverse map), so dictionary probes resolve the
    same codes the parent would.
    """

    __slots__ = ("_codes", "dictionary", "_value_to_code")

    def __init__(self, codes, dictionary) -> None:
        self._codes = codes
        self.dictionary = dictionary
        self._value_to_code = None

    def code_for(self, value):
        if value is None:
            return NULL_CODE
        if self._value_to_code is None:
            self._value_to_code = {
                v: code for code, v in enumerate(self.dictionary)
            }
        return self._value_to_code.get(value)

    def kernel_codes(self):
        return self._codes

    def value(self, row: int):
        code = int(self._codes[row])
        if code == NULL_CODE:
            return None
        return self.dictionary[code]


class _ShippedSchema:
    __slots__ = ("_names",)

    def __init__(self, names) -> None:
        self._names = names

    def position(self, name: str) -> int:
        return self._names.index(name)  # ValueError for unknown columns


class _ShippedRelation:
    """A relation chunk rebuilt in a process-pool worker: only the
    columns the predicate references, as shared-memory code views."""

    __slots__ = ("num_rows", "_columns", "schema")

    def __init__(self, num_rows: int, columns: dict) -> None:
        self.num_rows = num_rows
        self._columns = columns
        self.schema = _ShippedSchema(tuple(columns))

    def column(self, name: str):
        return self._columns[name]


def _mask_chunk_local(arrays, payload, bounds):
    """Thread-pool worker: one row-range chunk of the mask."""
    relation, expr, backend = payload
    lo, hi = bounds
    return _mask(_RelationSlice(relation, lo, hi), expr, backend)


def _mask_chunk_shm(arrays, payload, bounds):
    """Process-pool worker: one chunk off shared-memory code views."""
    backend_name, expr, cols_meta = payload
    backend = kernels.backend_module(backend_name)
    lo, hi = bounds
    columns = {
        name: _ShippedColumn(arrays[slot][lo:hi], dictionary)
        for name, (slot, dictionary) in cols_meta.items()
    }
    return _mask(_ShippedRelation(hi - lo, columns), expr, backend)


def _root_mask(relation, expr: Predicate, backend):
    """``_mask`` at the relation root, chunk-parallel when enabled.

    Rows split into contiguous ranges, one ``_mask`` evaluation per
    chunk, truth/error masks concatenated in chunk order — an exact
    slicing of the serial evaluation, because every mask path is
    elementwise and every dictionary-level probe (reverse maps, truth
    tables, cross-dictionary remaps) is a pure function of the *whole*
    column, which both worker flavours see.  Falls back to the serial
    walk whenever the fan-out cannot pay (small relations, a single
    chunk, unpicklable payloads on the process pool).
    """
    kind = parallel.pool_kind()
    n = relation.num_rows
    if (
        kind == "serial"
        or n < max(_PARALLEL_ROW_FLOOR, 2)
        or not is_predicate(expr)  # let the serial walk raise its error
    ):
        return _mask(relation, expr, backend)
    workers = parallel.effective_workers()
    chunk = -(-n // (workers * 2))
    bounds = [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)]
    if len(bounds) < 2:
        return _mask(relation, expr, backend)
    if kind == "process":
        names = []
        for name in columns_of(expr):
            try:
                relation.schema.position(name)
            except Exception:
                continue  # unknown column: the worker's leaf errors too
            names.append(name)
        dictionaries = {name: relation.column(name).dictionary for name in names}
        if not parallel.picklable(expr, dictionaries):
            return _mask(relation, expr, backend)
        backend_arrays = []
        cols_meta = {}
        for name in names:
            cols_meta[name] = (len(backend_arrays), dictionaries[name])
            backend_arrays.append(
                backend.as_code_array(relation.column(name).kernel_codes())
            )
        parts = parallel.morsel_map(
            _mask_chunk_shm,
            bounds,
            arrays=backend_arrays,
            payload=(kernels.active_backend_name(), expr, cols_meta),
        )
    else:
        parts = parallel.morsel_map(
            _mask_chunk_local, bounds, payload=(relation, expr, backend)
        )
    truth = backend.mask_concat([chunk_truth for chunk_truth, _ in parts])
    if all(chunk_error is None for _, chunk_error in parts):
        return truth, None
    errors = [
        chunk_error if chunk_error is not None else backend.mask_fill(hi - lo, False)
        for (lo, hi), (_, chunk_error) in zip(bounds, parts)
    ]
    return truth, backend.mask_concat(errors)


def _mask(relation, expr: Predicate, backend):
    """``(truth, error)`` masks of a subtree; ``error`` is ``None`` when
    no row of this subtree can raise (the common case, zero overhead).

    Error propagation mirrors short-circuit reachability:
    ``AND`` reaches its right side only where the left is true,
    ``OR`` only where the left is false.
    """
    if isinstance(expr, And):
        l_truth, l_error = _mask(relation, expr.left, backend)
        r_truth, r_error = _mask(relation, expr.right, backend)
        error = _merge_errors(backend, l_error, r_error, l_truth)
        return backend.mask_and(l_truth, r_truth), error
    if isinstance(expr, Or):
        l_truth, l_error = _mask(relation, expr.left, backend)
        r_truth, r_error = _mask(relation, expr.right, backend)
        error = _merge_errors(backend, l_error, r_error, backend.mask_not(l_truth))
        return backend.mask_or(l_truth, r_truth), error
    if isinstance(expr, Not):
        truth, error = _mask(relation, expr.operand, backend)
        return backend.mask_not(truth), error
    if not is_predicate(expr):
        raise ExpressionError(f"cannot evaluate {expr!r} as a predicate")
    return _leaf_mask(relation, expr, backend)


def _merge_errors(backend, left_error, right_error, right_reachable):
    """Combine child error masks: the right child's errors count only
    where the left child made it reachable."""
    if right_error is not None:
        right_error = backend.mask_and(right_error, right_reachable)
        if not backend.mask_any(right_error):
            right_error = None
    if left_error is None:
        return right_error
    if right_error is None:
        return left_error
    return backend.mask_or(left_error, right_error)


def _leaf_mask(relation, expr: Predicate, backend):
    names = columns_of(expr)
    n = relation.num_rows
    for name in names:
        try:
            relation.schema.position(name)
        except Exception:
            # Unknown column: every row of this leaf errors — but only
            # if evaluation actually reaches it (the oracle notices an
            # unknown column per evaluated row, not per query).
            return backend.mask_fill(n, False), backend.mask_fill(n, True)
    if not names:
        # Constant leaf: one scalar evaluation decides every row.
        try:
            return backend.mask_fill(n, evaluate_predicate(expr, {})), None
        except ExpressionError:
            return backend.mask_fill(n, False), backend.mask_fill(n, True)
    if len(names) == 1:
        return _single_column_mask(relation, expr, names[0], backend)
    if (
        isinstance(expr, Cmp)
        and expr.op in ("=", "<>")
        and isinstance(expr.left, Col)
        and isinstance(expr.right, Col)
    ):
        return _column_pair_mask(relation, expr, backend), None
    # Multi-column order comparison / arithmetic: exact scalar loop.
    columns = [relation.column(name) for name in names]
    flags = []
    error_flags = []
    errored = False
    for i in range(n):
        row = {name: column.value(i) for name, column in zip(names, columns)}
        try:
            flags.append(evaluate_predicate(expr, row))
            error_flags.append(False)
        except ExpressionError:
            flags.append(False)
            error_flags.append(True)
            errored = True
    truth = backend.as_mask(flags, n)
    return truth, backend.as_mask(error_flags, n) if errored else None


def _single_column_mask(relation, expr: Predicate, name: str, backend):
    column = relation.column(name)
    codes = column.kernel_codes()
    # Code-space fast paths: the predicate resolves through the
    # dictionary's reverse map and never touches values (and can never
    # raise, so the error mask is None throughout).
    if isinstance(expr, Cmp) and expr.op == "=":
        literal = _plain_eq_literal(expr)
        if literal is not _NO_LITERAL:
            # NULL and NaN literals equal nothing under ``==`` (the
            # dictionary would find NaN by identity; the oracle's
            # comparison must win).
            if literal is None or literal != literal:
                return backend.mask_fill(relation.num_rows, False), None
            code = column.code_for(literal)
            if code is None:
                return backend.mask_fill(relation.num_rows, False), None
            return backend.mask_eq_code(codes, code), None
    if isinstance(expr, InList) and isinstance(expr.operand, Col):
        wanted = set()
        for item in expr.values:
            if item is None or item != item:  # NULL/NaN items never match
                continue
            code = column.code_for(item)
            if code is not None:
                wanted.add(code)
        if not wanted:
            return backend.mask_fill(relation.num_rows, False), None
        return backend.mask_in_codes(codes, frozenset(wanted)), None
    if isinstance(expr, IsNull) and isinstance(expr.operand, Col):
        mask = backend.mask_eq_code(codes, NULL_CODE)
        return (backend.mask_not(mask) if expr.negated else mask), None
    # Dictionary-space general path: evaluate the leaf once per
    # distinct value (plus once for NULL) with the scalar oracle, then
    # gather the boolean table onto the rows.  O(cardinality) scalar
    # evaluations instead of O(rows).  Entries that raise (e.g. an
    # incomparable order comparison) become error-table slots so the
    # raise stays lazy until reachability is known.
    table = []
    error_table = []
    errored = False
    for value in column.dictionary:
        try:
            table.append(evaluate_predicate(expr, {name: value}))
            error_table.append(False)
        except ExpressionError:
            table.append(False)
            error_table.append(True)
            errored = True
    try:
        null_result = evaluate_predicate(expr, {name: None})
        null_error = False
    except ExpressionError:
        null_result = False
        null_error = True
        errored = True
    truth = backend.mask_table_lookup(codes, table, null_result)
    if not errored:
        return truth, None
    return truth, backend.mask_table_lookup(codes, error_table, null_error)


_NO_LITERAL = object()


def _plain_eq_literal(expr: Cmp) -> Any:
    """The literal of a ``Col = Lit`` / ``Lit = Col`` leaf, else sentinel."""
    if isinstance(expr.left, Col) and isinstance(expr.right, Lit):
        return expr.right.value
    if isinstance(expr.left, Lit) and isinstance(expr.right, Col):
        return expr.left.value
    return _NO_LITERAL


def _column_pair_mask(relation, expr: Cmp, backend):
    """``A = B`` / ``A <> B`` between two columns, in code space.

    The right column's dictionary is remapped into the left column's
    code space (one reverse-map probe per *distinct* right value);
    equality then compares codes directly.  NULLs on the right map to a
    sentinel distinct from NULL_CODE, so NULL never equals anything —
    including another NULL — matching the scalar semantics.
    """
    left_col = relation.column(expr.left.name)
    right_col = relation.column(expr.right.name)
    # ``nan_matches=False``: predicate equality follows ``==``, where
    # NaN equals nothing — not even the same NaN object.
    mapping = remap_dictionary(right_col, left_col, nan_matches=False)
    # Right-side NULLs must not compare equal to left-side NULLs (a
    # NULL comparison is false), so they leave code space entirely.
    remapped = backend.remap_codes(right_col.kernel_codes(), mapping, UNSEEN_CODE - 1)
    left_codes = left_col.kernel_codes()
    equal = backend.mask_codes_eq(left_codes, remapped)
    if expr.op == "=":
        # A left NULL (−1) can never equal a remapped right code (≥ 0,
        # −2 or −3), so the equality mask is already NULL-safe.
        return equal
    both_present = backend.mask_and(
        backend.mask_not(backend.mask_eq_code(left_codes, NULL_CODE)),
        backend.mask_not(backend.mask_eq_code(right_col.kernel_codes(), NULL_CODE)),
    )
    return backend.mask_and(backend.mask_not(equal), both_present)
