"""NumPy-vectorized kernels (argsort + run-length grouping on int64).

Same surface as :mod:`.python_backend`, but every hot loop is replaced
by array operations:

* grouping (partition construction, refinement, products) runs as one
  stable sort plus boundary detection instead of dict building;
* multi-column keys are *packed* into a single ``int64`` when the code
  ranges allow it (they essentially always do — spans multiply, and
  ``ids × codes`` stays far under 2⁶³ at any realistic scale), falling
  back to ``np.lexsort`` otherwise;
* distinct counting, the entropy sums, and violating-pair counting are
  reductions over the same sorted-key machinery.

The partition representation is :class:`ArrayStrippedPartition`: the
flat (rows, class-ids) form stored natively as parallel ``int64``
arrays plus a CSR-style offsets vector.  It exposes the full
``StrippedPartition`` interface — iteration yields plain ``list[int]``
classes — so every existing consumer works unchanged, and class order
matches the reference backend's flat-scan order (groups by first
occurrence, rows ascending within a class), keeping downstream witness
enumeration deterministic across backends.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

import numpy as np

from ..partition import Partition, StrippedPartition
from . import python_backend

NAME = "numpy"

_INT = np.int64
#: Packed composite keys must stay well inside int64.
_PACK_LIMIT = 1 << 62


def _as_array(codes: Sequence[int]) -> np.ndarray:
    """Coerce a code column (list or array) to a read-only int64 array."""
    return np.asarray(codes, dtype=_INT)


def column_codes(column) -> np.ndarray:
    """The column's codes as a cached immutable int64 array."""
    arr = column._codes_array
    if arr is None:
        arr = _as_array(column.codes)
        arr.flags.writeable = False
        column._codes_array = arr
    return arr


# ----------------------------------------------------------------------
# Composite-key grouping machinery
# ----------------------------------------------------------------------
def _pack(keys: Sequence[np.ndarray]) -> np.ndarray | None:
    """Pack parallel key arrays into one int64 key, or ``None`` if the
    combined range could overflow (the lexsort fallback handles that)."""
    if len(keys) == 1:
        return keys[0]
    total = 1
    packed: np.ndarray | None = None
    for key in keys:
        lo = int(key.min())
        span = int(key.max()) - lo + 1
        total *= span
        if total > _PACK_LIMIT:
            return None
        shifted = key - lo
        packed = shifted if packed is None else packed * span + shifted
    return packed


def _sorted_key_change(keys: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Stable grouping order and group-boundary flags for composite keys.

    Returns ``(perm, change)``: ``perm`` sorts the elements by key with
    ties in original order, ``change[i]`` marks the first element of
    each group in sorted order.
    """
    m = keys[0].shape[0]
    change = np.empty(m, dtype=bool)
    change[0] = True
    packed = _pack(keys)
    if packed is not None:
        perm = np.argsort(packed, kind="stable")
        sorted_key = packed[perm]
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=change[1:])
    else:
        perm = np.lexsort(tuple(reversed(keys)))
        change[1:] = False
        for key in keys:
            sorted_key = key[perm]
            change[1:] |= sorted_key[1:] != sorted_key[:-1]
    return perm, change


def _group_counts(keys: Sequence[np.ndarray]) -> np.ndarray:
    """Sizes of the groups induced by the composite key (any order)."""
    m = keys[0].shape[0]
    if m == 0:
        return np.zeros(0, dtype=_INT)
    packed = _pack(keys)
    if packed is not None:
        sorted_key = np.sort(packed, kind="stable")
        change = np.empty(m, dtype=bool)
        change[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=change[1:])
    else:
        _, change = _sorted_key_change(keys)
    starts = np.flatnonzero(change)
    return np.diff(np.append(starts, m))


def _distinct(keys: Sequence[np.ndarray]) -> int:
    """Number of distinct composite keys."""
    m = keys[0].shape[0]
    if m == 0:
        return 0
    packed = _pack(keys)
    if packed is not None:
        sorted_key = np.sort(packed, kind="stable")
        return int((sorted_key[1:] != sorted_key[:-1]).sum()) + 1
    _, change = _sorted_key_change(keys)
    return int(change.sum())


# ----------------------------------------------------------------------
# The array-backed stripped partition
# ----------------------------------------------------------------------
class ArrayStrippedPartition:
    """A stripped partition stored natively in flat array form.

    ``rows``/``ids`` are the covered rows and their class ids, class-
    major (class order, ascending row within a class); ``offsets`` is
    the CSR boundary vector (``offsets[c]:offsets[c+1]`` slices class
    ``c`` out of ``rows``).  All counting identities of
    :class:`~repro.relational.partition.StrippedPartition` hold
    unchanged, and the interface is drop-in compatible.
    """

    __slots__ = ("rows", "ids", "offsets", "num_rows", "covered_rows", "_classes")

    def __init__(
        self,
        rows: np.ndarray,
        ids: np.ndarray,
        offsets: np.ndarray,
        num_rows: int,
    ) -> None:
        self.rows = rows
        self.ids = ids
        self.offsets = offsets
        self.num_rows = num_rows
        self.covered_rows = int(rows.shape[0])
        self._classes: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def single_class(cls, num_rows: int) -> "ArrayStrippedPartition":
        """The trivial partition over ``X = ∅`` (stripped)."""
        if num_rows <= 1:
            return _empty(num_rows)
        rows = np.arange(num_rows, dtype=_INT)
        ids = np.zeros(num_rows, dtype=_INT)
        offsets = np.array([0, num_rows], dtype=_INT)
        return cls(rows, ids, offsets, num_rows)

    @classmethod
    def from_codes(cls, codes: Sequence[int]) -> "ArrayStrippedPartition":
        """Stripped partition of rows by one column's value codes."""
        arr = _as_array(codes)
        n = int(arr.shape[0])
        return _regroup(np.arange(n, dtype=_INT), [arr], n)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def refine(self, *code_columns: Sequence[int]) -> "ArrayStrippedPartition":
        """Product with the partition(s) induced by columns, O(covered log).

        Group order mirrors the reference backend exactly: its dense
        path (covered ≥ 0.7·n) scans whole columns in row order, its
        sparse path scans the flat form — so the first-seen order the
        dict loops produce is min-row vs min-flat-position respectively.
        """
        if self.covered_rows == 0:
            return _empty(self.num_rows)
        keys = [self.ids]
        keys.extend(_as_array(codes)[self.rows] for codes in code_columns)
        dense = 10 * self.covered_rows >= 7 * self.num_rows
        return _regroup(self.rows, keys, self.num_rows, order_by_row=dense)

    def refined_error(self, *code_columns: Sequence[int]) -> int:
        """``e(X·A₁…A_k)`` without materializing the product."""
        if self.covered_rows == 0:
            return 0
        keys = [self.ids]
        keys.extend(_as_array(codes)[self.rows] for codes in code_columns)
        return self.covered_rows - _distinct(keys)

    def product(self, other) -> "ArrayStrippedPartition":
        """Stripped product with another partition (either backend)."""
        other_rows, other_ids = _flat_arrays(other)
        if self.covered_rows == 0 or other_rows.shape[0] == 0:
            return _empty(self.num_rows)
        owner = np.full(self.num_rows, -1, dtype=_INT)
        owner[self.rows] = self.ids
        own = owner[other_rows]
        mask = own >= 0
        rows = other_rows[mask]
        if rows.shape[0] == 0:
            return _empty(self.num_rows)
        return _regroup(rows, [other_ids[mask], own[mask]], self.num_rows)

    def to_partition(self) -> Partition:
        """Reattach the implicit singletons, yielding a full partition."""
        classes = [list(cls_rows) for cls_rows in self.classes]
        covered = np.zeros(self.num_rows, dtype=bool)
        covered[self.rows] = True
        classes.extend([int(row)] for row in np.flatnonzero(~covered))
        return Partition(classes, self.num_rows)

    # ------------------------------------------------------------------
    # Counting identities
    # ------------------------------------------------------------------
    def error(self) -> int:
        """TANE's ``e(X) = covered − |classes|``; 0 iff X is a key."""
        return self.covered_rows - self.num_classes

    @property
    def num_distinct(self) -> int:
        """``|π_X(r)| = n − e(X)``: the distinct count the CB measures use."""
        return self.num_rows - self.covered_rows + self.num_classes

    @property
    def num_classes(self) -> int:
        """Number of *stored* (size ≥ 2) classes."""
        return int(self.offsets.shape[0]) - 1

    @property
    def num_singletons(self) -> int:
        """Rows living in implicit singleton classes."""
        return self.num_rows - self.covered_rows

    @property
    def classes(self) -> list[list[int]]:
        """Stored classes as plain row-index lists (lazily materialized)."""
        if self._classes is None:
            rows, offsets = self.rows, self.offsets
            self._classes = [
                rows[offsets[c] : offsets[c + 1]].tolist()
                for c in range(self.num_classes)
            ]
        return self._classes

    def sizes_array(self) -> np.ndarray:
        """Stored class sizes as an int64 array (entropy kernels)."""
        return np.diff(self.offsets)

    def class_sizes(self) -> list[int]:
        """Sizes of the stored classes (singletons excluded)."""
        return np.diff(self.offsets).tolist()

    def class_index_array(self) -> np.ndarray:
        """Per-row class ids; implicit singletons get fresh ids."""
        index = np.full(self.num_rows, -1, dtype=_INT)
        index[self.rows] = self.ids
        mask = index < 0
        singles = int(mask.sum())
        if singles:
            index[mask] = np.arange(
                self.num_classes, self.num_classes + singles, dtype=_INT
            )
        return index

    def class_index(self) -> list[int]:
        """For each row, a class id; implicit singletons get fresh ids."""
        return self.class_index_array().tolist()

    def index_sizes_array(self) -> np.ndarray:
        """Class sizes aligned with :meth:`class_index_array` ids."""
        return np.concatenate(
            [np.diff(self.offsets), np.ones(self.num_singletons, dtype=_INT)]
        )

    def index_sizes(self) -> list[int]:
        """Class sizes aligned with the ids of :meth:`class_index`."""
        return self.index_sizes_array().tolist()

    def __len__(self) -> int:
        return self.num_classes

    def __iter__(self) -> Iterator[list[int]]:
        return iter(self.classes)

    def __repr__(self) -> str:
        return (
            f"ArrayStrippedPartition({self.num_classes} classes over "
            f"{self.covered_rows}/{self.num_rows} rows)"
        )


def _empty(num_rows: int) -> ArrayStrippedPartition:
    return ArrayStrippedPartition(
        np.zeros(0, dtype=_INT),
        np.zeros(0, dtype=_INT),
        np.zeros(1, dtype=_INT),
        num_rows,
    )


def _regroup(
    rows: np.ndarray,
    keys: Sequence[np.ndarray],
    num_rows: int,
    order_by_row: bool = False,
) -> ArrayStrippedPartition:
    """Group ``rows`` by composite key, keeping only groups of size ≥ 2.

    ``rows`` arrive in flat-scan order (row order for construction,
    class-major for refinement); output groups are ordered first-seen —
    by minimal flat position, or by minimal row when ``order_by_row``
    (the reference backend's dense-scan insertion order) — and rows
    within a group keep flat order, exactly matching the dict-insertion
    order of the reference backend's grouping loops.
    """
    m = int(rows.shape[0])
    if m == 0:
        return _empty(num_rows)
    perm, change = _sorted_key_change(keys)
    starts = np.flatnonzero(change)
    counts = np.diff(np.append(starts, m))
    keep = counts >= 2
    if not keep.any():
        return _empty(num_rows)
    kept = np.flatnonzero(keep)
    # Stable sort ⇒ a group's first sorted element has its minimal flat
    # position (and, as flat order is row-ascending within a class, its
    # minimal row); ordering kept groups by it is first-seen order.
    firsts = perm[starts[kept]]
    order = np.argsort(rows[firsts] if order_by_row else firsts, kind="stable")
    kept_in_order = kept[order]
    new_id = np.full(counts.shape[0], -1, dtype=_INT)
    new_id[kept_in_order] = np.arange(kept_in_order.shape[0], dtype=_INT)
    group_of = np.cumsum(change) - 1
    elem_new = new_id[group_of]
    mask = elem_new >= 0
    sel_pos = perm[mask]
    sel_ids = elem_new[mask]
    final = np.argsort(sel_ids, kind="stable")
    sizes = counts[kept_in_order]
    offsets = np.empty(sizes.shape[0] + 1, dtype=_INT)
    offsets[0] = 0
    np.cumsum(sizes, out=offsets[1:])
    return ArrayStrippedPartition(
        rows[sel_pos[final]], sel_ids[final], offsets, num_rows
    )


def as_code_array(codes: Sequence[int]) -> np.ndarray:
    """Public alias of the int64 coercion (the parallel layer's export
    path uses it to ship list-based code columns as arrays)."""
    return _as_array(codes)


def flat_partition_arrays(partition) -> tuple[np.ndarray, np.ndarray]:
    """(rows, class ids) arrays of a partition from either backend."""
    return _flat_arrays(partition)


def refined_error_arrays(
    rows: np.ndarray, ids: np.ndarray, code_columns: Sequence
) -> int:
    """``e(X·A₁…A_k)`` from a partition's flat arrays.

    Exactly :meth:`ArrayStrippedPartition.refined_error` without the
    wrapper object — what TANE's process-pool workers run against
    shared-memory views of the parent's partitions.
    """
    covered = int(rows.shape[0])
    if covered == 0:
        return 0
    keys = [ids]
    keys.extend(_as_array(codes)[rows] for codes in code_columns)
    return covered - _distinct(keys)


def _flat_arrays(partition) -> tuple[np.ndarray, np.ndarray]:
    """(rows, class ids) flat arrays for a partition of either backend."""
    if isinstance(partition, ArrayStrippedPartition):
        return partition.rows, partition.ids
    if isinstance(partition, StrippedPartition):
        flat_rows, flat_ids = partition._flat()
        return _as_array(flat_rows), _as_array(flat_ids)
    # Full Partition: every class is stored, including singletons.
    rows = np.concatenate(
        [np.zeros(0, dtype=_INT)]
        + [_as_array(cls_rows) for cls_rows in partition.classes]
    )
    ids = np.repeat(
        np.arange(len(partition.classes), dtype=_INT),
        [len(cls_rows) for cls_rows in partition.classes],
    )
    return rows, ids


# ----------------------------------------------------------------------
# Dictionary encoding
# ----------------------------------------------------------------------
def factorize(
    values: Iterable[Any],
) -> tuple[list[int], list[Any], dict[Any, int] | None, np.ndarray | None]:
    """First-seen dictionary encoding via ``np.unique`` factorization.

    The vectorized path covers homogeneous ``int`` and ``str`` columns
    (with or without NULLs) — the shapes the generators and CSV reader
    produce.  Mixed-type, ``bool`` and ``float`` columns keep the exact
    reference semantics by falling back to the dict loop (NumPy would
    coerce ``True``/``1`` together and collapse NaNs, changing codes).
    """
    values = values if isinstance(values, list) else list(values)
    if not values:
        return [], [], {}, None
    types = set(map(type, values))
    has_null = type(None) in types
    types.discard(type(None))
    if types == {int} or types == {str}:
        try:
            return _factorize_fast(values, has_null)
        except (OverflowError, TypeError, ValueError):
            pass  # e.g. ints beyond int64: the reference loop handles them
    return python_backend.factorize(values)


def _factorize_fast(
    values: list[Any], has_null: bool
) -> tuple[list[int], list[Any], dict[Any, int] | None, np.ndarray]:
    if has_null:
        non_null = [v for v in values if v is not None]
        if not non_null:
            codes = np.full(len(values), -1, dtype=_INT)
            codes.flags.writeable = False
            return codes.tolist(), [], {}, codes
        arr = np.asarray(non_null)
    else:
        arr = np.asarray(values)
    if arr.dtype == object:
        raise TypeError("mixed-type column; use the reference loop")
    if arr.dtype.kind == "U":
        # Fixed-width unicode storage treats trailing NULs as padding:
        # '\x00' would round-trip as '' and collapse with it.  Punt
        # such (pathological) columns to the reference loop.
        non_null = non_null if has_null else values
        if any(v and v[-1] == "\x00" for v in non_null):
            raise TypeError("NUL-padded strings; use the reference loop")
    uniques, first_pos, inverse = np.unique(arr, return_index=True, return_inverse=True)
    order = np.argsort(first_pos, kind="stable")
    rank = np.empty(uniques.shape[0], dtype=_INT)
    rank[order] = np.arange(uniques.shape[0], dtype=_INT)
    dictionary = uniques[order].tolist()
    if has_null:
        codes = np.full(len(values), -1, dtype=_INT)
        mask = np.fromiter(
            (v is not None for v in values), dtype=bool, count=len(values)
        )
        codes[mask] = rank[inverse]
    else:
        codes = rank[inverse].astype(_INT, copy=False)
    codes.flags.writeable = False
    value_to_code = {value: code for code, value in enumerate(dictionary)}
    return codes.tolist(), dictionary, value_to_code, codes


# ----------------------------------------------------------------------
# Stripped partitions (module-level constructors, backend surface)
# ----------------------------------------------------------------------
def stripped_single_class(num_rows: int) -> ArrayStrippedPartition:
    """π_∅ (stripped): one class holding every row."""
    return ArrayStrippedPartition.single_class(num_rows)


def stripped_from_codes(codes: Sequence[int]) -> ArrayStrippedPartition:
    """Stripped partition of rows by one column's value codes."""
    return ArrayStrippedPartition.from_codes(codes)


def stripped_from_classes(
    classes: list[list[int]], num_rows: int
) -> ArrayStrippedPartition:
    """Wrap already-grouped classes (the delta engine's materializer)."""
    if not classes:
        return _empty(num_rows)
    sizes = np.fromiter(map(len, classes), dtype=_INT, count=len(classes))
    rows = np.fromiter(
        (row for cls_rows in classes for row in cls_rows),
        dtype=_INT,
        count=int(sizes.sum()),
    )
    ids = np.repeat(np.arange(len(classes), dtype=_INT), sizes)
    offsets = np.empty(sizes.shape[0] + 1, dtype=_INT)
    offsets[0] = 0
    np.cumsum(sizes, out=offsets[1:])
    return ArrayStrippedPartition(rows, ids, offsets, num_rows)


# ----------------------------------------------------------------------
# Delta maintenance (group indexes for the incremental engine)
# ----------------------------------------------------------------------
def _grouped_tail(
    arrays: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[list[int]]]:
    """Sort-grouped view of parallel key arrays, in first-seen order.

    Returns ``(perm, starts, ends, order, key_columns)`` where ``order``
    ranks groups by first occurrence and ``key_columns`` holds each
    group's key values (as python ints) aligned with sorted-group ids.
    """
    m = int(arrays[0].shape[0])
    perm, change = _sorted_key_change(arrays)
    starts = np.flatnonzero(change)
    ends = np.append(starts[1:], m)
    firsts = perm[starts]
    order = np.argsort(firsts, kind="stable")
    key_columns = [arr[firsts].tolist() for arr in arrays]
    return perm, starts, ends, order, key_columns


def group_index(
    code_columns: Sequence[Sequence[int]], keep_rows: bool = True
) -> dict:
    """Full grouping by composite key, first-seen order (sort-based).

    Same contract as the reference kernel: every group kept (including
    singletons), int keys for one column, tuple keys for several, row
    lists ascending.  Keys are plain python ints so indexes stay
    interoperable across backend switches mid-stream.
    """
    arrays = [_as_array(codes) for codes in code_columns]
    if arrays[0].shape[0] == 0:
        return {}
    perm, starts, ends, order, key_columns = _grouped_tail(arrays)
    single = len(arrays) == 1
    starts_list, ends_list = starts.tolist(), ends.tolist()
    groups: dict = {}
    for group in order.tolist():
        key = (
            key_columns[0][group]
            if single
            else tuple(column[group] for column in key_columns)
        )
        if keep_rows:
            groups[key] = perm[starts_list[group] : ends_list[group]].tolist()
        else:
            groups[key] = ends_list[group] - starts_list[group]
    return groups


def extend_group_index(
    groups: dict,
    code_columns: Sequence[Sequence[int]],
    start_row: int,
    keep_rows: bool = True,
) -> list[tuple[int, int]]:
    """Fold rows ``start_row..`` into ``groups`` in place, O(Δ log Δ).

    The batch is sort-grouped first, so the dict is touched once per
    *distinct* key instead of once per row; transitions mirror the
    reference kernel exactly (one ``(old, new)`` pair per touched key,
    new groups appended in first-seen row order).
    """
    arrays = [_as_array(codes)[start_row:] for codes in code_columns]
    if arrays[0].shape[0] == 0:
        return []
    perm, starts, ends, order, key_columns = _grouped_tail(arrays)
    single = len(arrays) == 1
    starts_list, ends_list = starts.tolist(), ends.tolist()
    # One bulk conversion; per-group work is then pure list slicing
    # (tiny numpy slices per group would dominate at realistic Δ).
    rows_list = (perm + start_row).tolist() if keep_rows else None
    transitions: list[tuple[int, int]] = []
    for group in order.tolist():
        key = (
            key_columns[0][group]
            if single
            else tuple(column[group] for column in key_columns)
        )
        added = ends_list[group] - starts_list[group]
        if keep_rows:
            bucket = groups.get(key)
            if bucket is None:
                bucket = groups[key] = []
            old = len(bucket)
            bucket.extend(rows_list[starts_list[group] : ends_list[group]])
            transitions.append((old, old + added))
        else:
            old = groups.get(key, 0)
            groups[key] = old + added
            transitions.append((old, old + added))
    return transitions


# ----------------------------------------------------------------------
# Predicate masks (the expression IR's leaf primitives)
# ----------------------------------------------------------------------
def mask_fill(num_rows: int, value: bool) -> np.ndarray:
    """A constant mask."""
    return np.full(num_rows, bool(value), dtype=bool)


def as_mask(flags: Sequence[bool], num_rows: int) -> np.ndarray:
    """Coerce an already-computed flag sequence to this backend's mask."""
    if num_rows == 0:
        return np.zeros(0, dtype=bool)
    return np.fromiter(flags, dtype=bool, count=num_rows)


def mask_and(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Elementwise conjunction of two masks."""
    return left & right


def mask_or(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Elementwise disjunction of two masks."""
    return left | right


def mask_not(mask: np.ndarray) -> np.ndarray:
    """Elementwise negation of a mask."""
    return ~mask


def mask_any(mask: np.ndarray) -> bool:
    """Whether any mask position is set."""
    return bool(mask.any())


def mask_eq_code(codes: Sequence[int], code: int) -> np.ndarray:
    """Rows whose code equals ``code`` (code-space equality)."""
    return _as_array(codes) == code


def mask_in_codes(codes: Sequence[int], wanted: frozenset[int]) -> np.ndarray:
    """Rows whose code is in ``wanted`` (code-space IN)."""
    targets = np.fromiter(wanted, dtype=_INT, count=len(wanted))
    return np.isin(_as_array(codes), targets)


def mask_table_lookup(
    codes: Sequence[int], table: Sequence[bool], null_value: bool
) -> np.ndarray:
    """Per-row truth via a per-code boolean table (NULL gets its own slot).

    Codes are ≥ −1 by the encoding contract, so appending the NULL slot
    at the end lets the ``−1`` codes index it directly.
    """
    lookup = np.empty(len(table) + 1, dtype=bool)
    if table:
        lookup[:-1] = np.asarray(table, dtype=bool)
    lookup[-1] = null_value
    return lookup[_as_array(codes)]


def mask_concat(masks: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate row-range mask chunks back into one relation mask."""
    return np.concatenate(list(masks))


def mask_codes_eq(left: Sequence[int], right: Sequence[int]) -> np.ndarray:
    """Elementwise code equality of two parallel code sequences."""
    return _as_array(left) == _as_array(right)


def remap_codes(
    codes: Sequence[int], mapping: Sequence[int], null_target: int
) -> np.ndarray:
    """``mapping[c]`` per row; NULL codes become ``null_target``."""
    map_arr = np.empty(len(mapping) + 1, dtype=_INT)
    if mapping:
        map_arr[:-1] = np.asarray(mapping, dtype=_INT)
    map_arr[-1] = null_target
    return map_arr[_as_array(codes)]


def filter_mask(mask: np.ndarray) -> np.ndarray:
    """Indices of the set mask positions, ascending (σ's output rows)."""
    return np.flatnonzero(mask)


# ----------------------------------------------------------------------
# Gather / reencode / dedup (columnar row movement)
# ----------------------------------------------------------------------
def _rows_array(rows: Sequence[int]) -> np.ndarray:
    if isinstance(rows, np.ndarray):
        return rows.astype(_INT, copy=False)
    return np.asarray(list(rows) if not hasattr(rows, "__len__") else rows, dtype=_INT)


def gather(codes: Sequence[int], rows: Sequence[int]) -> np.ndarray:
    """Codes at ``rows``, in the given order (no decode, no remap)."""
    rows_arr = _rows_array(rows)
    if rows_arr.size == 0:
        return np.zeros(0, dtype=_INT)
    return _as_array(codes)[rows_arr]


def take_reencode(
    column, rows: Sequence[int]
) -> tuple[list[int], list[Any], dict[Any, int] | None, np.ndarray]:
    """Rows of a column, compactly re-encoded code-to-code.

    Same contract as the reference kernel: first-seen code order, the
    new dictionary shares the parent's value objects, and the result is
    byte-identical to decoding and cold-encoding the rows.
    """
    rows_arr = _rows_array(rows)
    if rows_arr.size == 0:
        empty = np.zeros(0, dtype=_INT)
        empty.flags.writeable = False
        return [], [], {}, empty
    gathered = column_codes(column)[rows_arr]
    uniques, first_pos, inverse = np.unique(
        gathered, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)  # numpy 2.x may return the input shape
    offset = 1 if int(uniques[0]) == -1 else 0
    order = np.argsort(first_pos[offset:], kind="stable")
    rank = np.empty(uniques.shape[0], dtype=_INT)
    if offset:
        rank[0] = -1
    sub = np.empty(order.shape[0], dtype=_INT)
    sub[order] = np.arange(order.shape[0], dtype=_INT)
    rank[offset:] = sub
    new_codes = rank[inverse]
    new_codes.flags.writeable = False
    dictionary = column.dictionary
    new_dictionary = [dictionary[int(code)] for code in uniques[offset:][order]]
    value_to_code = {value: code for code, value in enumerate(new_dictionary)}
    return new_codes.tolist(), new_dictionary, value_to_code, new_codes


def distinct_rows(code_columns: Sequence[Sequence[int]]) -> np.ndarray:
    """Positions of the first occurrence of each distinct code tuple,
    ascending (the DISTINCT-projection keep list)."""
    arrays = [_as_array(codes) for codes in code_columns]
    if not arrays or arrays[0].shape[0] == 0:
        return np.zeros(0, dtype=_INT)
    packed = _pack(arrays)
    if packed is not None:
        _, first_pos = np.unique(packed, return_index=True)
        return np.sort(first_pos).astype(_INT, copy=False)
    perm, change = _sorted_key_change(arrays)
    return np.sort(perm[np.flatnonzero(change)]).astype(_INT, copy=False)


def group_rows(
    code_columns: Sequence[Sequence[int]], rows: Sequence[int]
) -> list[list[int]]:
    """Groups of ``rows`` sharing a composite code key, first-seen order."""
    rows_arr = _rows_array(rows)
    if rows_arr.size == 0:
        return []
    keys = [_as_array(codes)[rows_arr] for codes in code_columns]
    perm, change = _sorted_key_change(keys)
    starts = np.flatnonzero(change)
    ends = np.append(starts[1:], rows_arr.size)
    order = np.argsort(perm[starts], kind="stable")
    starts_list, ends_list = starts.tolist(), ends.tolist()
    return [
        rows_arr[perm[starts_list[g] : ends_list[g]]].tolist()
        for g in order.tolist()
    ]


# ----------------------------------------------------------------------
# Grouped aggregation (the SQL executor's GROUP BY kernel)
# ----------------------------------------------------------------------
def grouped_aggregate(
    key_columns: Sequence[Sequence[int]],
    rows: Sequence[int],
    distinct_specs: Sequence[Sequence[Sequence[int]]],
) -> tuple[list[tuple[int, ...]], list[int], list[list[int]]]:
    """Group ``rows`` by composite key and aggregate, all vectorized.

    Same contract as the reference kernel: keys in first-seen order,
    per-group ``COUNT(*)``, and per spec the per-group
    ``COUNT(DISTINCT …)`` ignoring rows with NULL in a counted column.
    """
    rows_arr = _rows_array(rows)
    m = rows_arr.size
    if m == 0:
        return [], [], [[] for _ in distinct_specs]
    keys = [_as_array(codes)[rows_arr] for codes in key_columns]
    if not keys:
        keys = [np.zeros(m, dtype=_INT)]
    perm, change = _sorted_key_change(keys)
    starts = np.flatnonzero(change)
    num_groups = starts.shape[0]
    firsts = perm[starts]
    order = np.argsort(firsts, kind="stable")
    new_id = np.empty(num_groups, dtype=_INT)
    new_id[order] = np.arange(num_groups, dtype=_INT)
    gid = np.empty(m, dtype=_INT)
    gid[perm] = new_id[np.cumsum(change) - 1]
    counts = np.bincount(gid, minlength=num_groups).tolist()
    firsts_ordered = firsts[order]
    if key_columns:
        keys_out = list(
            zip(*[key[firsts_ordered].tolist() for key in keys])
        )
    else:
        keys_out = [()] * num_groups
    distincts: list[list[int]] = []
    for spec in distinct_specs:
        spec_arrays = [_as_array(codes)[rows_arr] for codes in spec]
        valid = np.ones(m, dtype=bool)
        for arr in spec_arrays:
            valid &= arr >= 0
        selected = np.flatnonzero(valid)
        if selected.size == 0:
            distincts.append([0] * num_groups)
            continue
        combo_keys = [gid[selected]]
        combo_keys.extend(arr[selected] for arr in spec_arrays)
        perm2, change2 = _sorted_key_change(combo_keys)
        combo_gids = combo_keys[0][perm2[np.flatnonzero(change2)]]
        distincts.append(np.bincount(combo_gids, minlength=num_groups).tolist())
    return keys_out, counts, distincts


# ----------------------------------------------------------------------
# Hash join (code-space natural join kernel)
# ----------------------------------------------------------------------
def hash_join_index(
    left_key_columns: Sequence[Sequence[int]],
    right_key_columns: Sequence[Sequence[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Matching ``(left_rows, right_rows)`` index pairs, left-major.

    Implemented as one joint factorization of both sides' keys plus a
    run-length expansion: each left row's matches are the right rows of
    its key group, ascending — identical output order to the reference
    backend's dict-based probe loop.
    """
    left = [_as_array(codes) for codes in left_key_columns]
    right = [_as_array(codes) for codes in right_key_columns]
    n_left = left[0].shape[0]
    n_right = right[0].shape[0]
    empty = np.zeros(0, dtype=_INT)
    if n_left == 0 or n_right == 0:
        return empty, empty
    all_keys = [np.concatenate([l, r]) for l, r in zip(left, right)]
    perm, change = _sorted_key_change(all_keys)
    gid = np.empty(n_left + n_right, dtype=_INT)
    gid[perm] = np.cumsum(change) - 1
    num_groups = int(gid.max()) + 1
    gid_left = gid[:n_left]
    gid_right = gid[n_left:]
    right_counts = np.bincount(gid_right, minlength=num_groups)
    # Right rows bucketed by group, ascending within a bucket (stable).
    right_order = np.argsort(gid_right, kind="stable")
    offsets = np.zeros(num_groups + 1, dtype=_INT)
    np.cumsum(right_counts, out=offsets[1:])
    match_counts = right_counts[gid_left]
    total = int(match_counts.sum())
    if total == 0:
        return empty, empty
    left_rows = np.repeat(np.arange(n_left, dtype=_INT), match_counts)
    run_starts = np.cumsum(match_counts) - match_counts
    within = np.arange(total, dtype=_INT) - np.repeat(run_starts, match_counts)
    right_rows = right_order[np.repeat(offsets[gid_left], match_counts) + within]
    return left_rows, right_rows.astype(_INT, copy=False)


def left_join_index(
    left_key_columns: Sequence[Sequence[int]],
    right_key_columns: Sequence[Sequence[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Left-outer variant of :func:`hash_join_index`.

    Same joint-factorization machinery, but unmatched left rows keep a
    slot: their match count is clamped to one and the gathered right
    row is masked to ``-1`` — identical output order to the reference
    backend's probe loop.
    """
    left = [_as_array(codes) for codes in left_key_columns]
    right = [_as_array(codes) for codes in right_key_columns]
    n_left = left[0].shape[0]
    n_right = right[0].shape[0]
    if n_left == 0:
        empty = np.zeros(0, dtype=_INT)
        return empty, empty.copy()
    if n_right == 0:
        return (
            np.arange(n_left, dtype=_INT),
            np.full(n_left, -1, dtype=_INT),
        )
    all_keys = [np.concatenate([l, r]) for l, r in zip(left, right)]
    perm, change = _sorted_key_change(all_keys)
    gid = np.empty(n_left + n_right, dtype=_INT)
    gid[perm] = np.cumsum(change) - 1
    num_groups = int(gid.max()) + 1
    gid_left = gid[:n_left]
    gid_right = gid[n_left:]
    right_counts = np.bincount(gid_right, minlength=num_groups)
    right_order = np.argsort(gid_right, kind="stable")
    offsets = np.zeros(num_groups + 1, dtype=_INT)
    np.cumsum(right_counts, out=offsets[1:])
    match_counts = right_counts[gid_left]
    out_counts = np.where(match_counts > 0, match_counts, 1)
    total = int(out_counts.sum())
    left_rows = np.repeat(np.arange(n_left, dtype=_INT), out_counts)
    run_starts = np.cumsum(out_counts) - out_counts
    within = np.arange(total, dtype=_INT) - np.repeat(run_starts, out_counts)
    matched = np.repeat(match_counts > 0, out_counts)
    # Clamp the gather index so unmatched slots (whose bucket offset may
    # point past the end) stay in bounds before being masked to -1.
    indices = np.minimum(
        np.repeat(offsets[gid_left], out_counts) + within, n_right - 1
    )
    right_rows = np.where(matched, right_order[indices], -1)
    return left_rows, right_rows.astype(_INT, copy=False)


def gather_padded(
    codes: Sequence[int], rows: Sequence[int], fill: int = -1
) -> np.ndarray:
    """Codes at ``rows``; negative row indices yield ``fill``."""
    rows_arr = _rows_array(rows)
    if rows_arr.size == 0:
        return np.zeros(0, dtype=_INT)
    arr = _as_array(codes)
    if arr.size == 0:
        return np.full(rows_arr.size, fill, dtype=_INT)
    picked = arr[np.where(rows_arr < 0, 0, rows_arr)]
    return np.where(rows_arr < 0, fill, picked).astype(_INT, copy=False)


# ----------------------------------------------------------------------
# Sorting (the SQL executor's ORDER BY kernel)
# ----------------------------------------------------------------------
def sort_index(rank_columns: Sequence[Sequence[int]]) -> np.ndarray:
    """Stable ascending lexicographic argsort of parallel rank columns.

    ``np.lexsort`` treats its *last* key as primary, so the columns are
    reversed; lexsort is stable, matching the reference backend's
    ``sorted`` on rank tuples.
    """
    if not rank_columns:
        return np.zeros(0, dtype=_INT)
    keys = [_as_array(codes) for codes in rank_columns]
    if keys[0].shape[0] == 0:
        return np.zeros(0, dtype=_INT)
    return np.lexsort(keys[::-1]).astype(_INT, copy=False)


# ----------------------------------------------------------------------
# Distinct counting
# ----------------------------------------------------------------------
def count_distinct(code_columns: Sequence[Sequence[int]]) -> int:
    """Distinct code tuples across columns (pack + sort reduction)."""
    if not code_columns:
        return 0
    return _distinct([_as_array(codes) for codes in code_columns])


# ----------------------------------------------------------------------
# Entropy sums (the EB baseline's kernels)
# ----------------------------------------------------------------------
def _sizes_array(partition) -> np.ndarray:
    if isinstance(partition, ArrayStrippedPartition):
        return partition.sizes_array()
    return _as_array(partition.class_sizes())


def _class_index_array(partition) -> np.ndarray:
    if isinstance(partition, ArrayStrippedPartition):
        return partition.class_index_array()
    return _as_array(partition.class_index())


def _index_sizes_array(partition) -> np.ndarray:
    if isinstance(partition, ArrayStrippedPartition):
        return partition.index_sizes_array()
    return _as_array(partition.index_sizes())


def entropy_from_partition(partition) -> float:
    """``H(C) = −Σ p log p``; implicit singletons contribute in bulk."""
    n = partition.num_rows
    sizes = _sizes_array(partition)
    total = 0.0
    if sizes.shape[0]:
        p = sizes / n
        total = float(-(p * np.log(p)).sum())
    singletons = partition.num_singletons
    if singletons:
        total += singletons * math.log(n) / n
    return total


def _joint_cells(left, right) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(left_cell, right_cell, count)`` arrays over intersecting pairs."""
    left_index = _class_index_array(left)
    right_index = _class_index_array(right)
    keys = [left_index, right_index]
    perm, change = _sorted_key_change(keys)
    starts = np.flatnonzero(change)
    counts = np.diff(np.append(starts, left_index.shape[0]))
    firsts = perm[starts]
    return left_index[firsts], right_index[firsts], counts


def joint_class_counts(left, right) -> dict[tuple[int, int], int]:
    """``|C_k ∩ C′_k′|`` as a dict (API parity with the reference)."""
    if left.num_rows == 0:
        return {}
    l_cells, r_cells, counts = _joint_cells(left, right)
    return {
        (int(l), int(r)): int(c)
        for l, r, c in zip(l_cells.tolist(), r_cells.tolist(), counts.tolist())
    }


def _conditional_from_cells(
    num_rows: int,
    given_sizes: np.ndarray,
    given_cells: np.ndarray,
    counts: np.ndarray,
) -> float:
    p_joint = counts / num_rows
    p_conditional = counts / given_sizes[given_cells]
    mask = p_conditional < 1.0
    if not mask.any():
        return 0.0
    return float(-(p_joint[mask] * np.log(p_conditional[mask])).sum())


def conditional_entropy(target, given) -> tuple[float, int]:
    """``(H(target|given), intersection cells)`` in one joint pass."""
    if target.num_rows == 0:
        return 0.0, 0
    _, g_cells, counts = _joint_cells(target, given)
    value = _conditional_from_cells(
        target.num_rows, _index_sizes_array(given), g_cells, counts
    )
    return value, int(counts.shape[0])


def conditional_entropy_pair(target, given) -> tuple[float, float, int]:
    """Both conditional entropies off one shared joint pass (for VI)."""
    if target.num_rows == 0:
        return 0.0, 0.0, 0
    t_cells, g_cells, counts = _joint_cells(target, given)
    forward = _conditional_from_cells(
        target.num_rows, _index_sizes_array(given), g_cells, counts
    )
    backward = _conditional_from_cells(
        given.num_rows, _index_sizes_array(target), t_cells, counts
    )
    return forward, backward, int(counts.shape[0])


# ----------------------------------------------------------------------
# Evidence masks (the DC engine's pair kernels)
# ----------------------------------------------------------------------
#: Bits per evidence word; evidence masks wider than one word are kept
#: as tuples of int64 lanes and reassembled into Python ints only at
#: aggregation time (distinct masks are few).
EVIDENCE_WORD_BITS = 62
_WORD_MASK = (1 << EVIDENCE_WORD_BITS) - 1

EVIDENCE_OPS = python_backend.EVIDENCE_OPS

#: Cap on pairs evaluated per vectorized chunk: bounds the block
#: kernels' peak memory at O(chunk · words) regardless of tile size.
_EVIDENCE_CHUNK = 1 << 21

#: Largest mixed-radix state space aggregated via ``np.bincount``.
#: Each attribute contributes a factor 3 (ordered) or 2 (unordered);
#: beyond the cap the sweep falls back to sorting mask words.
_COMBO_LIMIT = 1 << 22


def _mask_words(mask: int, num_words: int) -> list[int]:
    return [
        (mask >> (EVIDENCE_WORD_BITS * word)) & _WORD_MASK
        for word in range(num_words)
    ]


def evidence_specs(
    attr_tables: Sequence[tuple],
    rows: Sequence[int],
    mults: Sequence[int],
    num_predicates: int,
) -> dict:
    """Precompute per-attribute pair-evaluation state for the block
    kernels (same contract as the reference backend).

    Ordered attributes are ranked by the exact Python order of their
    distinct comparable values; NULL and NaN rows carry a ``valid``
    flag instead of a rank — the block kernels route such pairs into
    the ``gt`` lane, matching a direct ``<`` comparison (always false).
    """
    rows_arr = _rows_array(rows)
    num_words = max(1, -(-num_predicates // EVIDENCE_WORD_BITS))
    attrs = []
    for codes, values, eq_lane, lt_lane, gt_lane, ne_lane, has_order in attr_tables:
        rep_codes = _as_array(codes)[rows_arr] if rows_arr.size else _as_array([])
        ranks = None
        valid = None
        if has_order:
            rep_values = [values[int(row)] for row in rows_arr.tolist()]
            flags = [
                value is not None and value == value for value in rep_values
            ]
            comparable = sorted(
                {value for value, ok in zip(rep_values, flags) if ok}
            )
            rank_of = {value: rank for rank, value in enumerate(comparable)}
            ranks = np.asarray(
                [rank_of[v] if ok else 0 for v, ok in zip(rep_values, flags)],
                dtype=_INT,
            )
            valid = np.asarray(flags, dtype=bool)
        lanes = []
        for word in range(num_words):
            lanes.append(
                tuple(
                    np.int64(w)
                    for w in (
                        _mask_words(eq_lane, num_words)[word],
                        _mask_words(lt_lane, num_words)[word],
                        _mask_words(gt_lane, num_words)[word],
                        _mask_words(ne_lane, num_words)[word],
                    )
                )
            )
        touched = [
            word for word, lane in enumerate(lanes) if any(int(w) for w in lane)
        ]
        attrs.append((rep_codes, ranks, valid, lanes, touched))
    # The per-pair evidence mask is a pure function of the per-attribute
    # three-way state, so pairs can be aggregated as mixed-radix state
    # combos (one np.bincount, no sort) and each distinct combo decoded
    # to its forward/backward masks once — as long as the state space
    # stays enumerable.
    radixes = [
        3 if has_order else 2
        for _codes, _values, _eq, _lt, _gt, _ne, has_order in attr_tables
    ]
    combo_size = 1
    for radix in radixes:
        combo_size *= radix
        if combo_size > _COMBO_LIMIT:
            combo_size = None
            break
    return {
        "attrs": attrs,
        "mults": np.asarray(list(mults), dtype=_INT),
        "m": int(rows_arr.size),
        "num_words": num_words,
        "radixes": radixes,
        "combo_size": combo_size,
    }


def _combo_luts(specs: dict) -> list:
    """Per attribute, per touched word: state → word-lane lookup tables
    for both pair directions (built once per spec)."""
    luts = specs.get("combo_luts")
    if luts is None:
        luts = []
        for attr, radix in zip(specs["attrs"], specs["radixes"]):
            lanes, touched = attr[3], attr[4]
            per_word = []
            for word in touched:
                eq_lane, lt_lane, gt_lane, ne_lane = lanes[word]
                if radix == 2:
                    fwd = bwd = np.asarray([eq_lane, ne_lane], dtype=_INT)
                else:
                    fwd = np.asarray([eq_lane, lt_lane, gt_lane], dtype=_INT)
                    bwd = np.asarray([eq_lane, gt_lane, lt_lane], dtype=_INT)
                per_word.append((word, fwd, bwd))
            luts.append(per_word)
        specs["combo_luts"] = luts
    return luts


def _accumulate_combos(
    specs: dict, combos: np.ndarray, weights: np.ndarray, counts: dict[int, int]
) -> None:
    """Weighted combo histogram → mask counts (both directions).

    ``np.bincount`` sums int64 weights exactly while they stay under
    2⁵³ (they do: bounded by ordered pair counts).  The distinct combos
    are decoded vectorized — digit extraction by array divmod, word
    lanes by tiny lookup-table gathers — with Python touched only to
    splice multi-word lanes into bignum masks.
    """
    sums = np.bincount(combos, weights=weights.astype(np.float64, copy=False))
    nonzero = np.flatnonzero(sums)
    if nonzero.size == 0:
        return
    group_weights = sums[nonzero].tolist()
    num_words = specs["num_words"]
    forward = [np.zeros(nonzero.size, dtype=_INT) for _ in range(num_words)]
    backward = [np.zeros(nonzero.size, dtype=_INT) for _ in range(num_words)]
    remainder = nonzero.copy()
    luts = _combo_luts(specs)
    for attr_index in reversed(range(len(luts))):
        radix = specs["radixes"][attr_index]
        digits = remainder % radix
        remainder //= radix
        for word, fwd_lut, bwd_lut in luts[attr_index]:
            forward[word] |= fwd_lut[digits]
            backward[word] |= bwd_lut[digits]
    if num_words == 1:
        fwd_masks = forward[0].tolist()
        bwd_masks = backward[0].tolist()
    else:
        fwd_columns = [word.tolist() for word in forward]
        bwd_columns = [word.tolist() for word in backward]
        fwd_masks = []
        bwd_masks = []
        for group in range(nonzero.size):
            mask = 0
            for word in range(num_words):
                mask |= fwd_columns[word][group] << (EVIDENCE_WORD_BITS * word)
            fwd_masks.append(mask)
            mask = 0
            for word in range(num_words):
                mask |= bwd_columns[word][group] << (EVIDENCE_WORD_BITS * word)
            bwd_masks.append(mask)
    for fwd_mask, bwd_mask, weight in zip(fwd_masks, bwd_masks, group_weights):
        weight = int(weight)
        counts[fwd_mask] = counts.get(fwd_mask, 0) + weight
        counts[bwd_mask] = counts.get(bwd_mask, 0) + weight


def _blocks(m: int, tile: int):
    """Yield ``(a, b, jlo, jhi, diagonal)`` row-stripe × column-block
    rectangles covering every pair ``i < j`` exactly once; each
    rectangle holds ≤ the chunk cap pairs.  Diagonal rectangles start
    their columns at the stripe's first row, so only the small
    per-stripe triangle is wasted eval (masked out by the caller)."""
    for ilo in range(0, m, tile):
        ihi = min(ilo + tile, m)
        for jlo in range(ilo, m, tile):
            jhi = min(jlo + tile, m)
            if jlo == ilo:
                a = ilo
                while a < ihi:
                    width = jhi - a
                    stripe = max(1, _EVIDENCE_CHUNK // max(width, 1))
                    b = min(a + stripe, ihi)
                    yield a, b, a, jhi, True
                    a = b
            else:
                width = jhi - jlo
                stripe = max(1, _EVIDENCE_CHUNK // max(width, 1))
                for a in range(ilo, ihi, stripe):
                    b = min(a + stripe, ihi)
                    yield a, b, jlo, jhi, False


def _pair_lanes(attr, lefts: np.ndarray, rights: np.ndarray):
    """Three-way classification arrays ``(equal, less)`` for explicit
    position pairs.

    ``less`` is ``None`` for unordered attributes; the third state
    (left larger / incomparable) is the complement of the two.
    """
    rep_codes, ranks, valid, _lanes, _touched = attr
    equal = rep_codes[lefts] == rep_codes[rights]
    if ranks is None:
        return equal, None
    less = valid[lefts] & valid[rights] & (ranks[lefts] < ranks[rights])
    return equal, less


def _lanes_block(attr, a: int, b: int, jlo: int, jhi: int):
    """Broadcast three-way classification over a block rectangle.

    Slices are contiguous views, so per-attribute work is one
    vectorized comparison — no gather arrays.  Equal codes imply equal
    ranks and NULL/NaN rows are never ``valid``, so ``less`` is false
    exactly where the reference's ``<`` is.
    """
    rep_codes, ranks, valid, _lanes, _touched = attr
    equal = rep_codes[a:b, None] == rep_codes[None, jlo:jhi]
    if ranks is None:
        return equal, None
    less = (valid[a:b, None] & valid[None, jlo:jhi]) & (
        ranks[a:b, None] < ranks[None, jlo:jhi]
    )
    return equal, less


def _accumulate_words(
    words: list[np.ndarray], weights: np.ndarray, counts: dict[int, int]
) -> None:
    """Aggregate per-pair mask words into ``{python int mask: weight}``."""
    perm, change = _sorted_key_change(words)
    starts = np.flatnonzero(change)
    sums = np.add.reduceat(weights[perm], starts)
    firsts = perm[starts]
    columns = [word[firsts].tolist() for word in words]
    for gid, weight in enumerate(sums.tolist()):
        if not weight:  # masked-out pairs (zeroed diagonal weights)
            continue
        mask = 0
        for word, column in enumerate(columns):
            mask |= column[gid] << (EVIDENCE_WORD_BITS * word)
        counts[mask] = counts.get(mask, 0) + weight


def _fold_chunk(
    specs: dict,
    lefts: np.ndarray,
    rights: np.ndarray,
    counts: dict[int, int],
) -> None:
    mults = specs["mults"]
    weights = mults[lefts] * mults[rights]
    if specs["combo_size"] is not None:
        combos = None
        for attr, radix in zip(specs["attrs"], specs["radixes"]):
            equal, less = _pair_lanes(attr, lefts, rights)
            state = _state_of(equal, less)
            if combos is None:
                combos = state
            else:
                combos *= radix
                combos += state
        _accumulate_combos(specs, combos, weights, counts)
        return
    num_words = specs["num_words"]
    size = lefts.size
    forward = [np.zeros(size, dtype=_INT) for _ in range(num_words)]
    backward = [np.zeros(size, dtype=_INT) for _ in range(num_words)]
    for attr in specs["attrs"]:
        equal, less = _pair_lanes(attr, lefts, rights)
        lanes, touched = attr[3], attr[4]
        for word in touched:
            eq_lane, lt_lane, gt_lane, ne_lane = lanes[word]
            if less is None:
                contribution = np.where(equal, eq_lane, ne_lane)
                forward[word] |= contribution
                backward[word] |= contribution
            else:
                forward[word] |= np.where(
                    equal, eq_lane, np.where(less, lt_lane, gt_lane)
                )
                backward[word] |= np.where(
                    equal, eq_lane, np.where(less, gt_lane, lt_lane)
                )
    _accumulate_words(forward, weights, counts)
    _accumulate_words(backward, weights, counts)


def _state_of(equal: np.ndarray, less: np.ndarray | None) -> np.ndarray:
    """Three-way state per pair: 0 equal, 1 left-smaller, 2 otherwise
    (for unordered attributes: 0 equal, 1 different)."""
    if less is None:
        return (~equal).astype(_INT)
    return (~equal).astype(_INT) * 2 - less.astype(_INT)


def _fold_block(
    specs: dict,
    a: int,
    b: int,
    jlo: int,
    jhi: int,
    diagonal: bool,
    counts: dict[int, int],
) -> None:
    """Broadcast-evaluate one block rectangle and aggregate its masks.

    With an enumerable state space the rectangle reduces to a weighted
    ``np.bincount`` over mixed-radix state combos (no sort, masks of
    any width decoded per distinct combo); otherwise evidence words are
    materialized per pair and aggregated by lexsort.
    """
    mults = specs["mults"]
    weights = mults[a:b, None] * mults[None, jlo:jhi]
    if diagonal:
        # Zero out the lower-triangle weights: the pairs contribute
        # nothing, with no gather needed.
        weights = weights * (
            np.arange(a, b, dtype=_INT)[:, None] < np.arange(jlo, jhi, dtype=_INT)
        )
    if specs["combo_size"] is not None:
        combos = None
        for attr, radix in zip(specs["attrs"], specs["radixes"]):
            equal, less = _lanes_block(attr, a, b, jlo, jhi)
            state = _state_of(equal, less)
            if combos is None:
                combos = state
            else:
                combos *= radix
                combos += state
        _accumulate_combos(specs, combos.ravel(), weights.ravel(), counts)
        return
    num_words = specs["num_words"]
    shape = (b - a, jhi - jlo)
    forward = [np.zeros(shape, dtype=_INT) for _ in range(num_words)]
    backward = [np.zeros(shape, dtype=_INT) for _ in range(num_words)]
    for attr in specs["attrs"]:
        equal, less = _lanes_block(attr, a, b, jlo, jhi)
        lanes, touched = attr[3], attr[4]
        for word in touched:
            eq_lane, lt_lane, gt_lane, ne_lane = lanes[word]
            if less is None:
                contribution = np.where(equal, eq_lane, ne_lane)
                forward[word] |= contribution
                backward[word] |= contribution
            else:
                forward[word] |= np.where(
                    equal, eq_lane, np.where(less, lt_lane, gt_lane)
                )
                backward[word] |= np.where(
                    equal, eq_lane, np.where(less, gt_lane, lt_lane)
                )
    flat_forward = [word.ravel() for word in forward]
    flat_backward = [word.ravel() for word in backward]
    flat_weights = weights.ravel()
    _accumulate_words(flat_forward, flat_weights, counts)
    _accumulate_words(flat_backward, flat_weights, counts)


def evidence_sweep(specs: dict, tile: int, counts: dict[int, int]) -> None:
    """Fold the evidence of every unordered pair (both directions) into
    ``counts``, one broadcast block rectangle at a time."""
    m = specs["m"]
    if m < 2:
        return
    evidence_sweep_blocks(specs, _blocks(m, tile), counts)


def evidence_blocks(m: int, tile: int):
    """The sweep's block rectangles, in traversal order.

    The parallel evidence path lists these once, splits the list into
    contiguous morsels, and merges the per-morsel counts in morsel
    order — reproducing the serial sweep's first-seen mask order
    exactly.
    """
    yield from _blocks(m, tile)


def evidence_sweep_blocks(specs: dict, blocks, counts: dict[int, int]) -> None:
    """Fold an explicit run of block rectangles (a sweep morsel)."""
    for a, b, jlo, jhi, diagonal in blocks:
        _fold_block(specs, a, b, jlo, jhi, diagonal, counts)


def evidence_export(specs: dict) -> tuple[list, dict]:
    """Split a spec into its flat arrays plus a picklable manifest.

    The arrays travel to pool workers through shared memory (zero
    copy); the manifest carries everything else — lane words as plain
    ints, slot indices for each array.  :func:`evidence_restore`
    rebuilds an equivalent spec from worker-side views.
    """
    arrays: list = []
    attr_meta = []
    for rep_codes, ranks, valid, lanes, touched in specs["attrs"]:
        codes_slot = len(arrays)
        arrays.append(rep_codes)
        ranks_slot = valid_slot = -1
        if ranks is not None:
            ranks_slot = len(arrays)
            arrays.append(ranks)
        if valid is not None:
            valid_slot = len(arrays)
            arrays.append(valid)
        attr_meta.append(
            (
                codes_slot,
                ranks_slot,
                valid_slot,
                tuple(tuple(int(word) for word in lane) for lane in lanes),
                tuple(touched),
            )
        )
    mults_slot = len(arrays)
    arrays.append(specs["mults"])
    meta = {
        "attr_meta": tuple(attr_meta),
        "mults_slot": mults_slot,
        "m": specs["m"],
        "num_words": specs["num_words"],
        "radixes": tuple(specs["radixes"]),
        "combo_size": specs["combo_size"],
    }
    return arrays, meta


def evidence_restore(arrays: Sequence, meta: dict) -> dict:
    """Rebuild an evidence spec from exported arrays + manifest."""
    attrs = []
    for codes_slot, ranks_slot, valid_slot, lanes, touched in meta["attr_meta"]:
        attrs.append(
            (
                arrays[codes_slot],
                arrays[ranks_slot] if ranks_slot >= 0 else None,
                arrays[valid_slot] if valid_slot >= 0 else None,
                [tuple(np.int64(word) for word in lane) for lane in lanes],
                list(touched),
            )
        )
    return {
        "attrs": attrs,
        "mults": arrays[meta["mults_slot"]],
        "m": meta["m"],
        "num_words": meta["num_words"],
        "radixes": list(meta["radixes"]),
        "combo_size": meta["combo_size"],
    }


def evidence_pairs_into(
    specs: dict,
    lefts: Sequence[int],
    rights: Sequence[int],
    counts: dict[int, int],
) -> None:
    """Fold the evidence of explicit position pairs into ``counts``."""
    lefts_arr = _rows_array(lefts)
    rights_arr = _rows_array(rights)
    if lefts_arr.size == 0:
        return
    for start in range(0, int(lefts_arr.size), _EVIDENCE_CHUNK):
        stop = start + _EVIDENCE_CHUNK
        _fold_chunk(specs, lefts_arr[start:stop], rights_arr[start:stop], counts)


def dc_scan(
    specs: dict,
    pred_ops: Sequence[tuple[int, int]],
    tile: int,
    max_hits: int | None,
) -> tuple[int, list[tuple[int, int]]]:
    """Violations of one DC over every pair, chunk-wise with early exit.

    Only the DC's own attributes are classified, so verification costs
    O(pairs · |DC attrs| / SIMD) regardless of the predicate space.
    Returns ``(violating ordered weight seen, ordered hit pairs)``;
    scanning stops at the first chunk that fills ``max_hits``.
    """
    m = specs["m"]
    mults = specs["mults"]
    attrs = specs["attrs"]
    used = sorted(set(pos for pos, _op in pred_ops))
    weight_seen = 0
    hits: list[tuple[int, int]] = []
    if m < 2:
        return 0, []
    for a, b, jlo, jhi, diagonal in _blocks(m, tile):
        width = jhi - jlo
        lanes = {pos: _lanes_block(attrs[pos], a, b, jlo, jhi) for pos in used}
        tri = (
            np.arange(a, b, dtype=_INT)[:, None] < np.arange(jlo, jhi, dtype=_INT)
            if diagonal
            else None
        )
        weights = None
        for direction in ("fwd", "bwd"):
            sat = tri.copy() if tri is not None else np.ones((b - a, width), dtype=bool)
            for pos, op in pred_ops:
                equal, less = lanes[pos]
                if less is None:
                    greater = None
                else:
                    greater = ~equal & ~less
                if direction == "bwd" and less is not None:
                    less, greater = greater, less
                if op == 0:  # =
                    sat &= equal
                elif op == 1:  # !=
                    sat &= ~equal
                elif op == 2:  # <
                    sat &= less
                elif op == 3:  # <=
                    sat &= equal | less
                elif op == 4:  # >
                    sat &= greater
                else:  # >=
                    sat &= equal | greater
                if not sat.any():
                    break
            positions = np.flatnonzero(sat.ravel())
            if positions.size == 0:
                continue
            if weights is None:
                weights = (mults[a:b, None] * mults[None, jlo:jhi]).ravel()
            weight_seen += int(weights[positions].sum())
            left_rows = (a + positions // width).tolist()
            right_rows = (jlo + positions % width).tolist()
            pairs = (
                zip(left_rows, right_rows)
                if direction == "fwd"
                else zip(right_rows, left_rows)
            )
            hits.extend(pairs)
        if max_hits is not None and len(hits) >= max_hits:
            return weight_seen, hits[:max_hits]
    return weight_seen, hits


# ----------------------------------------------------------------------
# Violating-pair counting
# ----------------------------------------------------------------------
def count_violating_pairs(x_partition, y_columns: Sequence[Sequence[int]]) -> int:
    """Exact number of unordered Definition-2 violating pairs.

    ``Σ_classes C(s,2) − Σ_(class,Y)-groups C(g,2)`` — pairs agreeing
    on X minus those also agreeing on Y, all as two sort reductions.
    """
    rows, ids = _flat_arrays(x_partition)
    if rows.shape[0] == 0:
        return 0
    keys = [ids]
    keys.extend(_as_array(codes)[rows] for codes in y_columns)
    group = _group_counts(keys)
    sizes = _group_counts([ids])
    agree_x = int((sizes * (sizes - 1) // 2).sum())
    agree_xy = int((group * (group - 1) // 2).sum())
    return agree_x - agree_xy
