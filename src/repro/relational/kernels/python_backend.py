"""Pure-Python reference kernels (stdlib loops over ``list[int]``).

This module is the extracted form of the loops the engine ran before
the kernel layer existed; it is the semantic reference the numpy
backend is property-tested against, and the fallback that keeps a
stdlib-pure install fully functional.  Every function here must remain
dependency-free and must keep its exact iteration order — downstream
witness enumeration and the EB cost model are pinned to it.

Canonical backend surface (mirrored by ``numpy_backend``):

* ``factorize(values)`` — dictionary encoding;
* ``column_codes(column)`` — the code representation partition kernels
  want (here: the plain ``list[int]`` itself);
* ``stripped_single_class`` / ``stripped_from_codes`` — partition
  construction (``refine``/``refined_error``/``product`` then live on
  the returned object);
* ``count_distinct(code_columns)`` — multi-column distinct counting;
* ``entropy_from_partition`` / ``joint_class_counts`` /
  ``conditional_entropy`` / ``conditional_entropy_pair`` — the EB
  entropy sums;
* ``count_violating_pairs`` — exact Definition-2 pair counting.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any

from ..partition import StrippedPartition

NAME = "python"


# ----------------------------------------------------------------------
# Dictionary encoding
# ----------------------------------------------------------------------
def factorize(
    values: Iterable[Any],
) -> tuple[list[int], list[Any], dict[Any, int] | None, Any]:
    """Encode values into dense first-seen codes (``None`` → ``-1``).

    Returns ``(codes, dictionary, value_to_code, codes_array)``; the
    last slot is the backend's preferred array representation (always
    ``None`` here — lists are already this backend's native form).
    """
    codes: list[int] = []
    dictionary: list[Any] = []
    value_to_code: dict[Any, int] = {}
    append = codes.append
    for value in values:
        if value is None:
            append(-1)
            continue
        code = value_to_code.get(value)
        if code is None:
            code = len(dictionary)
            value_to_code[value] = code
            dictionary.append(value)
        append(code)
    return codes, dictionary, value_to_code, None


def column_codes(column) -> Sequence[int]:
    """The code representation partition kernels consume: the list."""
    return column.codes


# ----------------------------------------------------------------------
# Stripped partitions
# ----------------------------------------------------------------------
def stripped_single_class(num_rows: int) -> StrippedPartition:
    """π_∅ (stripped): one class holding every row."""
    return StrippedPartition.single_class(num_rows)


def stripped_from_codes(codes: Sequence[int]) -> StrippedPartition:
    """Stripped partition of rows by one column's value codes."""
    return StrippedPartition.from_codes(codes)


def stripped_from_classes(
    classes: list[list[int]], num_rows: int
) -> StrippedPartition:
    """Wrap already-grouped classes (the delta engine's materializer).

    ``classes`` must contain only size-≥ 2 groups with ascending rows;
    ownership transfers to the partition (callers pass fresh lists).
    """
    return StrippedPartition(classes, num_rows)


# ----------------------------------------------------------------------
# Delta maintenance (group indexes for the incremental engine)
# ----------------------------------------------------------------------
def group_index(
    code_columns: Sequence[Sequence[int]], keep_rows: bool = True
) -> dict:
    """Full grouping of rows by composite code key, first-seen order.

    Unlike the stripped constructors this keeps *every* group,
    including singletons — the delta engine needs them so a later row
    can promote a singleton to a class.  Keys are ints for one column
    and tuples for several; with ``keep_rows=False`` only group sizes
    are stored (the monitor's counts-only mode).
    """
    groups: dict = {}
    keys = code_columns[0] if len(code_columns) == 1 else zip(*code_columns)
    if keep_rows:
        get = groups.get
        for row, key in enumerate(keys):
            bucket = get(key)
            if bucket is None:
                groups[key] = [row]
            else:
                bucket.append(row)
    else:
        for key in keys:
            groups[key] = groups.get(key, 0) + 1
    return groups


def extend_group_index(
    groups: dict,
    code_columns: Sequence[Sequence[int]],
    start_row: int,
    keep_rows: bool = True,
) -> list[tuple[int, int]]:
    """Fold rows ``start_row..`` into ``groups`` in place, O(Δ).

    Returns one ``(old_size, new_size)`` transition per touched key so
    the tracker can patch its scalar statistics without rescanning.
    New groups are appended in first-seen row order, keeping the
    derived class order identical to a cold :func:`group_index`.
    """
    num_rows = len(code_columns[0])
    single = len(code_columns) == 1
    codes0 = code_columns[0]
    touched: dict = {}
    record = touched.setdefault
    if keep_rows:
        get = groups.get
        for row in range(start_row, num_rows):
            key = codes0[row] if single else tuple(c[row] for c in code_columns)
            bucket = get(key)
            if bucket is None:
                groups[key] = [row]
                record(key, 0)
            else:
                record(key, len(bucket))
                bucket.append(row)
        return [(old, len(groups[key])) for key, old in touched.items()]
    for row in range(start_row, num_rows):
        key = codes0[row] if single else tuple(c[row] for c in code_columns)
        old = groups.get(key, 0)
        record(key, old)
        groups[key] = old + 1
    return [(old, groups[key]) for key, old in touched.items()]


# ----------------------------------------------------------------------
# Distinct counting
# ----------------------------------------------------------------------
def count_distinct(code_columns: Sequence[Sequence[int]]) -> int:
    """Distinct code tuples across columns (one C-level set pass)."""
    if not code_columns:
        return 0
    if len(code_columns) == 1:
        return len(set(code_columns[0]))
    return len(set(zip(*code_columns)))


# ----------------------------------------------------------------------
# Entropy sums (the EB baseline's kernels)
# ----------------------------------------------------------------------
def entropy_from_partition(partition) -> float:
    """``H(C) = −Σ p log p``; implicit singletons contribute in bulk."""
    n = partition.num_rows
    total = 0.0
    for size in partition.class_sizes():
        p = size / n
        total -= p * math.log(p)
    singletons = partition.num_singletons
    if singletons:
        total += singletons * math.log(n) / n
    return total


def joint_class_counts(left, right) -> dict[tuple[int, int], int]:
    """``|C_k ∩ C′_k′|`` for every intersecting class pair."""
    left_index = left.class_index()
    right_index = right.class_index()
    counts: dict[tuple[int, int], int] = {}
    for row in range(left.num_rows):
        key = (left_index[row], right_index[row])
        counts[key] = counts.get(key, 0) + 1
    return counts


def conditional_entropy_from_joint(
    num_rows: int,
    given_sizes: Sequence[int],
    joint: dict[tuple[int, int], int],
) -> float:
    """``H(target|given)`` from precomputed ``(target, given)`` counts."""
    total = 0.0
    for (_, given_class), count in joint.items():
        p_joint = count / num_rows
        p_conditional = count / given_sizes[given_class]
        if p_conditional < 1.0:
            total -= p_joint * math.log(p_conditional)
    return total


def conditional_entropy(target, given) -> tuple[float, int]:
    """``(H(target|given), intersection cells)`` in one joint pass."""
    joint = joint_class_counts(target, given)
    value = conditional_entropy_from_joint(target.num_rows, given.index_sizes(), joint)
    return value, len(joint)


def conditional_entropy_pair(target, given) -> tuple[float, float, int]:
    """Both conditional entropies off one shared joint pass (for VI)."""
    joint = joint_class_counts(target, given)
    forward = conditional_entropy_from_joint(
        target.num_rows, given.index_sizes(), joint
    )
    swapped = {(r, l): count for (l, r), count in joint.items()}
    backward = conditional_entropy_from_joint(
        given.num_rows, target.index_sizes(), swapped
    )
    return forward, backward, len(joint)


# ----------------------------------------------------------------------
# Predicate masks (the expression IR's leaf primitives)
# ----------------------------------------------------------------------
def mask_fill(num_rows: int, value: bool) -> list[bool]:
    """A constant mask."""
    return [bool(value)] * num_rows


def as_mask(flags: Sequence[bool], num_rows: int) -> list[bool]:
    """Coerce an already-computed flag sequence to this backend's mask."""
    return list(flags)


def mask_and(left: Sequence[bool], right: Sequence[bool]) -> list[bool]:
    """Elementwise conjunction of two masks."""
    return [a and b for a, b in zip(left, right)]


def mask_or(left: Sequence[bool], right: Sequence[bool]) -> list[bool]:
    """Elementwise disjunction of two masks."""
    return [a or b for a, b in zip(left, right)]


def mask_not(mask: Sequence[bool]) -> list[bool]:
    """Elementwise negation of a mask."""
    return [not flag for flag in mask]


def mask_any(mask: Sequence[bool]) -> bool:
    """Whether any mask position is set."""
    return any(mask)


def mask_eq_code(codes: Sequence[int], code: int) -> list[bool]:
    """Rows whose code equals ``code`` (code-space equality)."""
    return [c == code for c in codes]


def mask_in_codes(codes: Sequence[int], wanted: frozenset[int]) -> list[bool]:
    """Rows whose code is in ``wanted`` (code-space IN)."""
    return [c in wanted for c in codes]


def mask_table_lookup(
    codes: Sequence[int], table: Sequence[bool], null_value: bool
) -> list[bool]:
    """Per-row truth via a per-code boolean table (NULL gets its own slot)."""
    return [null_value if c < 0 else table[c] for c in codes]


def mask_concat(masks: Sequence[Sequence[bool]]) -> list[bool]:
    """Concatenate row-range mask chunks back into one relation mask."""
    out: list[bool] = []
    for mask in masks:
        out.extend(mask)
    return out


def mask_codes_eq(left: Sequence[int], right: Sequence[int]) -> list[bool]:
    """Elementwise code equality of two parallel code sequences."""
    return [a == b for a, b in zip(left, right)]


def remap_codes(
    codes: Sequence[int], mapping: Sequence[int], null_target: int
) -> list[int]:
    """``mapping[c]`` per row; NULL codes become ``null_target``."""
    return [null_target if c < 0 else mapping[c] for c in codes]


def filter_mask(mask: Sequence[bool]) -> list[int]:
    """Indices of the set mask positions, ascending (σ's output rows)."""
    return [row for row, flag in enumerate(mask) if flag]


# ----------------------------------------------------------------------
# Gather / reencode / dedup (columnar row movement)
# ----------------------------------------------------------------------
def gather(codes: Sequence[int], rows: Sequence[int]) -> list[int]:
    """Codes at ``rows``, in the given order (no decode, no remap)."""
    return [codes[row] for row in rows]


def take_reencode(
    column, rows: Sequence[int]
) -> tuple[list[int], list[Any], dict[Any, int] | None, Any]:
    """Rows of a column as a compactly re-encoded ``(codes, dictionary,
    value_to_code, codes_array)`` quadruple (the ``factorize`` shape).

    Works code-to-code: the remap hashes small ints instead of decoded
    values, and the new dictionary shares the parent's value *objects*.
    First-seen order is preserved, so the result is byte-identical to
    decoding the rows and cold-encoding them.
    """
    codes = column.codes
    dictionary = column.dictionary
    remap: dict[int, int] = {}
    new_codes: list[int] = []
    new_dictionary: list[Any] = []
    for row in rows:
        code = codes[row]
        if code < 0:
            new_codes.append(-1)
            continue
        new_code = remap.get(code)
        if new_code is None:
            new_code = len(new_dictionary)
            remap[code] = new_code
            new_dictionary.append(dictionary[code])
        new_codes.append(new_code)
    value_to_code = {value: code for code, value in enumerate(new_dictionary)}
    return new_codes, new_dictionary, value_to_code, None


def distinct_rows(code_columns: Sequence[Sequence[int]]) -> list[int]:
    """Positions of the first occurrence of each distinct code tuple,
    ascending (the DISTINCT-projection keep list)."""
    if not code_columns:
        return []
    keep: list[int] = []
    if len(code_columns) == 1:
        seen_single: set[int] = set()
        for row, code in enumerate(code_columns[0]):
            if code not in seen_single:
                seen_single.add(code)
                keep.append(row)
        return keep
    seen: set[tuple[int, ...]] = set()
    for row, key in enumerate(zip(*code_columns)):
        if key not in seen:
            seen.add(key)
            keep.append(row)
    return keep


def group_rows(
    code_columns: Sequence[Sequence[int]], rows: Sequence[int]
) -> list[list[int]]:
    """Groups of ``rows`` sharing a composite code key, first-seen order."""
    groups: dict = {}
    single = len(code_columns) == 1
    codes0 = code_columns[0]
    get = groups.get
    for row in rows:
        key = codes0[row] if single else tuple(codes[row] for codes in code_columns)
        bucket = get(key)
        if bucket is None:
            groups[key] = [row]
        else:
            bucket.append(row)
    return list(groups.values())


# ----------------------------------------------------------------------
# Grouped aggregation (the SQL executor's GROUP BY kernel)
# ----------------------------------------------------------------------
def grouped_aggregate(
    key_columns: Sequence[Sequence[int]],
    rows: Sequence[int],
    distinct_specs: Sequence[Sequence[Sequence[int]]],
) -> tuple[list[tuple[int, ...]], list[int], list[list[int]]]:
    """Group ``rows`` by composite key and aggregate in one pass.

    Returns ``(keys, counts, distincts)``: the group key tuples in
    first-seen order, the per-group ``COUNT(*)``, and — per entry of
    ``distinct_specs`` (each a list of code columns) — the per-group
    ``COUNT(DISTINCT …)`` where rows with a NULL in any counted column
    are ignored (SQL semantics).
    """
    keys: list[tuple[int, ...]] = []
    counts: list[int] = []
    index: dict[tuple[int, ...], int] = {}
    seen: list[list[set[tuple[int, ...]]]] = [[] for _ in distinct_specs]
    for row in rows:
        key = tuple(codes[row] for codes in key_columns)
        gid = index.get(key)
        if gid is None:
            gid = len(keys)
            index[key] = gid
            keys.append(key)
            counts.append(0)
            for spec_seen in seen:
                spec_seen.append(set())
        counts[gid] += 1
        for spec, spec_seen in zip(distinct_specs, seen):
            combo = tuple(codes[row] for codes in spec)
            if any(code < 0 for code in combo):  # SQL: NULLs are not counted
                continue
            spec_seen[gid].add(combo)
    distincts = [[len(group_seen) for group_seen in spec_seen] for spec_seen in seen]
    return keys, counts, distincts


# ----------------------------------------------------------------------
# Hash join (code-space natural join kernel)
# ----------------------------------------------------------------------
def hash_join_index(
    left_key_columns: Sequence[Sequence[int]],
    right_key_columns: Sequence[Sequence[int]],
) -> tuple[list[int], list[int]]:
    """Matching ``(left_rows, right_rows)`` index pairs, left-major.

    Both key sides must live in a *shared* code space (the caller
    remaps one dictionary into the other).  The right side is hashed,
    the left side probes in row order, and matches are emitted in right
    row order within each left row — the classic hash-join output
    order, identical to the reference row-dict join.
    """
    single = len(right_key_columns) == 1
    build: dict = {}
    get = build.get
    codes0 = right_key_columns[0]
    for row in range(len(codes0)):
        key = codes0[row] if single else tuple(c[row] for c in right_key_columns)
        bucket = get(key)
        if bucket is None:
            build[key] = [row]
        else:
            bucket.append(row)
    left_rows: list[int] = []
    right_rows: list[int] = []
    left0 = left_key_columns[0]
    for row in range(len(left0)):
        key = left0[row] if single else tuple(c[row] for c in left_key_columns)
        matches = build.get(key)
        if matches is None:
            continue
        left_rows.extend([row] * len(matches))
        right_rows.extend(matches)
    return left_rows, right_rows


def left_join_index(
    left_key_columns: Sequence[Sequence[int]],
    right_key_columns: Sequence[Sequence[int]],
) -> tuple[list[int], list[int]]:
    """Left-outer variant of :func:`hash_join_index`.

    Every left row appears at least once; a left row with no match
    emits one pair whose right row is ``-1`` (the padding sentinel
    :func:`gather_padded` turns into NULL codes).  Output order matches
    the inner join for matched rows.
    """
    single = len(right_key_columns) == 1
    build: dict = {}
    get = build.get
    codes0 = right_key_columns[0]
    for row in range(len(codes0)):
        key = codes0[row] if single else tuple(c[row] for c in right_key_columns)
        bucket = get(key)
        if bucket is None:
            build[key] = [row]
        else:
            bucket.append(row)
    left_rows: list[int] = []
    right_rows: list[int] = []
    left0 = left_key_columns[0]
    for row in range(len(left0)):
        key = left0[row] if single else tuple(c[row] for c in left_key_columns)
        matches = build.get(key)
        if matches is None:
            left_rows.append(row)
            right_rows.append(-1)
            continue
        left_rows.extend([row] * len(matches))
        right_rows.extend(matches)
    return left_rows, right_rows


def gather_padded(
    codes: Sequence[int], rows: Sequence[int], fill: int = -1
) -> list[int]:
    """Codes at ``rows``; negative row indices yield ``fill``.

    The left-join gather: padded right rows (``-1``) become NULL codes
    without the wrap-around a plain ``codes[-1]`` would silently do.
    """
    return [fill if row < 0 else codes[row] for row in rows]


# ----------------------------------------------------------------------
# Sorting (the SQL executor's ORDER BY kernel)
# ----------------------------------------------------------------------
def sort_index(rank_columns: Sequence[Sequence[int]]) -> list[int]:
    """Stable ascending lexicographic argsort of parallel rank columns.

    The executor pre-computes integer ranks per key (NULL smallest,
    descending keys negated), so the kernel never touches values.
    """
    if not rank_columns:
        return []
    n = len(rank_columns[0])
    if len(rank_columns) == 1:
        ranks = rank_columns[0]
        return sorted(range(n), key=lambda row: ranks[row])
    return sorted(
        range(n), key=lambda row: tuple(col[row] for col in rank_columns)
    )


# ----------------------------------------------------------------------
# Evidence masks (the DC engine's pair kernels)
# ----------------------------------------------------------------------
# Pair evaluation is a three-way classification per attribute — equal,
# left-smaller, left-larger — and each outcome contributes a fixed
# *lane* of predicate bits to the pair's evidence mask.  NULL and NaN
# are order-incomparable: any order comparison involving them is false,
# so such pairs fall into the ``gt`` lane exactly as a direct ``<``
# evaluates them.  Masks are plain Python ints here (the native bignum
# is this backend's multi-word representation); the numpy backend
# splits the same masks into 62-bit int64 words.

#: Opcode order mirrors ``repro.dc.model.Operator`` without importing
#: it (kernels stay dc-free): EQ, NE, LT, LE, GT, GE.
EVIDENCE_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Satisfaction of each opcode per forward three-way state
#: (0 = equal, 1 = left smaller, 2 = left larger).
_OP_SAT = (
    (True, False, False),  # =
    (False, True, True),  # !=
    (False, True, False),  # <
    (True, True, False),  # <=
    (False, False, True),  # >
    (True, False, True),  # >=
)

#: State swap for the backward direction of a pair.
_SWAP_STATE = (0, 2, 1)


def evidence_specs(
    attr_tables: Sequence[tuple],
    rows: Sequence[int],
    mults: Sequence[int],
    num_predicates: int,
) -> dict:
    """Precompute per-attribute pair-evaluation state for the block
    kernels.

    ``attr_tables`` holds, per attribute, ``(codes, values, eq_lane,
    lt_lane, gt_lane, ne_lane, has_order)`` over the *full* relation;
    ``rows`` selects the representative rows, ``mults`` their duplicate
    multiplicities.  The returned spec is backend-opaque.
    """
    attrs = []
    for codes, values, eq_lane, lt_lane, gt_lane, ne_lane, has_order in attr_tables:
        rep_codes = [codes[row] for row in rows]
        if has_order:
            rep_values = [values[row] for row in rows]
            comparable = [
                value is not None and value == value for value in rep_values
            ]
            attrs.append(
                (rep_codes, rep_values, comparable, eq_lane, lt_lane, gt_lane)
            )
        else:
            attrs.append((rep_codes, None, None, eq_lane, ne_lane, ne_lane))
    return {
        "attrs": attrs,
        "mults": list(mults),
        "m": len(rows),
        "num_predicates": num_predicates,
    }


def _pair_masks(attrs: list, i: int, j: int) -> tuple[int, int]:
    """Forward/backward evidence masks of the pair ``(i, j)``."""
    forward = 0
    backward = 0
    for rep_codes, rep_values, comparable, eq_lane, lt_lane, gt_lane in attrs:
        if rep_codes[i] == rep_codes[j]:
            forward |= eq_lane
            backward |= eq_lane
        elif rep_values is None:
            forward |= lt_lane  # the shared ne lane (see evidence_specs)
            backward |= lt_lane
        elif comparable[i] and comparable[j] and rep_values[i] < rep_values[j]:
            forward |= lt_lane
            backward |= gt_lane
        else:
            forward |= gt_lane
            backward |= lt_lane
    return forward, backward


def evidence_sweep(specs: dict, tile: int, counts: dict[int, int]) -> None:
    """Fold the evidence of every unordered pair (both directions) into
    ``counts``, block by block.

    Blocks are cosmetic for this backend (loops touch each pair once
    either way) but keep the traversal structurally identical to the
    numpy tiles, so both backends see the same pair order.
    """
    evidence_sweep_blocks(specs, evidence_blocks(specs["m"], tile), counts)


def evidence_blocks(m: int, tile: int):
    """The sweep's ``(ilo, ihi, jlo, jhi)`` blocks, in traversal order.

    The parallel layer lists these, splits them into contiguous
    morsels, and merges per-morsel counts in morsel order — the same
    first-seen mask order the serial sweep produces.
    """
    for ilo in range(0, m, tile):
        ihi = min(ilo + tile, m)
        for jlo in range(ilo, m, tile):
            yield ilo, ihi, jlo, min(jlo + tile, m)


def evidence_sweep_blocks(specs: dict, blocks, counts: dict[int, int]) -> None:
    """Fold an explicit run of blocks (a sweep morsel)."""
    attrs = specs["attrs"]
    mults = specs["mults"]
    for ilo, ihi, jlo, jhi in blocks:
        for i in range(ilo, ihi):
            start = i + 1 if jlo <= i else jlo
            for j in range(start, jhi):
                forward, backward = _pair_masks(attrs, i, j)
                weight = mults[i] * mults[j]
                counts[forward] = counts.get(forward, 0) + weight
                counts[backward] = counts.get(backward, 0) + weight


def evidence_export(specs: dict) -> tuple[tuple, dict]:
    """No arrays to ship: thread-pool workers share the spec object."""
    return (), specs


def evidence_restore(arrays, meta: dict) -> dict:
    """Inverse of :func:`evidence_export` (identity for this backend)."""
    return meta


def evidence_pairs_into(
    specs: dict,
    lefts: Sequence[int],
    rights: Sequence[int],
    counts: dict[int, int],
) -> None:
    """Fold the evidence of explicit position pairs into ``counts``
    (the sampled and refinement paths)."""
    attrs = specs["attrs"]
    mults = specs["mults"]
    for i, j in zip(lefts, rights):
        forward, backward = _pair_masks(attrs, i, j)
        weight = mults[i] * mults[j]
        counts[forward] = counts.get(forward, 0) + weight
        counts[backward] = counts.get(backward, 0) + weight


def dc_scan(
    specs: dict,
    pred_ops: Sequence[tuple[int, int]],
    tile: int,
    max_hits: int | None,
) -> tuple[int, list[tuple[int, int]]]:
    """Violations of one DC over every pair, with early exit.

    ``pred_ops`` lists ``(attribute position, opcode)`` conjuncts (see
    ``EVIDENCE_OPS``).  Returns ``(violating ordered weight seen,
    ordered hit pairs)``; enumeration stops once ``max_hits`` hits are
    collected, so the weight is a lower bound when truncated.
    """
    attrs = specs["attrs"]
    mults = specs["mults"]
    m = specs["m"]
    used = sorted(set(pos for pos, _op in pred_ops))
    weight_seen = 0
    hits: list[tuple[int, int]] = []
    for ilo in range(0, m, tile):
        ihi = min(ilo + tile, m)
        for jlo in range(ilo, m, tile):
            jhi = min(jlo + tile, m)
            for i in range(ilo, ihi):
                start = i + 1 if jlo <= i else jlo
                for j in range(start, jhi):
                    states: dict[int, int] = {}
                    for pos in used:
                        codes, values, comparable = attrs[pos][:3]
                        if codes[i] == codes[j]:
                            states[pos] = 0
                        elif (
                            values is not None
                            and comparable[i]
                            and comparable[j]
                            and values[i] < values[j]
                        ):
                            states[pos] = 1
                        else:
                            states[pos] = 2
                    weight = mults[i] * mults[j]
                    if all(_OP_SAT[op][states[pos]] for pos, op in pred_ops):
                        weight_seen += weight
                        hits.append((i, j))
                    if all(
                        _OP_SAT[op][_SWAP_STATE[states[pos]]]
                        for pos, op in pred_ops
                    ):
                        weight_seen += weight
                        hits.append((j, i))
                    if max_hits is not None and len(hits) >= max_hits:
                        return weight_seen, hits[:max_hits]
    return weight_seen, hits


# ----------------------------------------------------------------------
# Violating-pair counting
# ----------------------------------------------------------------------
def count_violating_pairs(x_partition, y_columns: Sequence[Sequence[int]]) -> int:
    """Exact number of unordered Definition-2 violating pairs.

    Within an X-class of size ``s`` whose Y-groups have sizes ``g_i``,
    the violating pairs number ``C(s,2) − Σ C(g_i,2)`` — every pair
    agreeing on X minus those also agreeing on Y.  Singleton X-classes
    (implicit in the stripped form) contribute nothing.
    """
    total = 0
    single = len(y_columns) == 1
    y0 = y_columns[0] if y_columns else ()
    for cls_rows in x_partition:
        size = len(cls_rows)
        group_sizes: dict[Any, int] = {}
        if single:
            for row in cls_rows:
                key = y0[row]
                group_sizes[key] = group_sizes.get(key, 0) + 1
        else:
            for row in cls_rows:
                key = tuple(codes[row] for codes in y_columns)
                group_sizes[key] = group_sizes.get(key, 0) + 1
        if len(group_sizes) < 2:
            continue
        total += size * (size - 1) // 2
        total -= sum(g * (g - 1) // 2 for g in group_sizes.values())
    return total
