"""Pure-Python reference kernels (stdlib loops over ``list[int]``).

This module is the extracted form of the loops the engine ran before
the kernel layer existed; it is the semantic reference the numpy
backend is property-tested against, and the fallback that keeps a
stdlib-pure install fully functional.  Every function here must remain
dependency-free and must keep its exact iteration order — downstream
witness enumeration and the EB cost model are pinned to it.

Canonical backend surface (mirrored by ``numpy_backend``):

* ``factorize(values)`` — dictionary encoding;
* ``column_codes(column)`` — the code representation partition kernels
  want (here: the plain ``list[int]`` itself);
* ``stripped_single_class`` / ``stripped_from_codes`` — partition
  construction (``refine``/``refined_error``/``product`` then live on
  the returned object);
* ``count_distinct(code_columns)`` — multi-column distinct counting;
* ``entropy_from_partition`` / ``joint_class_counts`` /
  ``conditional_entropy`` / ``conditional_entropy_pair`` — the EB
  entropy sums;
* ``count_violating_pairs`` — exact Definition-2 pair counting.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any

from ..partition import StrippedPartition

NAME = "python"


# ----------------------------------------------------------------------
# Dictionary encoding
# ----------------------------------------------------------------------
def factorize(
    values: Iterable[Any],
) -> tuple[list[int], list[Any], dict[Any, int] | None, Any]:
    """Encode values into dense first-seen codes (``None`` → ``-1``).

    Returns ``(codes, dictionary, value_to_code, codes_array)``; the
    last slot is the backend's preferred array representation (always
    ``None`` here — lists are already this backend's native form).
    """
    codes: list[int] = []
    dictionary: list[Any] = []
    value_to_code: dict[Any, int] = {}
    append = codes.append
    for value in values:
        if value is None:
            append(-1)
            continue
        code = value_to_code.get(value)
        if code is None:
            code = len(dictionary)
            value_to_code[value] = code
            dictionary.append(value)
        append(code)
    return codes, dictionary, value_to_code, None


def column_codes(column) -> Sequence[int]:
    """The code representation partition kernels consume: the list."""
    return column.codes


# ----------------------------------------------------------------------
# Stripped partitions
# ----------------------------------------------------------------------
def stripped_single_class(num_rows: int) -> StrippedPartition:
    """π_∅ (stripped): one class holding every row."""
    return StrippedPartition.single_class(num_rows)


def stripped_from_codes(codes: Sequence[int]) -> StrippedPartition:
    """Stripped partition of rows by one column's value codes."""
    return StrippedPartition.from_codes(codes)


def stripped_from_classes(
    classes: list[list[int]], num_rows: int
) -> StrippedPartition:
    """Wrap already-grouped classes (the delta engine's materializer).

    ``classes`` must contain only size-≥ 2 groups with ascending rows;
    ownership transfers to the partition (callers pass fresh lists).
    """
    return StrippedPartition(classes, num_rows)


# ----------------------------------------------------------------------
# Delta maintenance (group indexes for the incremental engine)
# ----------------------------------------------------------------------
def group_index(
    code_columns: Sequence[Sequence[int]], keep_rows: bool = True
) -> dict:
    """Full grouping of rows by composite code key, first-seen order.

    Unlike the stripped constructors this keeps *every* group,
    including singletons — the delta engine needs them so a later row
    can promote a singleton to a class.  Keys are ints for one column
    and tuples for several; with ``keep_rows=False`` only group sizes
    are stored (the monitor's counts-only mode).
    """
    groups: dict = {}
    keys = code_columns[0] if len(code_columns) == 1 else zip(*code_columns)
    if keep_rows:
        get = groups.get
        for row, key in enumerate(keys):
            bucket = get(key)
            if bucket is None:
                groups[key] = [row]
            else:
                bucket.append(row)
    else:
        for key in keys:
            groups[key] = groups.get(key, 0) + 1
    return groups


def extend_group_index(
    groups: dict,
    code_columns: Sequence[Sequence[int]],
    start_row: int,
    keep_rows: bool = True,
) -> list[tuple[int, int]]:
    """Fold rows ``start_row..`` into ``groups`` in place, O(Δ).

    Returns one ``(old_size, new_size)`` transition per touched key so
    the tracker can patch its scalar statistics without rescanning.
    New groups are appended in first-seen row order, keeping the
    derived class order identical to a cold :func:`group_index`.
    """
    num_rows = len(code_columns[0])
    single = len(code_columns) == 1
    codes0 = code_columns[0]
    touched: dict = {}
    record = touched.setdefault
    if keep_rows:
        get = groups.get
        for row in range(start_row, num_rows):
            key = codes0[row] if single else tuple(c[row] for c in code_columns)
            bucket = get(key)
            if bucket is None:
                groups[key] = [row]
                record(key, 0)
            else:
                record(key, len(bucket))
                bucket.append(row)
        return [(old, len(groups[key])) for key, old in touched.items()]
    for row in range(start_row, num_rows):
        key = codes0[row] if single else tuple(c[row] for c in code_columns)
        old = groups.get(key, 0)
        record(key, old)
        groups[key] = old + 1
    return [(old, groups[key]) for key, old in touched.items()]


# ----------------------------------------------------------------------
# Distinct counting
# ----------------------------------------------------------------------
def count_distinct(code_columns: Sequence[Sequence[int]]) -> int:
    """Distinct code tuples across columns (one C-level set pass)."""
    if not code_columns:
        return 0
    if len(code_columns) == 1:
        return len(set(code_columns[0]))
    return len(set(zip(*code_columns)))


# ----------------------------------------------------------------------
# Entropy sums (the EB baseline's kernels)
# ----------------------------------------------------------------------
def entropy_from_partition(partition) -> float:
    """``H(C) = −Σ p log p``; implicit singletons contribute in bulk."""
    n = partition.num_rows
    total = 0.0
    for size in partition.class_sizes():
        p = size / n
        total -= p * math.log(p)
    singletons = partition.num_singletons
    if singletons:
        total += singletons * math.log(n) / n
    return total


def joint_class_counts(left, right) -> dict[tuple[int, int], int]:
    """``|C_k ∩ C′_k′|`` for every intersecting class pair."""
    left_index = left.class_index()
    right_index = right.class_index()
    counts: dict[tuple[int, int], int] = {}
    for row in range(left.num_rows):
        key = (left_index[row], right_index[row])
        counts[key] = counts.get(key, 0) + 1
    return counts


def conditional_entropy_from_joint(
    num_rows: int,
    given_sizes: Sequence[int],
    joint: dict[tuple[int, int], int],
) -> float:
    """``H(target|given)`` from precomputed ``(target, given)`` counts."""
    total = 0.0
    for (_, given_class), count in joint.items():
        p_joint = count / num_rows
        p_conditional = count / given_sizes[given_class]
        if p_conditional < 1.0:
            total -= p_joint * math.log(p_conditional)
    return total


def conditional_entropy(target, given) -> tuple[float, int]:
    """``(H(target|given), intersection cells)`` in one joint pass."""
    joint = joint_class_counts(target, given)
    value = conditional_entropy_from_joint(target.num_rows, given.index_sizes(), joint)
    return value, len(joint)


def conditional_entropy_pair(target, given) -> tuple[float, float, int]:
    """Both conditional entropies off one shared joint pass (for VI)."""
    joint = joint_class_counts(target, given)
    forward = conditional_entropy_from_joint(
        target.num_rows, given.index_sizes(), joint
    )
    swapped = {(r, l): count for (l, r), count in joint.items()}
    backward = conditional_entropy_from_joint(
        given.num_rows, target.index_sizes(), swapped
    )
    return forward, backward, len(joint)


# ----------------------------------------------------------------------
# Violating-pair counting
# ----------------------------------------------------------------------
def count_violating_pairs(x_partition, y_columns: Sequence[Sequence[int]]) -> int:
    """Exact number of unordered Definition-2 violating pairs.

    Within an X-class of size ``s`` whose Y-groups have sizes ``g_i``,
    the violating pairs number ``C(s,2) − Σ C(g_i,2)`` — every pair
    agreeing on X minus those also agreeing on Y.  Singleton X-classes
    (implicit in the stripped form) contribute nothing.
    """
    total = 0
    single = len(y_columns) == 1
    y0 = y_columns[0] if y_columns else ()
    for cls_rows in x_partition:
        size = len(cls_rows)
        group_sizes: dict[Any, int] = {}
        if single:
            for row in cls_rows:
                key = y0[row]
                group_sizes[key] = group_sizes.get(key, 0) + 1
        else:
            for row in cls_rows:
                key = tuple(codes[row] for codes in y_columns)
                group_sizes[key] = group_sizes.get(key, 0) + 1
        if len(group_sizes) < 2:
            continue
        total += size * (size - 1) // 2
        total -= sum(g * (g - 1) // 2 for g in group_sizes.values())
    return total
