"""Backend-selectable kernel layer for the relational engine.

Every hot primitive of the engine — dictionary encoding, stripped
partition construction/refinement, distinct counting, the entropy sums
of the EB baseline, and violating-pair counting — is implemented twice:

* :mod:`repro.relational.kernels.python_backend` — the reference
  implementation, pure stdlib loops over ``list[int]`` code columns
  (the exact code the engine ran before the kernel layer existed);
* :mod:`repro.relational.kernels.numpy_backend` — vectorized kernels
  over ``int64`` arrays (argsort + run-length grouping instead of dict
  building), available when NumPy is installed (the ``[fast]`` extra).

Both backends expose the same module-level functions (see
``python_backend`` for the canonical signatures) and produce
*semantically identical* results: the same partitions, the same counts,
the same entropies.  The property-test suite pins that equivalence,
including NULL rows and the all-singleton/all-duplicate edge cases.

Selection rules, in priority order:

1. an explicit :func:`set_backend` / :func:`use_backend` call
   (``repro.core.config.EngineConfig.activate`` goes through this);
2. the ``REPRO_BACKEND`` environment variable (``python`` | ``numpy``
   | ``auto``);
3. ``auto`` — the numpy backend when NumPy imports, else python.

Explicitly requesting ``numpy`` without NumPy installed raises
:class:`~repro.relational.errors.KernelBackendError`; ``auto`` falls
back silently, so a stdlib-pure install keeps working unchanged.

Backends are resolved per *operation*, not per relation: a relation's
partition cache stores whichever representation the backend active at
build time produced.  The two partition representations interoperate
(either side of ``refine``/``product`` accepts the other), so switching
backends mid-session degrades gracefully instead of invalidating
caches.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from types import ModuleType
from typing import Iterator

from ..errors import KernelBackendError

__all__ = [
    "BACKEND_ENV_VAR",
    "available_backends",
    "backend_module",
    "get_backend",
    "active_backend_name",
    "numpy_available",
    "set_backend",
    "use_backend",
]

#: Environment variable consulted when no backend is forced in-process.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_KNOWN = ("auto", "python", "numpy")

#: In-process override installed by :func:`set_backend`; ``None`` defers
#: to the environment variable / auto detection.
_forced: str | None = None

#: Cached result of the NumPy import probe (``None`` = not probed yet).
_numpy_probe: bool | None = None


def numpy_available() -> bool:
    """Whether the numpy backend can be used (NumPy imports)."""
    global _numpy_probe
    if _numpy_probe is None:
        try:
            import numpy  # noqa: F401

            _numpy_probe = True
        except ImportError:
            _numpy_probe = False
    return _numpy_probe


def available_backends() -> tuple[str, ...]:
    """Names of the backends usable in this environment."""
    if numpy_available():
        return ("python", "numpy")
    return ("python",)


def _normalize(name: str, source: str) -> str:
    normalized = name.strip().lower()
    if normalized not in _KNOWN:
        # Same message as EngineConfig's constructor validation, plus
        # the source, so env-var typos read identically to code typos.
        raise KernelBackendError(
            name,
            f"backend must be 'auto', 'python' or 'numpy', got {name!r} "
            f"(from {source})",
        )
    return normalized


def _resolve() -> str:
    """The backend name the current rules select (``python``/``numpy``)."""
    if _forced is not None:
        requested, source = _forced, "set_backend()"
    else:
        env = os.environ.get(BACKEND_ENV_VAR)
        if env:
            source = f"${BACKEND_ENV_VAR}"
            requested = _normalize(env, source)
        else:
            requested, source = "auto", "auto"
    if requested == "auto":
        return "numpy" if numpy_available() else "python"
    if requested == "numpy" and not numpy_available():
        raise KernelBackendError(
            "numpy",
            f"NumPy is not installed (requested via {source}); "
            "install the [fast] extra or select the python backend",
        )
    return requested


def active_backend_name() -> str:
    """The name of the backend :func:`get_backend` would return now."""
    return _resolve()


def get_backend() -> ModuleType:
    """The active kernel backend module (resolved per call)."""
    if _resolve() == "numpy":
        from . import numpy_backend

        return numpy_backend
    from . import python_backend

    return python_backend


def backend_module(name: str) -> ModuleType:
    """The backend module for a concrete name (``python``/``numpy``).

    The parallel layer ships the *resolved* backend name to pool
    workers and resolves it here, so a worker process always runs the
    exact backend its parent exported state for — independent of the
    worker's own environment-based resolution.
    """
    normalized = _normalize(name, "backend_module()")
    if normalized == "auto":
        normalized = "numpy" if numpy_available() else "python"
    if normalized == "numpy":
        if not numpy_available():
            raise KernelBackendError("numpy", "NumPy is not installed")
        from . import numpy_backend

        return numpy_backend
    from . import python_backend

    return python_backend


def set_backend(name: str | None) -> None:
    """Force a backend in-process (overrides ``REPRO_BACKEND``).

    ``None`` removes the override; ``"auto"`` forces auto-detection
    (ignoring the environment variable).  Requesting ``"numpy"``
    without NumPy installed raises immediately rather than at first
    use, so misconfiguration surfaces at startup.
    """
    global _forced
    if name is None:
        _forced = None
        return
    normalized = _normalize(name, "set_backend()")
    if normalized == "numpy" and not numpy_available():
        raise KernelBackendError("numpy", "NumPy is not installed")
    _forced = normalized


@contextmanager
def use_backend(name: str | None) -> Iterator[None]:
    """Scoped :func:`set_backend` (benchmarks and tests use this)."""
    global _forced
    previous = _forced
    set_backend(name)
    try:
        yield
    finally:
        _forced = previous
